"""Fault-injection suite for the persistent rollout pool.

Workers are deliberately killed mid-task, hung past the task timeout,
frozen (``SIGSTOP``), or made to return corrupt results; in every case the
pool must respawn/retry and the final reward sequence must be byte-identical
to a sequential run — faults must never poison training determinism.

The ``rollout-faults`` CI job runs this file under both ``fork`` and
``spawn`` (via ``REPRO_ROLLOUT_START_METHOD``); locally, with the variable
unset, each test parametrizes over every available start method.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.agent.baselines import select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    START_METHOD_ENV_VAR,
    RolloutPool,
    evaluate_selections,
    fork_available,
)
from repro.ccd.flow import FlowConfig, snapshot_netlist_state

_FORCED = os.environ.get(START_METHOD_ENV_VAR, "").strip()
START_METHODS = [_FORCED] if _FORCED else (
    (["fork"] if fork_available() else []) + ["spawn"]
)

#: Fault-test pools keep timeouts short so an injected hang costs ~a
#: second, not the production default.
FAST = dict(
    task_timeout=2.0,
    heartbeat_timeout=1.0,
    backoff_base=0.01,
    max_retries=2,
    max_worker_restarts=4,
)


@pytest.fixture(scope="module")
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    config = FlowConfig(clock_period=period)
    selections = [select_worst_slack(env, k) for k in (1, 2, 3, 4)]
    sequential = evaluate_selections(nl, config, selections, workers=1)
    return nl, config, selections, sequential


@pytest.mark.parametrize("method", START_METHODS)
class TestFaultInjection:
    def test_crash_hang_and_corrupt_are_retried(self, context, method):
        """One worker killed mid-task, one hung past the deadline, one
        returning garbage: every task retries and rewards stay identical."""
        nl, config, selections, sequential = context
        faults = {(0, 0): "crash", (1, 0): "hang", (2, 0): "corrupt"}
        with RolloutPool(
            nl,
            config,
            workers=2,
            start_method=method,
            fault_spec=faults,
            **FAST,
        ) as pool:
            rewards = pool.evaluate(selections)
            stats = pool.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["worker_restarts"] >= 3
        assert stats["task_timeouts"] >= 1
        assert stats["corrupt_results"] >= 1
        assert stats["worker_crashes"] >= 1

    def test_exhausted_retries_fall_back_to_sequential(self, context, method):
        """A task that fails on every attempt is finished in-process —
        results are always produced, never dropped."""
        nl, config, selections, sequential = context
        faults = {(1, attempt): "crash" for attempt in range(10)}
        with RolloutPool(
            nl,
            config,
            workers=2,
            start_method=method,
            fault_spec=faults,
            **FAST,
        ) as pool:
            rewards = pool.evaluate(selections)
            stats = pool.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["sequential_fallbacks"] >= 1
        assert stats["worker_restarts"] >= 1

    def test_repeated_batches_survive_first_batch_faults(self, context, method):
        """A pool that weathered faults keeps serving later batches."""
        nl, config, selections, sequential = context
        with RolloutPool(
            nl,
            config,
            workers=2,
            start_method=method,
            fault_spec={(0, 0): "crash"},
            **FAST,
        ) as pool:
            first = pool.evaluate(selections)
            second = pool.evaluate(selections)
        assert pickle.dumps(first) == pickle.dumps(sequential)
        assert pickle.dumps(second) == pickle.dumps(sequential)


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
def test_heartbeat_detects_frozen_worker(context):
    """A SIGSTOPped worker stops heartbeating and is replaced well before
    the (long) task timeout would fire."""
    nl, config, selections, sequential = context
    with RolloutPool(
        nl,
        config,
        workers=1,
        start_method="fork",
        task_timeout=60.0,
        heartbeat_timeout=0.5,
        backoff_base=0.01,
    ) as pool:
        # Wait for the first heartbeat (it implies the ready handshake is
        # already in the pipe), then freeze the worker under the pool's nose.
        deadline = time.monotonic() + 10.0
        while pool._slots[0].heartbeat.value == 0.0 and time.monotonic() < deadline:
            time.sleep(0.01)
        victim = pool._slots[0].process
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            watch = time.monotonic()
            rewards = pool.evaluate(selections[:2])
            elapsed = time.monotonic() - watch
            stats = pool.stats()
        finally:
            try:
                os.kill(victim.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
    assert pickle.dumps(rewards) == pickle.dumps(sequential[:2])
    assert stats["worker_restarts"] >= 1
    assert elapsed < 30.0  # heartbeat fired, not the 60s task timeout
