"""Focused tests for the useful-skew engine's attention window, modes and
prioritization mechanics (the heart of the reproduction)."""

from __future__ import annotations

import pytest

from repro.ccd.margins import margins_to_wns
from repro.ccd.useful_skew import UsefulSkewConfig, optimize_useful_skew
from repro.timing.clock import ClockModel
from repro.timing.metrics import tns, violating_endpoints
from repro.timing.sta import TimingAnalyzer


def _context(design):
    nl, period = design
    analyzer = TimingAnalyzer(nl)
    clock = ClockModel.for_netlist(nl, period)
    report = analyzer.analyze(clock)
    return nl, analyzer, clock, report


class TestAttentionWindow:
    def test_smaller_window_fewer_commits(self, fresh_design):
        nl, analyzer, clock, report = _context(fresh_design)
        narrow_clock = clock.copy()
        narrow = optimize_useful_skew(
            analyzer,
            narrow_clock,
            config=UsefulSkewConfig(
                attention_fraction=0.1, min_attention=1, passes=1,
                enable_recovery=False,
            ),
        )
        wide_clock = clock.copy()
        wide = optimize_useful_skew(
            analyzer,
            wide_clock,
            config=UsefulSkewConfig(
                attention_fraction=1.0, min_attention=1, passes=1,
                enable_recovery=False,
            ),
        )
        assert narrow.commits <= wide.commits

    def test_window_head_is_worst_endpoint(self, fresh_design):
        """With a one-endpoint window, only the worst endpoint's flop moves."""
        nl, analyzer, clock, report = _context(fresh_design)
        worst = int(violating_endpoints(report)[0])
        optimize_useful_skew(
            analyzer,
            clock,
            config=UsefulSkewConfig(
                attention_fraction=1e-9, min_attention=1, passes=1,
                enable_recovery=False,
            ),
        )
        moved = set(clock.adjustments())
        assert moved <= {worst}

    def test_margins_buy_attention(self, fresh_design):
        """A margined mid-pack endpoint enters a window it otherwise misses."""
        nl, analyzer, clock, report = _context(fresh_design)
        viol = violating_endpoints(report)
        # Pick a flexible flop endpoint outside the top-1 window.
        target = None
        for e in viol[1:]:
            e = int(e)
            if clock.bound(e) > 0.01:
                target = e
                break
        if target is None:
            pytest.skip("no flexible mid-pack endpoint in fixture")
        config = UsefulSkewConfig(
            attention_fraction=1e-9, min_attention=1, passes=1,
            enable_recovery=False,
        )
        plain_clock = clock.copy()
        optimize_useful_skew(analyzer, plain_clock, config=config)
        assert plain_clock.arrival(target) == 0.0

        margin_clock = clock.copy()
        margins = margins_to_wns(report, [target])
        optimize_useful_skew(analyzer, margin_clock, margins, config=config)
        # The margined endpoint is now (tied-)worst apparent: it is in the
        # window; whether it moves depends on its launch budget, but no
        # OTHER endpoint may consume the slot.
        moved = set(margin_clock.adjustments())
        assert moved <= {target}


class TestModes:
    def test_balance_mode_runs_and_respects_bounds(self, fresh_design):
        nl, analyzer, clock, report = _context(fresh_design)
        optimize_useful_skew(
            analyzer, clock, config=UsefulSkewConfig(mode="balance")
        )
        for f, v in clock.arrivals.items():
            assert abs(v) <= clock.bound(f) + 1e-9

    def test_balance_can_trade_where_conservative_wont(self, fresh_design):
        """Balance mode may push donors negative; conservative never does."""
        nl, analyzer, clock, report = _context(fresh_design)
        healthy = set(report.endpoints[report.slack >= 0].tolist())

        cons_clock = clock.copy()
        optimize_useful_skew(
            analyzer, cons_clock, config=UsefulSkewConfig(mode="conservative")
        )
        cons_after = analyzer.analyze(cons_clock)
        cons_healthy = set(
            cons_after.endpoints[cons_after.slack >= -1e-9].tolist()
        )
        assert healthy <= cons_healthy

    def test_commit_locking_within_run(self, fresh_design):
        """A flop adjusted in pass 1 is never re-adjusted in later passes."""
        nl, analyzer, clock, report = _context(fresh_design)
        # Track arrivals after each pass by running with increasing passes.
        one = clock.copy()
        optimize_useful_skew(analyzer, one, config=UsefulSkewConfig(passes=1))
        three = clock.copy()
        optimize_useful_skew(analyzer, three, config=UsefulSkewConfig(passes=3))
        for f, v in one.adjustments().items():
            assert three.arrival(f) == pytest.approx(v)

    def test_no_movable_flops_is_noop(self, fresh_design):
        nl, analyzer, _, _ = _context(fresh_design)
        period = ClockModel.for_netlist(nl, 0.5).period
        rigid = ClockModel(period=period)  # no bounds at all
        result = optimize_useful_skew(analyzer, rigid)
        assert result.commits == 0
        assert rigid.total_adjustment() == 0.0

    def test_engine_never_hurts_tns_in_conservative_mode(self, fresh_design):
        nl, analyzer, clock, report = _context(fresh_design)
        before = tns(report.slack)
        optimize_useful_skew(
            analyzer, clock, config=UsefulSkewConfig(mode="conservative")
        )
        after = tns(analyzer.analyze(clock).slack)
        assert after >= before - 1e-9
