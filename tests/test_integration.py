"""End-to-end integration tests exercising the public API as a user would."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    ClockModel,
    EndpointSelectionEnv,
    FlowConfig,
    NUM_FEATURES,
    PlacementConfig,
    RLCCDPolicy,
    TimingAnalyzer,
    TrainConfig,
    choose_clock_period,
    place_design,
    quick_design,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
    summarize,
    train_rlccd,
    violating_endpoints,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self):
        netlist = quick_design(name="e2e", n_cells=350, seed=42)
        place_design(netlist, PlacementConfig(seed=1))
        analyzer = TimingAnalyzer(netlist)
        nominal = netlist.library.default_clock_period
        report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
        period = choose_clock_period(report, nominal, 0.35)
        return netlist, period

    def test_full_rl_pipeline(self, pipeline):
        """Generate → place → constrain → train → compare vs default."""
        netlist, period = pipeline
        snapshot = snapshot_netlist_state(netlist)
        flow_config = FlowConfig(clock_period=period)

        default = run_flow(netlist, flow_config)
        restore_netlist_state(netlist, snapshot)

        env = EndpointSelectionEnv(netlist, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            flow_config,
            TrainConfig(max_episodes=6, plateau_patience=6, seed=0),
        )
        # The trainer tracks the best of all episodes, so its best TNS can
        # never be *worse* than a fixed fraction below the default flow on
        # this simple design; crucially everything ran end to end.
        assert result.episodes_run == 6
        assert np.isfinite(result.best_tns)
        assert result.best_tns >= default.final.tns - abs(default.final.tns)

        restore_netlist_state(netlist, snapshot)
        rl_flow = run_flow(
            netlist, flow_config, prioritized_endpoints=result.best_selection
        )
        restore_netlist_state(netlist, snapshot)
        assert rl_flow.final.tns == pytest.approx(result.best_tns, abs=1e-6)

    def test_selection_determinism_same_seed(self, pipeline):
        """Paper protocol: same seed ⇒ identical runs end to end."""
        netlist, period = pipeline
        snapshot = snapshot_netlist_state(netlist)

        outcomes = []
        for _ in range(2):
            env = EndpointSelectionEnv(netlist, period, rho=0.3)
            policy = RLCCDPolicy(NUM_FEATURES, rng=7)
            result = train_rlccd(
                policy,
                env,
                FlowConfig(clock_period=period),
                TrainConfig(max_episodes=3, plateau_patience=9, seed=7),
            )
            outcomes.append((result.best_tns, tuple(result.best_selection)))
            restore_netlist_state(netlist, snapshot)
        assert outcomes[0] == outcomes[1]

    def test_margin_protocol_invariant(self, pipeline):
        """Margins applied then removed leave no trace on final reporting."""
        netlist, period = pipeline
        analyzer = TimingAnalyzer(netlist)
        clock = ClockModel.for_netlist(netlist, period)
        report = analyzer.analyze(clock)
        viol = violating_endpoints(report)
        from repro.ccd.margins import margins_to_wns

        margins = margins_to_wns(report, viol[:5].tolist())
        margined = analyzer.analyze(clock, margins)
        back = analyzer.analyze(clock, {})
        np.testing.assert_array_equal(report.slack, margined.slack)
        np.testing.assert_array_equal(report.slack, back.slack)

    def test_docstring_quickstart_runs(self):
        """The quickstart in the package docstring must actually work."""
        netlist = quick_design(n_cells=300, seed=7)
        place_design(netlist)
        analyzer = TimingAnalyzer(netlist)
        nominal = netlist.library.default_clock_period
        report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
        period = choose_clock_period(report, nominal, 0.3)
        env = EndpointSelectionEnv(netlist, clock_period=period)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            FlowConfig(clock_period=period),
            TrainConfig(max_episodes=2, seed=0),
        )
        assert result.best_selection
        assert np.isfinite(result.best_tns)

    def test_summarize_roundtrip(self, pipeline):
        netlist, period = pipeline
        rep = TimingAnalyzer(netlist).analyze(ClockModel.for_netlist(netlist, period))
        s = summarize(rep)
        assert s.nve > 0
        assert s.tns < 0
