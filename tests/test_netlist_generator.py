"""Tests for the synthetic design generator, validation and GNN transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.core import Netlist
from repro.netlist.generator import GeneratorConfig, generate_design, quick_design
from repro.netlist.library import get_library
from repro.netlist.transform import to_message_passing_graph
from repro.netlist.validate import NetlistError, validate_netlist


class TestGeneratorConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", n_cells=0)
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", flop_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", n_inputs=0)
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", max_fanout=1)
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", reuse_probability=-0.1)


class TestGeneratedStructure:
    def test_deterministic(self):
        a = quick_design(n_cells=300, seed=1)
        b = quick_design(n_cells=300, seed=1)
        assert a.num_cells == b.num_cells
        assert [c.cell_type.name for c in a.cells] == [
            c.cell_type.name for c in b.cells
        ]
        assert a.skew_bounds == b.skew_bounds

    def test_seed_changes_structure(self):
        a = quick_design(n_cells=300, seed=1)
        b = quick_design(n_cells=300, seed=2)
        assert [c.cell_type.name for c in a.cells] != [
            c.cell_type.name for c in b.cells
        ]

    def test_cell_count_near_target(self):
        nl = quick_design(n_cells=500, seed=3)
        assert 0.6 * 500 <= nl.num_cells <= 1.1 * 500

    def test_validates_clean(self):
        validate_netlist(quick_design(n_cells=400, seed=4))

    def test_every_endpoint_reaches_a_startpoint(self):
        nl = quick_design(n_cells=300, seed=5)
        for e in nl.endpoints():
            frontier = [e]
            seen = set()
            hit = False
            while frontier:
                v = frontier.pop()
                for u in nl.fanin_cells(v):
                    if u in seen:
                        continue
                    seen.add(u)
                    if nl.cells[u].is_startpoint:
                        hit = True
                        frontier = []
                        break
                    frontier.append(u)
            assert hit, f"endpoint {e} has no startpoint in its cone"

    def test_skew_bounds_cover_all_flops(self):
        nl = quick_design(n_cells=300, seed=6)
        for f in nl.sequential_cells():
            assert f in nl.skew_bounds
            assert nl.skew_bounds[f] >= 0.0

    def test_skew_bound_diversity(self):
        nl = quick_design(n_cells=600, seed=7)
        bounds = np.array([nl.skew_bounds[f] for f in nl.sequential_cells()])
        assert bounds.max() > 3 * (bounds.min() + 1e-6)

    def test_headroom_diversity_across_clusters(self):
        nl = quick_design(n_cells=800, seed=8)
        by_cluster = {}
        for c in nl.cells:
            if c.cell_type.is_port or c.is_sequential:
                continue
            by_cluster.setdefault(c.cluster, []).append(c.size_index)
        means = [np.mean(v) for v in by_cluster.values() if len(v) > 10]
        assert max(means) > min(means) + 1.0

    def test_toggle_rates_in_unit_interval(self):
        nl = quick_design(n_cells=300, seed=9)
        for c in nl.cells:
            assert 0.0 <= c.toggle_rate <= 1.0

    def test_reuse_probability_drives_cone_overlap(self):
        from repro.features.cones import ConeIndex

        def mean_overlap(reuse):
            nl = quick_design(n_cells=500, seed=10, reuse_probability=reuse)
            eps = nl.endpoints()[:20]
            cones = ConeIndex(nl, eps)
            vals = []
            for i, e in enumerate(eps):
                ratios = cones.overlap_ratios(e)
                vals.extend(np.delete(ratios, i))
            return float(np.mean(vals))

        assert mean_overlap(0.6) > mean_overlap(0.05)


@settings(max_examples=10, deadline=None)
@given(
    n_cells=st.integers(150, 600),
    seed=st.integers(0, 1000),
    reuse=st.floats(0.0, 0.7),
    depth=st.floats(3.0, 14.0),
)
def test_property_generator_always_valid(n_cells, seed, reuse, depth):
    """Any config in the supported range yields a structurally valid design."""
    config = GeneratorConfig(
        name="prop",
        n_cells=n_cells,
        seed=seed,
        reuse_probability=reuse,
        mean_depth=depth,
    )
    netlist = generate_design(config)
    validate_netlist(netlist)
    assert netlist.endpoints()
    assert netlist.startpoints()


class TestValidate:
    def test_detects_unconnected_pin(self):
        lib = get_library("tech7")
        nl = Netlist("bad", lib)
        nl.add_cell("g", lib.cell_type("INV"))
        with pytest.raises(NetlistError, match="unconnected"):
            validate_netlist(nl)

    def test_detects_dangling_comb_cell(self):
        lib = get_library("tech7")
        nl = Netlist("bad", lib)
        a = nl.add_cell("a", lib.cell_type("INPORT"))
        g = nl.add_cell("g", lib.cell_type("INV"))
        nl.add_net("na", a.index, [(g.index, 0)])
        with pytest.raises(NetlistError, match="drives nothing"):
            validate_netlist(nl)

    def test_allows_dangling_input_port(self):
        lib = get_library("tech7")
        nl = Netlist("ok", lib)
        nl.add_cell("a", lib.cell_type("INPORT"))
        b = nl.add_cell("b", lib.cell_type("INPORT"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("nb", b.index, [(y.index, 0)])
        validate_netlist(nl)

    def test_detects_combinational_cycle(self):
        lib = get_library("tech7")
        nl = Netlist("loop", lib)
        g1 = nl.add_cell("g1", lib.cell_type("INV"))
        g2 = nl.add_cell("g2", lib.cell_type("INV"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("n1", g1.index, [(g2.index, 0)])
        nl.add_net("n2", g2.index, [(g1.index, 0), (y.index, 0)])
        with pytest.raises(NetlistError, match="cycle"):
            validate_netlist(nl)

    def test_flop_breaks_cycle_legally(self):
        lib = get_library("tech7")
        nl = Netlist("feedback", lib)
        f = nl.add_cell("f", lib.cell_type("DFF"))
        g = nl.add_cell("g", lib.cell_type("INV"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("nf", f.index, [(g.index, 0)])
        nl.add_net("ng", g.index, [(f.index, 0), (y.index, 0)])
        validate_netlist(nl)  # must not raise

    def test_detects_empty_net(self):
        lib = get_library("tech7")
        nl = Netlist("empty", lib)
        a = nl.add_cell("a", lib.cell_type("INPORT"))
        nl.add_net("na", a.index)
        with pytest.raises(NetlistError, match="no sinks"):
            validate_netlist(nl)


class TestTransform:
    def test_bidirectional_doubles_edges(self, tiny_pipeline):
        fwd = to_message_passing_graph(tiny_pipeline, mode="forward")
        both = to_message_passing_graph(tiny_pipeline, mode="bidirectional")
        assert both.num_edges == 2 * fwd.num_edges

    def test_forward_edges_follow_signal(self, tiny_pipeline):
        nl = tiny_pipeline
        g = to_message_passing_graph(nl, mode="forward")
        g1 = nl.cell_by_name("g1").index
        ff1 = nl.cell_by_name("ff1").index
        assert g1 in g.neighbors(ff1)  # g1 drives ff1 -> edge into ff1

    def test_backward_mode(self, tiny_pipeline):
        nl = tiny_pipeline
        g = to_message_passing_graph(nl, mode="backward")
        g1 = nl.cell_by_name("g1").index
        ff1 = nl.cell_by_name("ff1").index
        assert ff1 in g.neighbors(g1)

    def test_invalid_mode_raises(self, tiny_pipeline):
        with pytest.raises(ValueError):
            to_message_passing_graph(tiny_pipeline, mode="sideways")

    def test_mean_aggregate_correct(self, tiny_pipeline):
        nl = tiny_pipeline
        g = to_message_passing_graph(nl, mode="bidirectional")
        feats = np.arange(nl.num_cells, dtype=float)[:, None]
        agg = g.mean_aggregate(feats)
        for v in range(nl.num_cells):
            nbrs = g.neighbors(v)
            expected = feats[nbrs].mean() if len(nbrs) else 0.0
            assert agg[v, 0] == pytest.approx(expected)

    def test_degree_matches_indptr(self, small_design):
        nl, _ = small_design
        g = to_message_passing_graph(nl)
        assert g.degree().sum() == g.num_edges
        assert g.indptr[-1] == g.num_edges

    def test_isolated_node_zero_aggregate(self):
        lib = get_library("tech7")
        nl = Netlist("iso", lib)
        nl.add_cell("alone", lib.cell_type("INPORT"))
        b = nl.add_cell("b", lib.cell_type("INPORT"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("nb", b.index, [(y.index, 0)])
        g = to_message_passing_graph(nl)
        agg = g.mean_aggregate(np.ones((3, 2)))
        np.testing.assert_array_equal(agg[0], [0.0, 0.0])
