"""Tests for event-level tracing: the tracer itself, cross-process span
correlation through the rollout pool (fork and spawn, including across
retry/respawn), the Chrome trace-event exporter, the trace schema
validator, the Prometheus metrics exporter, and the live watch follower."""

from __future__ import annotations

import json
import os
import pickle
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.agent.baselines import select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    RolloutPool,
    _task_message,
    evaluate_selections,
    fork_available,
)
from repro.ccd.flow import FlowConfig, snapshot_netlist_state
from repro.obs import tracing
from repro.obs.metrics_export import (
    CONTENT_TYPE,
    MetricsServer,
    render_prometheus,
)
from repro.obs.trace_export import chrome_trace, export_file
from repro.obs.trace_schema import validate_record, validate_trace
from repro.obs.watch import (
    RecordFollower,
    follow_records,
    render_span_line,
    render_watch_line,
)

START_METHODS = (["fork"] if fork_available() else []) + ["spawn"]


@pytest.fixture(autouse=True)
def clean_tracing(monkeypatch):
    """Isolate every test from global recorder/sink/tracer state."""
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    monkeypatch.delenv(tracing.ENV_VAR, raising=False)
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    obs.reset()
    yield
    tracing.disable()
    obs.set_trace_path(prev_trace)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


@pytest.fixture
def sink(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    obs.set_trace_path(path)
    return path


def _spans(path):
    if not os.path.exists(path):
        return []
    return [r for r in obs.read_records(path) if r["kind"] == "span"]


class TestTracer:
    def test_disabled_by_default(self, sink):
        assert not tracing.enabled()
        assert tracing.current_span_id() is None
        tracing.instant("unit.ignored")  # no-op, must not raise
        obs.enable()
        with obs.span("unit.phase"):
            pass
        assert _spans(sink) == []

    def test_span_records_reach_the_sink(self, sink):
        tracing.enable(trace_id="t-unit")
        with obs.span("unit.outer", attrs={"episode": 3}):
            with obs.span("unit.inner"):
                pass
        inner, outer = sorted(_spans(sink), key=lambda r: r["name"])
        assert outer["name"] == "unit.outer"
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"episode": 3}
        assert inner["parent_id"] == outer["span_id"]
        assert inner["span_id"] != outer["span_id"]
        for record in (inner, outer):
            assert record["schema"] == obs.SCHEMA  # envelope unchanged
            assert record["trace_schema"] == tracing.TRACE_SCHEMA
            assert record["trace_id"] == "t-unit"
            assert record["pid"] == os.getpid()
            assert record["worker"] is None
            assert record["ph"] == "X"
            assert record["dur"] >= 0.0
        # The inner span closed first, and ran within the outer window.
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]

    def test_span_ids_are_pid_prefixed_and_unique(self, sink):
        tracing.enable()
        with obs.span("unit.a"):
            pass
        with obs.span("unit.b"):
            pass
        ids = [r["span_id"] for r in _spans(sink)]
        assert len(set(ids)) == 2
        prefix = f"{os.getpid():x}-"
        assert all(span_id.startswith(prefix) for span_id in ids)

    def test_instant_parents_under_open_span(self, sink):
        tracing.enable()
        with obs.span("unit.outer"):
            tracing.instant("unit.mark", {"task_id": 7})
        mark = next(r for r in _spans(sink) if r["name"] == "unit.mark")
        outer = next(r for r in _spans(sink) if r["name"] == "unit.outer")
        assert mark["ph"] == "i"
        assert mark["dur"] == 0.0
        assert mark["parent_id"] == outer["span_id"]
        assert mark["attrs"] == {"task_id": 7}

    def test_explicit_trace_parent_overrides_stack(self, sink):
        tracing.enable()
        with obs.span("unit.outer"):
            with obs.span("unit.reparented", trace_parent="remote-1"):
                pass
        reparented = next(
            r for r in _spans(sink) if r["name"] == "unit.reparented"
        )
        assert reparented["parent_id"] == "remote-1"

    def test_current_span_id_tracks_stack(self, sink):
        tracing.enable()
        assert tracing.current_span_id() is None
        with obs.span("unit.outer"):
            outer_id = tracing.current_span_id()
            assert outer_id is not None
            with obs.span("unit.inner"):
                assert tracing.current_span_id() != outer_id
            assert tracing.current_span_id() == outer_id
        assert tracing.current_span_id() is None

    def test_buffered_mode_ships_and_ingests(self, sink):
        tracing.enable_buffered("t-buffered", worker=3)
        with obs.span("unit.work"):
            pass
        assert _spans(sink) == []  # buffered: nothing hit the file
        events = tracing.drain_buffer()
        assert len(events) == 1
        assert events[0]["worker"] == 3
        assert tracing.drain_buffer() == []  # drained exactly once
        tracing.ingest(events)
        (record,) = _spans(sink)
        assert record["worker"] == 3
        assert record["trace_id"] == "t-buffered"
        assert record["pid"] == os.getpid()

    def test_ingest_none_and_empty_are_noops(self, sink):
        tracing.ingest(None)
        tracing.ingest([])
        assert not os.path.exists(sink)  # nothing was ever written

    def test_child_reset_clears_tracer_and_buffer(self, sink):
        tracing.enable_buffered("t-child", worker=0)
        with obs.span("unit.work"):
            pass
        tracing.child_reset()
        assert not tracing.enabled()
        assert tracing.drain_buffer() == []

    def test_worker_context_round_trip(self, sink):
        assert tracing.worker_context(0) is None  # off → no payload cost
        tracing.enable(trace_id="t-ctx")
        assert tracing.worker_context(2) == {"trace_id": "t-ctx", "worker": 2}

    def test_env_var_enables_when_sink_configured(self, sink, monkeypatch):
        monkeypatch.setenv(tracing.ENV_VAR, "1")
        tracing._init_from_env()
        assert tracing.enabled()

    def test_env_var_ignored_without_sink(self, monkeypatch):
        obs.set_trace_path(None)
        monkeypatch.setenv(tracing.ENV_VAR, "1")
        tracing._init_from_env()
        assert not tracing.enabled()


@pytest.fixture
def pool_context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    config = FlowConfig(clock_period=period)
    selections = [select_worst_slack(env, k) for k in (1, 2, 3, 4)]
    return nl, config, selections


@pytest.mark.parametrize("method", START_METHODS)
class TestCrossProcessCorrelation:
    def test_worker_spans_parent_under_submitting_evaluate(
        self, pool_context, sink, method
    ):
        """The acceptance path: pooled evaluation with tracing on yields
        worker-side ``rollout.task`` spans whose parent ids resolve to the
        submitting ``rollout.evaluate`` span — for fork and spawn alike."""
        nl, config, selections = pool_context
        tracing.enable()
        with RolloutPool(
            nl, config, workers=2, start_method=method
        ) as pool:
            rewards = pool.evaluate(selections)
        assert len(rewards) == len(selections)
        spans = _spans(sink)
        by_id = {r["span_id"]: r for r in spans}
        evaluates = [r for r in spans if r["name"] == "rollout.evaluate"]
        tasks = [r for r in spans if r["name"] == "rollout.task"]
        assert len(evaluates) == 1
        assert len(tasks) == len(selections)
        parent_pid = os.getpid()
        for task in tasks:
            assert task["worker"] in (0, 1)
            assert task["pid"] != parent_pid
            assert task["parent_id"] == evaluates[0]["span_id"]
        # Worker-side flow spans nest under their rollout.task span.
        worker_flows = [
            r for r in spans if r["name"] == "flow.run" and r["worker"] is not None
        ]
        assert worker_flows
        for flow in worker_flows:
            assert by_id[flow["parent_id"]]["name"] == "rollout.task"
        # Submit instants landed under the evaluate span too.
        submits = [r for r in spans if r["name"] == "rollout.submit"]
        assert len(submits) == len(selections)
        assert all(s["parent_id"] == evaluates[0]["span_id"] for s in submits)

    def test_correlation_survives_retry_and_respawn(
        self, pool_context, sink, method
    ):
        """A worker crash mid-task forces a respawn and a retry; the retried
        task's span must still resolve to the submitting evaluate span."""
        nl, config, selections = pool_context
        tracing.enable()
        with RolloutPool(
            nl,
            config,
            workers=2,
            start_method=method,
            fault_spec={(0, 0): "crash"},
            task_timeout=2.0,
            heartbeat_timeout=1.0,
            backoff_base=0.01,
            max_retries=2,
            max_worker_restarts=4,
        ) as pool:
            rewards = pool.evaluate(selections)
            stats = pool.stats()
        assert len(rewards) == len(selections)
        assert stats["worker_restarts"] >= 1
        spans = _spans(sink)
        evaluates = [r for r in spans if r["name"] == "rollout.evaluate"]
        assert len(evaluates) == 1
        retried = [
            r
            for r in spans
            if r["name"] == "rollout.task" and r["attrs"].get("attempt", 0) > 0
        ]
        assert retried  # the crashed task really was retried in a worker
        for task in retried:
            assert task["parent_id"] == evaluates[0]["span_id"]
        respawns = [r for r in spans if r["name"] == "rollout.respawn"]
        retries = [r for r in spans if r["name"] == "rollout.retry"]
        assert respawns and retries

    def test_rewards_identical_with_tracing_on(self, pool_context, sink, method):
        nl, config, selections = pool_context
        sequential = evaluate_selections(nl, config, selections, workers=1)
        tracing.enable()
        with RolloutPool(nl, config, workers=2, start_method=method) as pool:
            traced = pool.evaluate(selections)
        assert pickle.dumps(traced) == pickle.dumps(sequential)


class TestTaskMessageCompat:
    def test_default_trace_parent_keeps_payload_small(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period)
        selection = select_worst_slack(env, 8)
        payload = pickle.dumps(_task_message(7, 0, selection))
        with_parent = pickle.dumps(
            _task_message(7, 0, selection, trace_parent="abcd-12")
        )
        assert len(payload) < 512
        assert len(with_parent) - len(payload) < 64


class TestChromeTraceExport:
    def _canned_spans(self):
        return [
            {
                "kind": "span", "name": "rollout.evaluate", "span_id": "a-1",
                "parent_id": None, "ph": "X", "ts": 100.0, "dur": 0.05,
                "attrs": {"tasks": 2}, "trace_schema": tracing.TRACE_SCHEMA,
                "trace_id": "t", "pid": 10, "worker": None,
            },
            {
                "kind": "span", "name": "rollout.submit", "span_id": "a-2",
                "parent_id": "a-1", "ph": "i", "ts": 100.001, "dur": 0.0,
                "attrs": {}, "trace_schema": tracing.TRACE_SCHEMA,
                "trace_id": "t", "pid": 10, "worker": None,
            },
            {
                "kind": "span", "name": "rollout.task", "span_id": "b-1",
                "parent_id": "a-1", "ph": "X", "ts": 100.002, "dur": 0.03,
                "attrs": {"task_id": 0}, "trace_schema": tracing.TRACE_SCHEMA,
                "trace_id": "t", "pid": 11, "worker": 0,
            },
            {"kind": "episode", "episode": 0},  # non-span records are skipped
        ]

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._canned_spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "process_name"
        }
        assert (10, "repro main") in process_names
        assert (11, "repro worker 0") in process_names
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"rollout.evaluate", "rollout.task"}
        task = next(e for e in complete if e["name"] == "rollout.task")
        assert task["pid"] == 11
        assert task["tid"] == 1  # worker 0 → track 1 (main is track 0)
        assert task["ts"] == pytest.approx(100.002 * 1e6)
        assert task["dur"] == pytest.approx(0.03 * 1e6)
        assert task["args"]["parent_id"] == "a-1"
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_export_file_round_trip(self, tmp_path, sink):
        tracing.enable()
        with obs.span("unit.outer"):
            tracing.instant("unit.mark")
        out = str(tmp_path / "out.perfetto.json")
        summary = export_file(sink, out)
        assert summary == {"spans": 1, "instants": 1, "processes": 1}
        with open(out) as handle:
            doc = json.load(handle)
        assert any(e["name"] == "unit.outer" for e in doc["traceEvents"])


class TestTraceSchema:
    def _valid_span(self):
        return {
            "schema": obs.SCHEMA, "kind": "span", "git_sha": "abc",
            "name": "unit.x", "span_id": "a-1", "parent_id": None,
            "ph": "X", "ts": 1.0, "dur": 0.5, "attrs": {"k": 1},
            "trace_schema": tracing.TRACE_SCHEMA, "trace_id": "t",
            "pid": 10, "worker": None,
        }

    def test_valid_span_passes(self):
        assert validate_record(self._valid_span(), "line 1") == "span"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"trace_schema": "repro-trace/v999"},
            {"name": ""},
            {"span_id": None},
            {"ph": "Q"},
            {"dur": -1.0},
            {"pid": "ten"},
            {"attrs": [1, 2]},
            {"kind": "mystery"},
        ],
    )
    def test_violations_fail_with_location(self, mutation):
        record = {**self._valid_span(), **mutation}
        with pytest.raises(ValueError, match="line 7"):
            validate_record(record, "line 7")

    def test_instants_must_have_zero_duration(self):
        record = {**self._valid_span(), "ph": "i", "dur": 0.5}
        with pytest.raises(ValueError):
            validate_record(record, "line 1")

    def test_validate_trace_counts_by_kind(self, sink):
        tracing.enable()
        with obs.span("unit.a"):
            pass
        obs.emit("flow", {
            "endpoints": 3, "prioritized": 1, "runtime_seconds": 0.1,
            "phases": {"skew": 0.05},
        })
        counts = validate_trace(sink)
        assert counts == {"span": 1, "flow": 1}

    def test_validate_canned_trace(self):
        canned = os.path.join(os.path.dirname(__file__), "data", "canned_trace.jsonl")
        counts = validate_trace(canned)
        assert counts["span"] == 5
        assert counts["episode"] == 4


class TestMetricsExport:
    def test_render_prometheus_families(self):
        state = {
            "counters": {"rollout.tasks": 4.0},
            "gauges": {"flow.endpoints": 42.0},
            "phases": {
                "flow.run": {"count": 2, "total": 0.75, "durations": [0.25, 0.5]},
            },
        }
        text = render_prometheus(state)
        assert 'repro_counter_total{name="rollout.tasks"} 4' in text
        assert 'repro_gauge{name="flow.endpoints"} 42' in text
        assert 'repro_phase_duration_seconds_count{phase="flow.run"} 2' in text
        assert 'repro_phase_duration_seconds_sum{phase="flow.run"} 0.75' in text
        # Cumulative buckets: one duration ≤0.25, both ≤0.5.
        assert 'le="0.25"} 1' in text
        assert 'le="0.5"} 2' in text
        assert 'le="+Inf"' in text
        assert "repro_build_info" in text
        assert text.endswith("\n")

    def test_render_uses_live_recorder_by_default(self):
        obs.enable()
        obs.incr("unit.metric", 3)
        assert 'repro_counter_total{name="unit.metric"} 3' in render_prometheus()

    def test_label_escaping(self):
        state = {
            "counters": {'we"ird\\name\n': 1.0}, "gauges": {}, "phases": {},
        }
        text = render_prometheus(state)
        assert '{name="we\\"ird\\\\name\\n"}' in text

    def test_http_server_serves_metrics(self):
        obs.enable()
        obs.incr("unit.served", 2)
        server = MetricsServer.start(0)
        try:
            assert server.port > 0
            with urllib.request.urlopen(server.url) as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert 'repro_counter_total{name="unit.served"} 2' in body
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/nope"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 404
        finally:
            server.close()


class TestWatch:
    def test_follower_skips_partial_trailing_line(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        follower = RecordFollower(path)
        assert list(follower.poll()) == []  # missing file: no records yet
        whole = json.dumps(
            {"schema": obs.SCHEMA, "kind": "flow", "git_sha": "a", "endpoints": 3}
        )
        with open(path, "w") as handle:
            handle.write(whole + "\n")
            handle.write('{"schema": "repro-obs/v2", "kind": "fl')  # torn
        (record,) = follower.poll()
        assert record["kind"] == "flow"
        with open(path, "a") as handle:
            handle.write('ow", "git_sha": "a", "endpoints": 4}\n')
        (second,) = follower.poll()
        assert second["endpoints"] == 4

    def test_follower_resets_on_truncation(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        line = json.dumps(
            {"schema": obs.SCHEMA, "kind": "flow", "git_sha": "a", "endpoints": 1}
        )
        with open(path, "w") as handle:
            handle.write((line + "\n") * 3)
        follower = RecordFollower(path)
        assert len(list(follower.poll())) == 3
        with open(path, "w") as handle:  # a restarted run recreated the file
            handle.write(line + "\n")
        assert len(list(follower.poll())) == 1

    def test_follow_records_once_drains_existing(self, sink):
        obs.emit("flow", {"endpoints": 3})
        obs.emit("flow", {"endpoints": 4})
        records = list(follow_records(sink, once=True))
        assert [r["endpoints"] for r in records] == [3, 4]

    def test_render_lines_by_kind(self):
        episode = {
            "kind": "episode", "episode": 7, "tns": -1.5, "wns": -0.2,
            "nve": 3, "num_selected": 4, "advantage": 0.25,
            "telemetry": {"policy_entropy_mean": 1.5},
        }
        line = render_watch_line(episode)
        assert "episode" in line and "tns=-1.500" in line and "entropy=1.500" in line
        span = {"kind": "span", "name": "flow.run", "ph": "X", "dur": 0.0123,
                "worker": None}
        assert render_watch_line(span) is None  # quiet unless --spans
        assert render_span_line(span) == "span     [main] flow.run 12.30 ms"
        instant = {"kind": "span", "name": "rollout.submit", "ph": "i",
                   "dur": 0.0, "worker": 1}
        assert render_span_line(instant) == "span     [w1] * rollout.submit"
        assert render_span_line(episode) is None
