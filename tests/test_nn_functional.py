"""Tests for softmax variants, losses, entropy, and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    clip_gradient_norm,
    entropy,
    log_softmax,
    masked_log_prob,
    masked_softmax,
    mse_loss,
    softmax,
)
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_sums_to_one(self, rng):
        p = softmax(Tensor(rng.normal(size=7)))
        assert p.data.sum() == pytest.approx(1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=5)
        p1 = softmax(Tensor(x)).data
        p2 = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(p1, p2, atol=1e-12)

    def test_large_logits_stable(self):
        p = softmax(Tensor([1000.0, 999.0])).data
        assert np.all(np.isfinite(p))
        assert p[0] > p[1]

    def test_2d_rowwise(self, rng):
        p = softmax(Tensor(rng.normal(size=(4, 3))), axis=-1)
        np.testing.assert_allclose(p.data.sum(axis=-1), np.ones(4))

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=6)
        np.testing.assert_allclose(
            log_softmax(Tensor(x)).data, np.log(softmax(Tensor(x)).data), atol=1e-12
        )

    def test_gradient_is_jacobian(self):
        x = Tensor(np.array([0.5, -0.2, 1.0]), requires_grad=True)
        softmax(x)[0].backward()
        p = softmax(Tensor(x.data)).data
        expected = p[0] * (np.eye(3)[0] - p)
        np.testing.assert_allclose(x.grad, expected, atol=1e-10)


class TestMaskedSoftmax:
    def test_masked_positions_exactly_zero(self, rng):
        valid = np.array([True, False, True, False])
        p = masked_softmax(Tensor(rng.normal(size=4)), valid)
        assert p.data[1] == 0.0
        assert p.data[3] == 0.0
        assert p.data.sum() == pytest.approx(1.0)

    def test_single_valid_gets_prob_one(self):
        valid = np.array([False, True, False])
        p = masked_softmax(Tensor([5.0, -10.0, 5.0]), valid)
        assert p.data[1] == pytest.approx(1.0)

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            masked_softmax(Tensor([1.0, 2.0]), np.array([False, False]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            masked_softmax(Tensor([1.0, 2.0]), np.array([True]))

    def test_matches_neg_inf_construction(self, rng):
        x = rng.normal(size=6)
        valid = np.array([1, 1, 0, 1, 0, 1], bool)
        ours = masked_softmax(Tensor(x), valid).data
        ref_logits = np.where(valid, x, -np.inf)
        ref = np.exp(ref_logits - ref_logits.max())
        ref = ref / ref.sum()
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_gradient_flows_only_through_valid(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        valid = np.array([True, True, False])
        masked_softmax(x, valid)[0].backward()
        assert x.grad[2] == 0.0
        assert x.grad[0] != 0.0


class TestMaskedLogProb:
    def test_matches_log_of_masked_softmax(self, rng):
        x = rng.normal(size=5)
        valid = np.array([1, 0, 1, 1, 1], bool)
        lp = masked_log_prob(Tensor(x), valid, 3).item()
        p = masked_softmax(Tensor(x), valid).data[3]
        assert lp == pytest.approx(np.log(p))

    def test_masked_action_raises(self):
        with pytest.raises(ValueError):
            masked_log_prob(Tensor([1.0, 2.0]), np.array([True, False]), 1)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            masked_log_prob(Tensor(np.zeros((2, 2))), np.ones((2, 2), bool), 0)

    def test_gradient_numeric(self, rng):
        x = rng.normal(size=4)
        valid = np.array([1, 1, 0, 1], bool)
        t = Tensor(x, requires_grad=True)
        masked_log_prob(t, valid, 0).backward()
        eps = 1e-6
        num = np.zeros(4)
        for i in range(4):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            num[i] = (
                masked_log_prob(Tensor(xp), valid, 0).item()
                - masked_log_prob(Tensor(xm), valid, 0).item()
            ) / (2 * eps)
        np.testing.assert_allclose(t.grad, num, atol=1e-6)


class TestLossesAndUtilities:
    def test_mse_zero_at_target(self):
        assert mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 2.0])).item() == 0.0

    def test_mse_value(self):
        assert mse_loss(Tensor([3.0]), np.array([1.0])).item() == pytest.approx(4.0)

    def test_entropy_uniform_is_log_n(self):
        p = Tensor(np.full(4, 0.25))
        assert entropy(p).item() == pytest.approx(np.log(4))

    def test_entropy_deterministic_is_zero(self):
        p = Tensor([1.0, 0.0, 0.0])
        assert entropy(p).item() == pytest.approx(0.0)

    def test_clip_noop_below_threshold(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        norm = clip_gradient_norm([t], max_norm=100.0)
        assert norm == pytest.approx(2.0)
        assert t.grad[0] == pytest.approx(2.0)

    def test_clip_scales_to_max(self):
        t = Tensor(np.ones(4), requires_grad=True)
        (t * 10.0).sum().backward()  # grad = 10 each, norm 20
        clip_gradient_norm([t], max_norm=1.0)
        assert np.linalg.norm(t.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_invalid_norm_raises(self):
        with pytest.raises(ValueError):
            clip_gradient_norm([], max_norm=0.0)

    def test_clip_skips_gradless(self):
        t = Tensor([1.0], requires_grad=True)
        assert clip_gradient_norm([t], max_norm=1.0) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 12),
    seed=st.integers(0, 10_000),
)
def test_property_masked_softmax_distribution(n, seed):
    """Masked softmax is a distribution over exactly the valid support."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(scale=3.0, size=n)
    valid = rng.random(n) > 0.4
    if not valid.any():
        valid[rng.integers(n)] = True
    p = masked_softmax(Tensor(logits), valid).data
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p[~valid] == 0.0)
    assert np.all(p[valid] > 0.0)
