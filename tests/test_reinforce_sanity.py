"""REINFORCE sanity checks on known toy problems.

DESIGN.md invariant: "REINFORCE on a known bandit increases probability of
the rewarding action."  These tests exercise the exact primitives the
RL-CCD trainer uses (masked log-probs, advantage weighting, Adam) on
problems with known optima, independent of the EDA substrate.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import masked_log_prob
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class TestBandit:
    def _train_bandit(self, rewards, steps=300, lr=0.05, seed=0):
        """Policy-gradient on a 3-arm bandit with given arm rewards."""
        rng = np.random.default_rng(seed)
        logits = Tensor(np.zeros(len(rewards)), requires_grad=True)
        optimizer = Adam([logits], lr=lr)
        valid = np.ones(len(rewards), bool)
        baseline = 0.0
        for _ in range(steps):
            probs = np.exp(logits.data - logits.data.max())
            probs /= probs.sum()
            action = int(rng.choice(len(rewards), p=probs))
            reward = rewards[action]
            baseline = 0.9 * baseline + 0.1 * reward
            optimizer.zero_grad()
            loss = masked_log_prob(logits, valid, action) * (-(reward - baseline))
            loss.backward()
            optimizer.step()
        probs = np.exp(logits.data - logits.data.max())
        return probs / probs.sum()

    def test_best_arm_dominates(self):
        probs = self._train_bandit([0.0, 1.0, 0.0])
        assert np.argmax(probs) == 1
        assert probs[1] > 0.8

    def test_negative_rewards_work(self):
        """TNS-style rewards are all negative; the least-bad arm must win."""
        probs = self._train_bandit([-3.0, -1.0, -2.0])
        assert np.argmax(probs) == 1

    def test_indifferent_rewards_stay_spread(self):
        probs = self._train_bandit([1.0, 1.0, 1.0], steps=150)
        assert probs.max() < 0.9  # no arm should collapse the distribution


class TestSequentialCredit:
    def test_two_step_sequence_learned(self):
        """Reward 1 only for picking arm 0 then arm 1; both steps learned."""
        rng = np.random.default_rng(3)
        logits1 = Tensor(np.zeros(2), requires_grad=True)
        logits2 = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([logits1, logits2], lr=0.05)
        valid = np.ones(2, bool)
        baseline = 0.0
        for _ in range(400):
            p1 = np.exp(logits1.data - logits1.data.max())
            p1 /= p1.sum()
            a1 = int(rng.choice(2, p=p1))
            p2 = np.exp(logits2.data - logits2.data.max())
            p2 /= p2.sum()
            a2 = int(rng.choice(2, p=p2))
            reward = 1.0 if (a1, a2) == (0, 1) else 0.0
            baseline = 0.9 * baseline + 0.1 * reward
            optimizer.zero_grad()
            total_logp = masked_log_prob(logits1, valid, a1) + masked_log_prob(
                logits2, valid, a2
            )
            (total_logp * (-(reward - baseline))).backward()
            optimizer.step()
        p1 = np.exp(logits1.data) / np.exp(logits1.data).sum()
        p2 = np.exp(logits2.data) / np.exp(logits2.data).sum()
        assert p1[0] > 0.7
        assert p2[1] > 0.7


class TestBatchEpisodesByteIdentity:
    """``batch_episodes=1`` must leave the trainer byte-identical.

    The trainer branches on ``batch_episodes > 1`` before any batched
    machinery, so B=1 runs the pre-batching code path verbatim — these
    tests pin that contract on a real (small) design end to end.
    """

    def _train(self, small_design, **overrides):
        import dataclasses as _dc

        from repro.agent.env import EndpointSelectionEnv
        from repro.agent.policy import RLCCDPolicy
        from repro.agent.reinforce import TrainConfig, train_rlccd
        from repro.ccd.flow import FlowConfig
        from repro.features.table1 import NUM_FEATURES

        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=17)
        config = TrainConfig(
            max_episodes=3, seed=6, max_selection_steps=5, **overrides
        )
        result = train_rlccd(policy, env, FlowConfig(clock_period=period), config)
        return [_dc.astuple(record) for record in result.history]

    def test_explicit_b1_matches_default_config(self, small_design):
        default = self._train(small_design)
        explicit = self._train(small_design, batch_episodes=1)
        assert default == explicit

    def test_b2_history_deterministic(self, small_design):
        first = self._train(
            small_design, episodes_per_update=2, batch_episodes=2
        )
        second = self._train(
            small_design, episodes_per_update=2, batch_episodes=2
        )
        assert first == second
