"""Tests for the run-history store and its enforced regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import BENCH_SCHEMA
from repro.obs.history import (
    FALLBACK_TOLERANCE,
    BenchRun,
    PhaseBaseline,
    Regression,
    RunHistory,
    mad,
    median,
)


def _payload(median_s, created_at="2026-01-01T00:00:00Z", sha="abc", seed=0):
    return {
        "schema": BENCH_SCHEMA,
        "git_sha": sha,
        "seed": seed,
        "created_at": created_at,
        "total_seconds": 1.0,
        "phases": {
            name: {"count": 3, "median_s": value, "mad_s": 0.0}
            for name, value in median_s.items()
        },
    }


def _history(medians_per_run):
    payloads = [
        _payload(medians, created_at=f"2026-01-0{i + 1}T00:00:00Z")
        for i, medians in enumerate(medians_per_run)
    ]
    return RunHistory.from_payloads(payloads)


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_is_robust_to_one_outlier(self):
        assert mad([1.0, 1.0, 1.0, 100.0]) == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0


class TestRunHistoryIndex:
    def test_benches_sorted_oldest_first(self):
        payloads = [
            _payload({"a": 1.0}, created_at="2026-02-01T00:00:00Z"),
            _payload({"a": 1.0}, created_at="2026-01-01T00:00:00Z"),
        ]
        history = RunHistory.from_payloads(payloads, ["new.json", "old.json"])
        assert [run.path for run in history.benches] == ["old.json", "new.json"]

    def test_from_payload_extracts_phase_medians(self):
        run = BenchRun.from_payload(_payload({"flow.sta": 0.25}), "x.json")
        assert run.phase_medians == {"flow.sta": 0.25}
        assert run.git_sha == "abc"
        assert run.seed == 0

    def test_scan_indexes_benches_and_traces(self, tmp_path):
        for i in range(2):
            (tmp_path / f"BENCH_{i}.json").write_text(
                json.dumps(_payload({"a": 0.1}, created_at=f"2026-01-0{i + 1}T00:00:00Z"))
            )
        trace = tmp_path / "runs" / "trace.jsonl"
        trace.parent.mkdir()
        records = [
            {"schema": "repro-obs/v2", "kind": "episode", "git_sha": "abc",
             "seed": 0, "episode": 0},
            {"schema": "repro-obs/v2", "kind": "flow", "git_sha": "abc"},
        ]
        trace.write_text("".join(json.dumps(r) + "\n" for r in records))
        history = RunHistory.scan(str(tmp_path))
        assert len(history) == 2
        (trace_run,) = history.traces
        assert trace_run.episodes == 1
        assert trace_run.kinds == ("episode", "flow")
        assert trace_run.seeds == (0,)

    def test_scan_skips_foreign_and_corrupt_files(self, tmp_path):
        (tmp_path / "other.json").write_text('{"schema": "something-else"}')
        (tmp_path / "corrupt.json").write_text("{nope")
        (tmp_path / "corrupt.jsonl").write_text("not json\n")
        history = RunHistory.scan(str(tmp_path))
        assert len(history) == 0
        assert history.traces == []


class TestPhaseBaselines:
    def test_median_and_mad_over_runs(self):
        history = _history([{"a": 1.0}, {"a": 2.0}, {"a": 3.0}])
        baseline = history.phase_baselines()["a"]
        assert baseline == PhaseBaseline(median_s=2.0, mad_s=1.0, runs=3)

    def test_last_n_window(self):
        history = _history([{"a": 100.0}] + [{"a": 1.0}] * 5)
        baseline = history.phase_baselines(last_n=5)["a"]
        assert baseline.median_s == 1.0
        assert baseline.runs == 5

    def test_new_phase_counts_only_where_recorded(self):
        history = _history([{"a": 1.0}, {"a": 1.0, "b": 5.0}])
        baselines = history.phase_baselines()
        assert baselines["a"].runs == 2
        assert baselines["b"].runs == 1


class TestEnforcedCheck:
    def test_identical_candidate_passes(self):
        history = _history([{"a": 0.1}] * 4)
        assert history.check({"a": {"median_s": 0.1}}) == []

    def test_five_x_slowdown_fails_even_on_thin_history(self):
        # CI's realistic worst case: only the committed baseline exists.
        history = _history([{"a": 0.1}])
        (failure,) = history.check({"a": {"median_s": 0.5}})
        assert isinstance(failure, Regression)
        assert failure.phase == "a"
        assert failure.threshold_s == pytest.approx(0.1 * (1 + FALLBACK_TOLERANCE))
        assert "exceeds threshold" in failure.message()

    def test_thin_history_tolerates_double(self):
        history = _history([{"a": 0.1}])
        assert history.check({"a": {"median_s": 0.2}}) == []

    def test_mad_regime_flags_beyond_noise(self):
        # Tight history (MAD small) → noise floor 0.5·median dominates.
        history = _history([{"a": 0.100}, {"a": 0.101}, {"a": 0.102}])
        assert history.check({"a": {"median_s": 0.14}}) == []  # within floor
        (failure,) = history.check({"a": {"median_s": 0.2}})
        assert failure.runs == 3

    def test_wide_mad_raises_threshold(self):
        # Noisy history: 3×MAD above median must pass.
        history = _history([{"a": 0.1}, {"a": 0.2}, {"a": 0.3}])
        assert history.check({"a": {"median_s": 0.45}}) == []
        assert history.check({"a": {"median_s": 0.55}}) != []

    def test_sub_floor_phases_skipped(self):
        history = _history([{"fast": 1e-6}] * 4)
        assert history.check({"fast": {"median_s": 1.0}}) == []

    def test_sub_ms_phases_get_absolute_grace(self):
        # A 0.5 ms phase doubling is one scheduler preemption, not a
        # regression: the absolute 1 ms grace keeps it green in both the
        # MAD and the thin-history regimes.
        history = _history([{"a": 0.0005}] * 3)
        assert history.check({"a": {"median_s": 0.0014}}) == []
        assert history.check({"a": {"median_s": 0.0016}}) != []
        thin = _history([{"a": 0.0005}])
        assert thin.check({"a": {"median_s": 0.0014}}) == []
        assert thin.check({"a": {"median_s": 0.0016}}) != []

    def test_unknown_phase_skipped(self):
        history = _history([{"a": 0.1}] * 4)
        assert history.check({"brand_new": {"median_s": 10.0}}) == []

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            _history([{"a": 0.1}]).check({}, k=0.0)
