"""Unit tests for the text-report formatters (synthetic inputs)."""

from __future__ import annotations

import numpy as np

from repro.benchsuite.ablations import AblationPoint, PpaPoint
from repro.benchsuite.figures import Fig5Result, Fig6Result
from repro.benchsuite.report import (
    format_ablation,
    format_fig5,
    format_fig6,
    format_ppa,
)


class TestFormatFig5:
    def _result(self):
        return Fig5Result(
            design="blockX",
            bin_edges=np.linspace(-0.1, 0.1, 5),
            default_counts=np.array([1, 0, 3, 2]),
            rlccd_counts=np.array([2, 1, 0, 4]),
            num_prioritized=7,
            default_total_skew=0.5,
            rlccd_total_skew=0.9,
        )

    def test_contains_header_and_totals(self):
        text = format_fig5(self._result())
        assert "blockX" in text
        assert "prioritized 7 endpoints" in text
        assert "0.500" in text and "0.900" in text

    def test_one_row_per_bin(self):
        text = format_fig5(self._result())
        rows = [ln for ln in text.splitlines() if ln.strip().startswith("[")]
        assert len(rows) == 4

    def test_bars_scale_to_peak(self):
        text = format_fig5(self._result())
        # Peak count is 4 -> the longest star bar has 20 chars.
        star_rows = [ln for ln in text.splitlines() if "*" in ln]
        assert any(ln.count("*") == 20 for ln in star_rows)


class TestFormatFig6:
    def test_curves_and_convergence_lines(self):
        result = Fig6Result(
            design="blockY",
            scratch_curve=np.array([-5.0, -4.0, -4.0]),
            transfer_curve=np.array([-4.5, -4.0]),
            scratch_episodes_to_best=2,
            transfer_episodes_to_best=2,
            pretrain_designs=["a", "b"],
        )
        text = format_fig6(result)
        assert "blockY" in text
        assert "a, b" in text
        assert "episodes to best: scratch 2, transfer 2" in text
        assert "scratch-final quality" in text

    def test_unequal_curve_lengths_padded(self):
        result = Fig6Result(
            design="z",
            scratch_curve=np.array([-1.0]),
            transfer_curve=np.array([-1.0, -0.5, -0.25]),
            scratch_episodes_to_best=1,
            transfer_episodes_to_best=3,
            pretrain_designs=["s"],
        )
        text = format_fig6(result)
        assert "nan" in text  # the padded scratch rows

    def test_episodes_to_reach(self):
        result = Fig6Result(
            design="z",
            scratch_curve=np.array([-3.0, -2.0, -2.0]),
            transfer_curve=np.array([-2.5, -2.0, -1.5]),
            scratch_episodes_to_best=2,
            transfer_episodes_to_best=3,
            pretrain_designs=["s"],
        )
        s, t = result.episodes_to_reach(-2.0)
        assert (s, t) == (2, 2)
        s, t = result.episodes_to_reach(-1.5)
        assert (s, t) == (0, 3)  # scratch never reaches -1.5


class TestFormatAblations:
    def test_format_ablation_rows(self):
        points = [
            AblationPoint("config-a", tns=-1.0, wns=-0.2, nve=5, num_selected=3),
            AblationPoint("config-b", tns=-0.5, wns=-0.1, nve=2, num_selected=9),
        ]
        text = format_ablation("my title", points)
        assert text.startswith("my title")
        assert "config-a" in text and "config-b" in text
        assert "-1.000" in text

    def test_format_ppa_rows(self):
        points = [
            PpaPoint("fixed", -1.0, -0.2, 5, 3, power=12.5, area=800.0),
        ]
        text = format_ppa("ppa title", points)
        assert "ppa title" in text
        assert "12.500" in text
        assert "800.0" in text
