"""Property-style invariants of the (incremental) STA engine.

These hold for *any* analysis regardless of which engine served it; each
test exercises them through an incremental analyzer mid-mutation-sequence
so a violation implicates the dirty-set bookkeeping, and re-checks against
the full engine where the property is about engine agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccd.margins import remove_margins
from repro.netlist.generator import quick_design
from repro.placement import PlacementConfig, place_design
from repro.timing.clock import ClockModel
from repro.timing.metrics import choose_clock_period
from repro.timing.sta import TimingAnalyzer


@pytest.fixture(scope="module")
def design():
    netlist = quick_design(name="sta_props", n_cells=200, seed=17)
    place_design(netlist, PlacementConfig(seed=2))
    nominal = netlist.library.default_clock_period
    scratch = TimingAnalyzer(netlist, incremental=False)
    report = scratch.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    return netlist, period


def _margins_for(netlist, report):
    endpoints = netlist.endpoints()
    return {int(e): 0.05 * (1 + i % 3) for i, e in enumerate(endpoints[:6])}


def _shake(netlist, analyzer, clock, rng):
    """A few CCD-style mutations so the cached state is genuinely dirty."""
    comb = [
        c.index
        for c in netlist.cells
        if not c.cell_type.is_port and not c.is_sequential
    ]
    for _ in range(5):
        cell = netlist.cells[int(rng.choice(comb))]
        netlist.resize_cell(
            cell.index, int(rng.integers(0, cell.cell_type.max_size_index + 1))
        )
        analyzer.notify_resize(cell.index)
    flop = int(rng.choice(netlist.sequential_cells()))
    room = clock.bound(flop) - clock.arrival(flop)
    if room > 1e-9:
        clock.adjust_arrival(flop, 0.5 * room)
        analyzer.notify_skew((flop,))


def test_slack_with_margins_is_slack_minus_margins(design):
    netlist, period = design
    clock = ClockModel.for_netlist(netlist, period)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    rng = np.random.default_rng(0)

    report = analyzer.analyze(clock)
    margins = _margins_for(netlist, report)
    for _ in range(3):
        _shake(netlist, analyzer, clock, rng)
        report = analyzer.analyze(clock, margins)
        np.testing.assert_allclose(
            report.slack_with_margins,
            report.slack - report.margins,
            rtol=0.0,
            atol=0.0,
        )


def test_margins_never_change_cell_arrival(design):
    netlist, period = design
    clock = ClockModel.for_netlist(netlist, period)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    rng = np.random.default_rng(1)

    baseline = analyzer.analyze(clock)
    margins = _margins_for(netlist, baseline)
    margined = analyzer.analyze(clock, margins)
    assert np.array_equal(margined.cell_arrival, baseline.cell_arrival)
    assert np.array_equal(margined.cell_slew, baseline.cell_slew)
    assert np.array_equal(margined.cell_required, baseline.cell_required)

    # Still true when the margin flip rides along with real timing changes.
    _shake(netlist, analyzer, clock, rng)
    with_margins = analyzer.analyze(clock, margins)
    without = analyzer.analyze(clock)
    assert np.array_equal(with_margins.cell_arrival, without.cell_arrival)


def test_endpoint_ordering_canonical_and_stable(design):
    netlist, period = design
    clock = ClockModel.for_netlist(netlist, period)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    rng = np.random.default_rng(2)

    canonical = TimingAnalyzer(netlist, incremental=False).analyze(clock).endpoints
    assert np.array_equal(canonical, np.sort(canonical))  # index order
    for _ in range(3):
        _shake(netlist, analyzer, clock, rng)
        assert np.array_equal(analyzer.analyze(clock).endpoints, canonical)


def test_remove_margins_round_trip_under_incremental(design):
    netlist, period = design
    clock = ClockModel.for_netlist(netlist, period)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    rng = np.random.default_rng(3)

    before = analyzer.analyze(clock)
    margins = _margins_for(netlist, before)
    analyzer.analyze(clock, margins)

    removed = remove_margins(margins)
    assert removed == {}
    analyzer.notify_margins()
    after = analyzer.analyze(clock, removed)
    for name in ("slack", "arrival", "required", "cell_worst_slack"):
        assert np.array_equal(getattr(after, name), getattr(before, name)), name
    assert not after.margins.any()
    # The margined view collapses back onto the true view.
    assert np.array_equal(after.cell_worst_slack_margined, after.cell_worst_slack)

    # Apply → mutate → remove must also land exactly on the full engine.
    analyzer.analyze(clock, margins)
    _shake(netlist, analyzer, clock, rng)
    incremental = analyzer.analyze(clock)
    full = TimingAnalyzer(netlist, incremental=False).analyze(clock)
    for name in ("slack", "arrival", "required", "cell_worst_slack"):
        assert np.allclose(
            getattr(incremental, name), getattr(full, name), rtol=0.0, atol=1e-9
        ), name
