"""Tests for Module bookkeeping, Linear, MLP, LSTMCell, PointerAttention,
optimizers and parameter serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import PointerAttention
from repro.nn.layers import MLP, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.recurrent import LSTMCell
from repro.nn.serialization import load_into, load_state, save_state
from repro.nn.tensor import Tensor


class TestModule:
    def test_parameters_recursive(self):
        outer = Module()
        inner = Linear(2, 3, rng=0)
        outer.register_module("inner", inner)
        outer.register_parameter("own", np.zeros(4))
        params = outer.parameters()
        assert len(params) == 3  # own + inner weight + inner bias

    def test_duplicate_parameter_raises(self):
        m = Module()
        m.register_parameter("p", np.zeros(1))
        with pytest.raises(ValueError):
            m.register_parameter("p", np.zeros(1))

    def test_duplicate_module_raises(self):
        m = Module()
        m.register_module("c", Linear(1, 1, rng=0))
        with pytest.raises(ValueError):
            m.register_module("c", Linear(1, 1, rng=0))

    def test_named_parameters_dotted(self):
        m = Module()
        m.register_module("child", Linear(2, 2, rng=0))
        names = [n for n, _ in m.named_parameters()]
        assert "child.weight" in names
        assert "child.bias" in names

    def test_zero_grad_clears_all(self):
        lin = Linear(2, 2, rng=0)
        out = lin(Tensor(np.ones(2)))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_num_parameters(self):
        lin = Linear(3, 4, rng=0)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=0)
        b = Linear(3, 2, rng=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_is_copy(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"][:] = 99.0
        assert not np.any(lin.weight.data == 99.0)

    def test_load_strict_mismatch_raises(self):
        lin = Linear(2, 2, rng=0)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_non_strict_ignores_extra(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["phantom"] = np.zeros(1)
        lin.load_state_dict(state, strict=False)

    def test_load_shape_mismatch_raises(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        lin = Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        out = lin(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ lin.weight.data + lin.bias.data, atol=1e-12
        )

    def test_no_bias(self):
        lin = Linear(2, 2, bias=False, rng=0)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        lin = Linear(3, 2, rng=0)
        lin(Tensor(rng.normal(size=3))).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None

    def test_seeded_init_deterministic(self):
        a, b = Linear(4, 4, rng=7), Linear(4, 4, rng=7)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestMLP:
    def test_shapes(self, rng):
        mlp = MLP([4, 8, 2], rng=0)
        out = mlp(Tensor(rng.normal(size=(6, 4))))
        assert out.shape == (6, 2)

    def test_too_few_dims_raises(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP([2, 2], activation="swishish")

    def test_final_activation_identity_default(self, rng):
        mlp = MLP([2, 2], rng=0)
        out = mlp(Tensor(rng.normal(size=(3, 2)) * 10))
        # tanh would clamp to (-1, 1); identity can exceed it.
        assert np.any(np.abs(out.data) >= 0.0)

    def test_trains_on_regression(self, rng):
        mlp = MLP([1, 8, 1], rng=0)
        opt = Adam(mlp.parameters(), lr=0.02)
        x = np.linspace(-1, 1, 16)[:, None]
        y = 0.5 * x
        first_loss = None
        for _ in range(150):
            opt.zero_grad()
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.1


class TestLSTMCell:
    def test_initial_state_zero(self):
        cell = LSTMCell(3, 5, rng=0)
        h, c = cell.initial_state()
        np.testing.assert_array_equal(h.data, np.zeros(5))
        np.testing.assert_array_equal(c.data, np.zeros(5))

    def test_step_shapes(self, rng):
        cell = LSTMCell(3, 5, rng=0)
        h, c = cell(Tensor(rng.normal(size=3)), cell.initial_state())
        assert h.shape == (5,)
        assert c.shape == (5,)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(3, 5, rng=0)
        h, _ = cell(Tensor(rng.normal(size=3) * 100), cell.initial_state())
        assert np.all(np.abs(h.data) <= 1.0)

    def test_wrong_input_shape_raises(self):
        cell = LSTMCell(3, 5, rng=0)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros(4)), cell.initial_state())

    def test_wrong_hidden_shape_raises(self):
        cell = LSTMCell(3, 5, rng=0)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros(3)), (Tensor(np.zeros(4)), Tensor(np.zeros(5))))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 5)

    def test_forget_bias_initialized_positive(self):
        cell = LSTMCell(2, 4, rng=0)
        H = 4
        np.testing.assert_array_equal(cell.bias.data[H : 2 * H], np.ones(H))

    def test_gradient_through_two_steps(self, rng):
        cell = LSTMCell(2, 3, rng=0)
        state = cell.initial_state()
        x1, x2 = Tensor(rng.normal(size=2)), Tensor(rng.normal(size=2))
        h, c = cell(x1, state)
        h, c = cell(x2, (h, c))
        (h * h).sum().backward()
        assert cell.weight.grad is not None
        assert np.any(cell.weight.grad != 0)

    def test_gate_equations_numeric(self, rng):
        """Hand-compute Eq. 4 from the fused weights and compare."""
        cell = LSTMCell(2, 3, rng=0)
        x = rng.normal(size=2)
        h0 = rng.normal(size=3)
        c0 = rng.normal(size=3)
        fused = np.concatenate([h0, x]) @ cell.weight.data + cell.bias.data
        H = 3

        def sig(v):
            return 1 / (1 + np.exp(-v))

        i, f, o = sig(fused[:H]), sig(fused[H : 2 * H]), sig(fused[2 * H : 3 * H])
        c_tilde = np.tanh(fused[3 * H :])
        c1 = f * c0 + i * c_tilde
        h1 = o * np.tanh(c1)
        h_out, c_out = cell(Tensor(x), (Tensor(h0), Tensor(c0)))
        np.testing.assert_allclose(h_out.data, h1, atol=1e-10)
        np.testing.assert_allclose(c_out.data, c1, atol=1e-10)


class TestPointerAttention:
    def test_scores_shape(self, rng):
        attn = PointerAttention(8, 5, 6, rng=0)
        scores = attn.scores(Tensor(rng.normal(size=(10, 8))), Tensor(rng.normal(size=5)))
        assert scores.shape == (10,)

    def test_forward_distribution(self, rng):
        attn = PointerAttention(8, 5, 6, rng=0)
        valid = np.array([1, 1, 0, 1, 0, 1, 1, 1, 0, 1], bool)
        p = attn(Tensor(rng.normal(size=(10, 8))), Tensor(rng.normal(size=5)), valid)
        assert p.data.sum() == pytest.approx(1.0)
        assert np.all(p.data[~valid] == 0.0)

    def test_eq5_formula(self, rng):
        """A_i = vᵀ tanh(W1·F_i + W2·q), verified against numpy."""
        attn = PointerAttention(4, 3, 5, rng=0)
        F = rng.normal(size=(6, 4))
        q = rng.normal(size=3)
        expected = np.tanh(F @ attn.w1.data + q @ attn.w2.data) @ attn.v.data
        scores = attn.scores(Tensor(F), Tensor(q))
        np.testing.assert_allclose(scores.data, expected, atol=1e-12)

    def test_bad_embedding_shape_raises(self, rng):
        attn = PointerAttention(4, 3, 5, rng=0)
        with pytest.raises(ValueError):
            attn.scores(Tensor(rng.normal(size=(6, 5))), Tensor(rng.normal(size=3)))

    def test_bad_query_shape_raises(self, rng):
        attn = PointerAttention(4, 3, 5, rng=0)
        with pytest.raises(ValueError):
            attn.scores(Tensor(rng.normal(size=(6, 4))), Tensor(rng.normal(size=4)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            PointerAttention(0, 3, 5)

    def test_gradients_reach_all_parameters(self, rng):
        attn = PointerAttention(4, 3, 5, rng=0)
        valid = np.ones(6, bool)
        p = attn(Tensor(rng.normal(size=(6, 4))), Tensor(rng.normal(size=3)), valid)
        p[2].backward()
        for param in attn.parameters():
            assert param.grad is not None


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kwargs):
        t = Tensor([5.0], requires_grad=True)
        opt = opt_cls([t], **kwargs)
        for _ in range(200):
            opt.zero_grad()
            (t * t).backward()
            opt.step()
        return abs(t.data[0])

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_step(SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges_on_quadratic(self):
        assert self._quadratic_step(Adam, lr=0.2) < 1e-2

    def test_invalid_lr_raises(self):
        t = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            SGD([t], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([t], lr=0.0)

    def test_invalid_momentum_raises(self):
        t = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            SGD([t], momentum=1.0)

    def test_invalid_betas_raise(self):
        t = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            Adam([t], betas=(1.0, 0.9))

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_non_grad_param_raises(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])])

    def test_step_skips_gradless(self):
        t = Tensor([1.0], requires_grad=True)
        Adam([t]).step()  # no grad accumulated; must not crash or move
        assert t.data[0] == 1.0

    def test_adam_bias_correction_first_step(self):
        t = Tensor([0.0], requires_grad=True)
        opt = Adam([t], lr=0.1)
        t.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step size is exactly lr.
        assert t.data[0] == pytest.approx(-0.1, rel=1e-6)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        a = Linear(3, 2, rng=0)
        path = str(tmp_path / "weights.npz")
        save_state(a, path)
        b = Linear(3, 2, rng=5)
        load_into(b, path)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(str(tmp_path / "nope.npz"))

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "er" / "w.npz")
        save_state(Linear(2, 2, rng=0), path)
        assert load_state(path)


class TestGRUCell:
    def test_initial_state_zero_pair(self):
        from repro.nn.recurrent import GRUCell

        cell = GRUCell(3, 5, rng=0)
        h, c = cell.initial_state()
        np.testing.assert_array_equal(h.data, np.zeros(5))
        np.testing.assert_array_equal(c.data, np.zeros(5))

    def test_step_returns_same_tensor_twice(self):
        from repro.nn.recurrent import GRUCell
        from repro.nn.tensor import Tensor

        cell = GRUCell(3, 5, rng=0)
        h, c = cell(Tensor(np.ones(3)), cell.initial_state())
        assert h is c

    def test_invalid_dims(self):
        from repro.nn.recurrent import GRUCell

        with pytest.raises(ValueError):
            GRUCell(0, 4)

    def test_shape_checks(self):
        from repro.nn.recurrent import GRUCell
        from repro.nn.tensor import Tensor

        cell = GRUCell(3, 5, rng=0)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros(4)), cell.initial_state())
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros(3)), (Tensor(np.zeros(4)), Tensor(np.zeros(4))))

    def test_gate_equations_numeric(self, rng):
        from repro.nn.recurrent import GRUCell
        from repro.nn.tensor import Tensor

        cell = GRUCell(2, 3, rng=0)
        x = rng.normal(size=2)
        h0 = rng.normal(size=3)
        fused = np.concatenate([h0, x]) @ cell.gate_weight.data + cell.gate_bias.data

        def sig(v):
            return 1 / (1 + np.exp(-v))

        r, z = sig(fused[:3]), sig(fused[3:])
        cand = np.tanh(
            np.concatenate([r * h0, x]) @ cell.cand_weight.data + cell.cand_bias.data
        )
        expected = (1 - z) * h0 + z * cand
        h, _ = cell(Tensor(x), (Tensor(h0), Tensor(h0)))
        np.testing.assert_allclose(h.data, expected, atol=1e-10)

    def test_fewer_parameters_than_lstm(self):
        from repro.nn.recurrent import GRUCell, LSTMCell

        gru = GRUCell(16, 16, rng=0)
        lstm = LSTMCell(16, 16, rng=0)
        assert gru.num_parameters() < lstm.num_parameters()

    def test_gradients_flow(self, rng):
        from repro.nn.recurrent import GRUCell
        from repro.nn.tensor import Tensor

        cell = GRUCell(2, 3, rng=0)
        h, c = cell(Tensor(rng.normal(size=2)), cell.initial_state())
        (h * h).sum().backward()
        for p in cell.parameters():
            assert p.grad is not None


class TestPolicyEncoderChoice:
    def test_gru_policy_rolls_out(self, small_design=None):
        from repro.agent.policy import RLCCDPolicy
        from repro.features.table1 import NUM_FEATURES

        policy = RLCCDPolicy(NUM_FEATURES, encoder_type="gru", rng=0)
        assert policy.encoder_type == "gru"
        assert policy.num_parameters() > 0

    def test_unknown_encoder_rejected(self):
        from repro.agent.policy import RLCCDPolicy
        from repro.features.table1 import NUM_FEATURES

        with pytest.raises(ValueError):
            RLCCDPolicy(NUM_FEATURES, encoder_type="transformer")
