"""Scale-path tests: the vectorized design generator, the fast-path wiring
in ``build_design``, and the scale-sweep bench section with its
``section.scale.*`` pseudo-phases.

The sweep itself runs here at its floor sizes (1000 cells) so the suite
stays fast; the 10K–200K points run in the nightly ``scale-sweep`` job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchsuite.designs import (
    FAST_PATH_MIN_CELLS,
    DesignSpec,
    bench_scale,
    build_design,
)
from repro.benchsuite.scale import fast_design
from repro.netlist.generator import GeneratorConfig
from repro.netlist.validate import validate_netlist
from repro.obs.bench import BenchConfig, ScaleSweepConfig, run_scale_sweep, scale_label
from repro.obs.history import section_medians
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


def _config(n_cells: int, seed: int = 5) -> GeneratorConfig:
    return GeneratorConfig(
        name=f"scale{n_cells}",
        n_cells=n_cells,
        seed=seed,
        n_inputs=max(8, n_cells // 40),
        n_outputs=max(6, n_cells // 60),
    )


class TestFastDesign:
    def test_valid_and_analyzable(self):
        netlist = fast_design(_config(2_000))
        validate_netlist(netlist)  # acyclic, fully driven, sinks everywhere
        analyzer = TimingAnalyzer(netlist, incremental=False)
        report = analyzer.analyze(
            ClockModel.for_netlist(netlist, netlist.library.default_clock_period)
        )
        assert report.endpoints.size > 0
        assert np.isfinite(report.arrival).all()

    def test_deterministic(self):
        a = fast_design(_config(1_500))
        b = fast_design(_config(1_500))
        assert [c.name for c in a.cells] == [c.name for c in b.cells]
        assert [c.size_index for c in a.cells] == [c.size_index for c in b.cells]
        assert [tuple(c.fanin_nets) for c in a.cells] == [
            tuple(c.fanin_nets) for c in b.cells
        ]
        assert [(c.x, c.y) for c in a.cells] == [(c.x, c.y) for c in b.cells]

    def test_seed_changes_structure(self):
        a = fast_design(_config(1_500, seed=5))
        b = fast_design(_config(1_500, seed=6))
        assert [tuple(c.fanin_nets) for c in a.cells] != [
            tuple(c.fanin_nets) for c in b.cells
        ]

    def test_cell_count_exact(self):
        netlist = fast_design(_config(3_000))
        assert netlist.num_cells == 3_000


class TestBuildDesignFastPath:
    def test_large_spec_uses_fast_path(self):
        # paper_cells chosen so n_cells() clears the fast-path floor at any
        # REPRO_BENCH_SCALE <= the default.
        spec = DesignSpec("huge", FAST_PATH_MIN_CELLS * bench_scale(), "tech7", 7, 0.4)
        assert spec.n_cells() >= FAST_PATH_MIN_CELLS
        prepared = build_design(spec)
        assert prepared.netlist.num_cells == spec.n_cells()
        assert prepared.clock_period > 0.0
        # Placed inline: every cell has coordinates on the die.
        assert all(c.x >= 0.0 and c.y >= 0.0 for c in prepared.netlist.cells)


class TestScaleSweepConfig:
    def test_rejects_empty_cells(self):
        with pytest.raises(ValueError, match="at least one"):
            ScaleSweepConfig(cells=())

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError, match=">= 1000"):
            ScaleSweepConfig(cells=(500,))

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            ScaleSweepConfig(rounds=0)

    def test_labels(self):
        assert scale_label(10_000) == "10k"
        assert scale_label(200_000) == "200k"
        assert scale_label(1_500) == "1500"


class TestBenchConfigMessage:
    def test_cells_error_reports_value_and_minimum(self):
        with pytest.raises(ValueError) as excinfo:
            BenchConfig(cells=49)
        assert "cells=49" in str(excinfo.value)
        assert "minimum of 50" in str(excinfo.value)


class TestRunScaleSweep:
    def test_sweep_section_shape_and_medians(self):
        config = ScaleSweepConfig(seed=3, cells=(1_000,), rounds=1, resizes_per_round=8)
        section = run_scale_sweep(config)
        assert set(section["designs"]) == {"1k"}
        entry = section["designs"]["1k"]
        assert entry["cells"] == 1_000
        assert entry["peak_mb"] > 0.0
        # 1000 <= scalar_max_cells, so the scalar reference ran too.
        assert entry["scalar_s"] is not None
        assert entry["speedup"] is not None
        per_kcell = entry["per_kcell"]
        assert set(per_kcell) == {"build", "compile", "full_analyze", "incremental"}
        assert all(v > 0.0 for v in per_kcell.values())

        # The sweep feeds the nightly gate as section.scale.* pseudo-phases.
        medians = section_medians({"scale": section})
        assert set(medians) == {
            "section.scale.1k.build",
            "section.scale.1k.compile",
            "section.scale.1k.full_analyze",
            "section.scale.1k.incremental",
        }
        assert medians["section.scale.1k.incremental"] == pytest.approx(
            per_kcell["incremental"]
        )
