"""Autograd engine tests: ops, broadcasting, and numeric gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import (
    Tensor,
    concat,
    outer,
    scatter_rows,
    segment_sum,
    stack,
    where,
)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build, x: np.ndarray, tolerance: float = 1e-6) -> None:
    """Assert autograd gradient of ``build(Tensor)`` matches numerics."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).item(), x)
    np.testing.assert_allclose(t.grad, expected, atol=tolerance, rtol=1e-4)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_construction_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.shares_memory(a.data, b.data)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_on_vector_raises(self):
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_tape(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_without_grad_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmetic:
    def test_add_forward(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_gradients_both_sides(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_add_broadcast_scalar(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a + 5.0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))

    def test_add_broadcast_row_gradient(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(b.grad, [4.0, 4.0, 4.0])

    def test_radd(self):
        out = 2.0 + Tensor([1.0])
        assert out.data[0] == 3.0

    def test_sub_and_rsub(self):
        a = Tensor([5.0])
        assert (a - 2.0).data[0] == 3.0
        assert (10.0 - a).data[0] == 5.0

    def test_neg_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        (-a).sum().backward()
        assert a.grad[0] == -1.0

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [4.0, 5.0])
        np.testing.assert_array_equal(b.grad, [2.0, 3.0])

    def test_div_gradient_numeric(self, rng):
        x = rng.uniform(0.5, 2.0, size=(3, 2))
        check_gradient(lambda t: (t / Tensor([2.0, 4.0])).sum(), x)

    def test_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (4.0 / a).backward()
        assert a.grad[0] == pytest.approx(-1.0)

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_reuse_accumulates_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a).backward()  # d/da (a² + a) = 2a + 1 = 5
        assert a.grad[0] == pytest.approx(5.0)


class TestMatmul:
    def test_2d_2d_forward(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_2d_2d_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        w = Tensor(rng.normal(size=(4, 2)))
        check_gradient(lambda t: (t @ w).sum(), x)

    def test_2d_2d_gradient_rhs(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        x = rng.normal(size=(4, 2))
        check_gradient(lambda t: (a @ t).sum(), x)

    def test_1d_2d_gradient(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        check_gradient(lambda t: (t @ w).sum(), rng.normal(size=4))

    def test_2d_1d_gradient(self, rng):
        v = Tensor(rng.normal(size=3))
        check_gradient(lambda t: (t @ v).sum(), rng.normal(size=(2, 3)))

    def test_1d_1d_gradient(self, rng):
        v = Tensor(rng.normal(size=5))
        check_gradient(lambda t: t @ v, rng.normal(size=5))

    def test_unsupported_ranks_rejected(self):
        # 3-D is now supported on the left (batched episodes); a 4-D left
        # operand or a >2-D right operand stays out of contract.
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2, 2, 2))) @ Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2))) @ Tensor(np.zeros((2, 2, 2)))

    def test_3d_2d_gradient(self, rng):
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: (t @ w).sum(), rng.normal(size=(2, 5, 3)))

    def test_3d_2d_weight_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 5, 3)))
        check_gradient(lambda t: (a @ t).sum(), rng.normal(size=(3, 4)))

    def test_3d_1d_gradient(self, rng):
        v = Tensor(rng.normal(size=3))
        check_gradient(lambda t: (t @ v).sum(), rng.normal(size=(2, 4, 3)))

    def test_3d_1d_vector_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 4, 3)))
        check_gradient(lambda t: (a @ t).sum(), rng.normal(size=3))

    def test_batched_matmul_matches_per_row(self, rng):
        a = rng.normal(size=(3, 4, 5))
        w = rng.normal(size=(5, 6))
        batched = Tensor(a) @ Tensor(w)
        for b in range(3):
            row = Tensor(a[b]) @ Tensor(w)
            np.testing.assert_allclose(
                batched.data[b], row.data, atol=1e-12, rtol=0.0
            )


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu"])
    def test_gradient_matches_numeric(self, op, rng):
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: getattr(t, op)().sum(), x)

    def test_log_gradient(self, rng):
        x = rng.uniform(0.2, 3.0, size=(3, 3))
        check_gradient(lambda t: t.log().sum(), x)

    def test_sigmoid_saturation_is_finite(self):
        out = Tensor([1000.0, -1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(1.0)
        assert out.data[1] == pytest.approx(0.0)

    def test_relu_zeroes_negative(self):
        out = Tensor([-1.0, 2.0]).relu()
        np.testing.assert_array_equal(out.data, [0.0, 2.0])


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x)

    def test_sum_keepdims_shape(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_gradient(self, rng):
        x = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t.mean() ** 2), x)

    def test_mean_axis_value(self):
        out = Tensor([[1.0, 3.0], [5.0, 7.0]]).mean(axis=0)
        np.testing.assert_array_equal(out.data, [3.0, 5.0])

    def test_max_all_gradient(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        out = Tensor([[1.0, 9.0], [7.0, 2.0]]).max(axis=1)
        np.testing.assert_array_equal(out.data, [9.0, 7.0])


class TestShapeOps:
    def test_reshape_gradient(self, rng):
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose_roundtrip(self, rng):
        x = rng.normal(size=(2, 5))
        t = Tensor(x)
        np.testing.assert_array_equal(t.T.T.data, x)

    def test_transpose_gradient(self, rng):
        x = rng.normal(size=(3, 2))
        v = Tensor(rng.normal(size=(3,)))
        check_gradient(lambda t: (t.T @ v).sum(), x)

    def test_getitem_row_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a[0].sum().backward()
        np.testing.assert_array_equal(a.grad, [[1, 1, 1], [0, 0, 0]])

    def test_getitem_slice(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[slice(1, 4)].sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1, 1, 1, 0])

    def test_gather_rows_repeats_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        a.gather_rows(np.array([0, 0, 2])).sum().backward()
        np.testing.assert_array_equal(a.grad, [[2, 2], [0, 0], [1, 1]])


class TestCombinators:
    def test_concat_forward(self):
        out = concat([Tensor([1.0]), Tensor([2.0, 3.0])])
        np.testing.assert_array_equal(out.data, [1.0, 2.0, 3.0])

    def test_concat_gradient_split(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (concat([a, b]) * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 2.0])
        np.testing.assert_array_equal(b.grad, [3.0])

    def test_concat_axis1(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 3))
        out = concat([Tensor(a), Tensor(b)], axis=1)
        assert out.shape == (2, 5)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_stack_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (stack([a, b]) * Tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [2.0, 2.0])

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])

    def test_where_selects(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        np.testing.assert_array_equal(out.data, [1.0, 9.0])

    def test_where_gradient_routing(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0, 2.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])


class TestSegmentOps:
    def test_segment_sum_forward(self):
        rows = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        out = segment_sum(rows, np.array([0, 2, 0]), 3)
        np.testing.assert_array_equal(
            out.data, [[6.0, 8.0], [0.0, 0.0], [3.0, 4.0]]
        )

    def test_segment_sum_gradient(self):
        rows = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], requires_grad=True)
        out = segment_sum(rows, np.array([1, 1, 0]), 2)
        (out * Tensor([[1.0, 1.0], [3.0, 3.0]])).sum().backward()
        np.testing.assert_array_equal(
            rows.grad, [[3.0, 3.0], [3.0, 3.0], [1.0, 1.0]]
        )

    def test_segment_sum_numeric_gradient(self, rng):
        x = rng.normal(size=(5, 3))
        seg = np.array([0, 1, 0, 2, 1])
        check_gradient(lambda t: (segment_sum(t, seg, 3) ** 2).sum(), x)

    def test_outer_forward_and_gradient(self):
        row = Tensor([2.0, 3.0], requires_grad=True)
        out = outer(np.array([1.0, 0.0, -2.0]), row)
        np.testing.assert_array_equal(
            out.data, [[2.0, 3.0], [0.0, 0.0], [-4.0, -6.0]]
        )
        out.sum().backward()
        np.testing.assert_array_equal(row.grad, [-1.0, -1.0])

    def test_outer_numeric_gradient(self, rng):
        x = rng.normal(size=4)
        col = rng.normal(size=6)
        check_gradient(lambda t: (outer(col, t) ** 2).sum(), x)

    def test_scatter_rows_forward(self):
        base = Tensor([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        rows = Tensor([[9.0, 9.0]])
        out = scatter_rows(base, np.array([1]), rows)
        np.testing.assert_array_equal(
            out.data, [[1.0, 1.0], [9.0, 9.0], [3.0, 3.0]]
        )
        # base untouched (functional update, not in place)
        np.testing.assert_array_equal(base.data[1], [2.0, 2.0])

    def test_scatter_rows_gradient_routing(self):
        base = Tensor(np.ones((3, 2)), requires_grad=True)
        rows = Tensor(np.full((1, 2), 5.0), requires_grad=True)
        out = scatter_rows(base, np.array([2]), rows)
        (out * Tensor([[1.0, 1.0], [2.0, 2.0], [7.0, 7.0]])).sum().backward()
        # Overwritten base row gets zero grad; rows get the written slot's.
        np.testing.assert_array_equal(base.grad, [[1, 1], [2, 2], [0, 0]])
        np.testing.assert_array_equal(rows.grad, [[7.0, 7.0]])

    def test_scatter_rows_numeric_gradient(self, rng):
        indices = np.array([0, 3])
        replacement = rng.normal(size=(2, 3))

        def build_base(t):
            return (scatter_rows(t, indices, Tensor(replacement)) ** 2).sum()

        check_gradient(build_base, rng.normal(size=(5, 3)))
        base = rng.normal(size=(5, 3))

        def build_rows(t):
            return (scatter_rows(Tensor(base), indices, t) ** 2).sum()

        check_gradient(build_rows, replacement)


class TestComposite:
    def test_mlp_like_chain(self, rng):
        x = rng.normal(size=(5, 4))
        w1 = Tensor(rng.normal(size=(4, 6)))
        w2 = Tensor(rng.normal(size=(6, 1)))
        check_gradient(lambda t: ((t @ w1).tanh() @ w2).sigmoid().sum(), x)

    def test_weight_gradient_through_chain(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        w = rng.normal(size=(4, 3))

        def build(t):
            return ((x @ t).sigmoid() ** 2).mean()

        check_gradient(build, w)

    def test_diamond_graph(self):
        # y = a*b + a*c where b, c derive from a: gradient accumulates.
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b * c).backward()  # y = 12 a², dy/da = 24a = 48
        assert a.grad[0] == pytest.approx(48.0)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_random_composite_gradients(rows, cols, seed):
    """Gradient of a random composite matches central differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = Tensor(rng.normal(size=(cols, 2)))

    def build(t):
        return ((t @ w).tanh() * 0.5 + 0.1).sigmoid().sum()

    check_gradient(build, x, tolerance=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 3), st.integers(1, 3)),
    seed=st.integers(0, 10_000),
)
def test_property_unbroadcast_row_and_col(shape, seed):
    """Broadcast add reduces gradients back to each operand's shape."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=shape), requires_grad=True)
    row = Tensor(rng.normal(size=(1, shape[1])), requires_grad=True)
    col = Tensor(rng.normal(size=(shape[0], 1)), requires_grad=True)
    (a + row + col).sum().backward()
    assert a.grad.shape == shape
    assert row.grad.shape == (1, shape[1])
    assert col.grad.shape == (shape[0], 1)
    np.testing.assert_allclose(row.grad, np.full((1, shape[1]), shape[0]))
    np.testing.assert_allclose(col.grad, np.full((shape[0], 1), shape[1]))
