"""Batched policy-stack equivalence: (B, N, F) encodes, B-row decodes.

The batched engine (:class:`repro.gnn.batched.BatchedEncoderSession` plus
:meth:`repro.agent.policy.RLCCDPolicy.rollout_batch`) carries a two-level
contract: B=1 reproduces the unbatched engine **bitwise** (trajectories,
log-probs, training histories), while B>1 rows match a per-row reference
within 1e-9 (BLAS GEMM-vs-GEMV and ``reduceat`` partial sums shift the
last bits).  Run under ``REPRO_GNN_CHECK=1`` (the ``batched-equivalence``
CI job does) every batched incremental encode is additionally
shadow-verified against a from-scratch batched encode; the assertions
here stay on so the suite is also meaningful without the env var.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.agent.env import EndpointSelectionEnv, EpisodeBatch
from repro.agent.policy import RLCCDPolicy, _masked_probabilities
from repro.agent.reinforce import TrainConfig, train_rlccd
from repro.ccd.flow import FlowConfig
from repro.features.table1 import NUM_FEATURES
from repro.gnn import incremental as gi
from repro.nn.attention import PointerAttention
from repro.nn.tensor import Tensor, segment_sum
from tests.test_nn_tensor import check_gradient

ATOL = 1e-9


@pytest.fixture
def env(small_design):
    nl, period = small_design
    return EndpointSelectionEnv(nl, period, rho=0.3)


@pytest.fixture
def policy():
    return RLCCDPolicy(NUM_FEATURES, rng=11)


def _stacked_features(env, rng, batch):
    """(B, N, F) stack: the reset features plus random mask flips per row."""
    env.reset()
    base = env.features()
    feats = np.stack([base] * batch)
    for b in range(1, batch):
        rows = rng.choice(env.endpoints, size=min(3, len(env.endpoints)), replace=False)
        feats[b, rows, 0] = 1.0
    return feats


class TestBatchedNumericGradients:
    def test_batched_segment_sum_numeric_gradient(self, rng):
        values = rng.standard_normal((2, 6, 3))
        segments = np.array([0, 0, 1, 2, 2, 2])
        check_gradient(
            lambda t: segment_sum(t, segments, 3).sum(), values
        )

    def test_batched_segment_sum_matches_per_row(self, rng):
        values = rng.standard_normal((3, 5, 4))
        segments = np.array([1, 0, 0, 2, 1])
        batched = segment_sum(Tensor(values), segments, 3)
        for b in range(3):
            row = segment_sum(Tensor(values[b]), segments, 3)
            np.testing.assert_allclose(
                batched.data[b], row.data, atol=1e-12, rtol=0.0
            )

    def test_batched_attention_numeric_gradient(self, rng):
        attention = PointerAttention(4, 3, 5, rng=0)
        query = rng.standard_normal((2, 3))
        embeddings = rng.standard_normal((2, 6, 4))
        check_gradient(
            lambda t: attention.scores(t, Tensor(query)).sum(), embeddings
        )

    def test_batched_attention_matches_per_row(self, rng):
        attention = PointerAttention(4, 3, 5, rng=0)
        query = rng.standard_normal((3, 3))
        embeddings = rng.standard_normal((3, 6, 4))
        batched = attention.scores(Tensor(embeddings), Tensor(query))
        for b in range(3):
            row = attention.scores(Tensor(embeddings[b]), Tensor(query[b]))
            np.testing.assert_allclose(
                batched.data[b], row.data, atol=ATOL, rtol=0.0
            )


class TestBatchedEncode:
    def test_batched_forward_matches_per_row(self, env, policy, rng):
        feats = _stacked_features(env, rng, 3)
        batched = policy.epgnn(feats, env.graph, env.cones)
        for b in range(3):
            row = policy.epgnn(feats[b], env.graph, env.cones)
            np.testing.assert_allclose(
                batched.data[b], row.data, atol=ATOL, rtol=0.0
            )

    def test_fused_full_encode_matches_generic(self, env, policy, rng):
        """The scatter-free fused full encode: values ≤ 1e-9, grads ≤ 1e-9."""
        feats = _stacked_features(env, rng, 3)
        session = policy.batched_encoder_session(env)
        session.begin_episode()
        fused = session.full_encode(feats)
        generic = policy.epgnn(feats, env.graph, env.cones)
        np.testing.assert_allclose(
            fused.data, generic.data, atol=ATOL, rtol=0.0
        )
        upstream = rng.standard_normal(fused.shape)
        for p in policy.epgnn.parameters():
            p.grad = None
        fused.backward(upstream)
        fused_grads = {
            name: np.array(p.grad)
            for name, p in policy.epgnn.named_parameters()
            if p.grad is not None
        }
        for p in policy.epgnn.parameters():
            p.grad = None
        generic.backward(upstream)
        for name, p in policy.epgnn.named_parameters():
            if p.grad is None:
                continue
            np.testing.assert_allclose(
                fused_grads[name],
                p.grad,
                atol=ATOL,
                rtol=0.0,
                err_msg=f"grad mismatch: {name}",
            )

    def test_b1_full_encode_bitwise_vs_unbatched(self, env, policy):
        """B=1 pins the generic tape: bitwise against the unbatched session."""
        env.reset()
        base = env.features()
        batched = policy.batched_encoder_session(env)
        batched.begin_episode()
        unbatched = policy.encoder_session(env)
        unbatched.begin_episode()
        one = batched.encode(base[None])
        ref = unbatched.encode(base)
        assert np.array_equal(one.data[0], ref.data)

    def test_incremental_steps_match_full(self, env, policy, rng):
        """Per-step batched incremental encodes ≤ 1e-9 from a fresh encode."""
        batch = 3
        session = policy.batched_encoder_session(env)
        session.begin_episode()
        episodes = EpisodeBatch(env, batch)
        states = episodes.reset()
        for _ in range(4):
            feats = episodes.features()
            incremental = session.encode(feats)
            reference = policy.epgnn(feats, env.graph, env.cones)
            np.testing.assert_allclose(
                incremental.data, reference.data, atol=ATOL, rtol=0.0
            )
            for b in range(batch):
                if states[b].done:
                    continue
                action = int(rng.choice(np.nonzero(states[b].valid)[0]))
                states[b] = episodes.step(b, action)

    def test_static_column_mismatch_raises(self, env, policy, rng):
        feats = _stacked_features(env, rng, 2)
        feats[1, :, 1] += 1.0  # diverge a static column across rows
        session = policy.batched_encoder_session(env)
        session.begin_episode()
        with pytest.raises(ValueError, match="static"):
            session.encode(feats)

    def test_shadow_check_catches_corrupted_cache(self, env, policy, rng):
        previous = gi.set_check(True)
        try:
            session = policy.batched_encoder_session(env)
            session.begin_episode()
            feats = _stacked_features(env, rng, 2)
            session.encode(feats)
            stepped = np.array(feats, copy=True)
            stepped[:, env.endpoints[0], 0] = 1.0
            session._emb.data[:, :, :] += 1.0
            with pytest.raises(RuntimeError, match="drift"):
                session.encode(stepped)
        finally:
            gi.set_check(previous)


class TestMaskedProbabilities:
    def test_batched_rows_match_unbatched(self, rng):
        scores = rng.standard_normal((4, 7))
        valid = rng.random((4, 7)) > 0.3
        valid[:, 0] = True  # every row keeps at least one valid position
        batched = _masked_probabilities(scores, valid)
        for b in range(4):
            row = _masked_probabilities(scores[b], valid[b])
            assert np.array_equal(batched[b], row)

    def test_all_invalid_row_raises(self):
        scores = np.zeros((2, 3))
        valid = np.array([[True, False, True], [False, False, False]])
        with pytest.raises(ValueError):
            _masked_probabilities(scores, valid)


class TestRolloutBatchEquivalence:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_b1_bitwise_identical_to_rollout(self, env, policy, incremental):
        """The hard contract: B=1 batched == unbatched, bitwise."""
        for seed in (0, 3):
            single = policy.rollout(env, rng=seed, incremental=incremental)
            (batched,) = policy.rollout_batch(
                env, 1, rng=seed, incremental=incremental
            )
            assert single.actions == batched.actions
            assert single.action_cells == batched.action_cells
            for a, b in zip(single.log_probs, batched.log_probs):
                assert np.array_equal(a.data, b.data)
            for a, b in zip(single.probabilities, batched.probabilities):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("incremental", [False, True])
    def test_b4_deterministic_for_fixed_seed(self, env, policy, incremental):
        first = policy.rollout_batch(env, 4, rng=13, incremental=incremental)
        second = policy.rollout_batch(env, 4, rng=13, incremental=incremental)
        assert len(first) == len(second) == 4
        for a, b in zip(first, second):
            assert a.actions == b.actions
            for la, lb in zip(a.log_probs, b.log_probs):
                assert np.array_equal(la.data, lb.data)

    def test_b4_under_shadow_check(self, env, policy):
        previous = gi.set_check(True)
        try:
            trajectories = policy.rollout_batch(env, 4, rng=5, incremental=True)
        finally:
            gi.set_check(previous)
        assert len(trajectories) == 4
        assert all(len(t) >= 1 for t in trajectories)

    def test_b4_episodes_are_complete_and_distinct(self, env, policy):
        trajectories = policy.rollout_batch(env, 4, rng=2)
        assert len({tuple(t.actions) for t in trajectories}) > 1
        for trajectory in trajectories:
            assert len(set(trajectory.actions)) == len(trajectory.actions)

    def test_invalid_batch_raises(self, env, policy):
        with pytest.raises(ValueError):
            policy.rollout_batch(env, 0)


class TestBatchedTraining:
    def _train(self, small_design, batch_episodes):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=21)
        config = TrainConfig(
            max_episodes=4,
            seed=4,
            max_selection_steps=6,
            episodes_per_update=2,
            batch_episodes=batch_episodes,
        )
        return train_rlccd(policy, env, FlowConfig(clock_period=period), config)

    def test_b1_training_history_byte_identical(self, small_design):
        """batch_episodes=1 runs the original trainer path unchanged."""
        default = self._train(small_design, batch_episodes=1)
        # Same config, fresh run: determinism sanity for the baseline side.
        again = self._train(small_design, batch_episodes=1)
        for a, b in zip(default.history, again.history):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_batched_training_deterministic(self, small_design):
        first = self._train(small_design, batch_episodes=2)
        second = self._train(small_design, batch_episodes=2)
        assert first.best_tns == second.best_tns
        assert first.best_selection == second.best_selection
        assert len(first.history) == len(second.history)
        for a, b in zip(first.history, second.history):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_batch_episodes_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(batch_episodes=0)
