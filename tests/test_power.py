"""Tests for the power models."""

from __future__ import annotations

import pytest

from repro.netlist.generator import quick_design
from repro.placement.global_place import PlacementConfig, place_design
from repro.power.models import (
    cell_internal_power,
    cell_leakage_power,
    net_switching_power,
    report_power,
)
from repro.timing.clock import ClockModel


@pytest.fixture
def placed():
    nl = quick_design(n_cells=300, seed=21)
    place_design(nl, PlacementConfig(seed=1))
    return nl


class TestComponents:
    def test_internal_scales_with_toggle(self, placed):
        cell = next(c for c in placed.cells if not c.cell_type.is_port)
        cell.toggle_rate = 0.1
        low = cell_internal_power(placed, cell.index)
        cell.toggle_rate = 0.5
        high = cell_internal_power(placed, cell.index)
        assert high == pytest.approx(5 * low)

    def test_leakage_independent_of_toggle(self, placed):
        cell = next(c for c in placed.cells if not c.cell_type.is_port)
        cell.toggle_rate = 0.1
        a = cell_leakage_power(placed, cell.index)
        cell.toggle_rate = 0.9
        assert cell_leakage_power(placed, cell.index) == a

    def test_upsizing_increases_power(self, placed):
        cell = next(
            c
            for c in placed.cells
            if not c.cell_type.is_port and c.sizing_headroom > 0
        )
        before_int = cell_internal_power(placed, cell.index)
        before_leak = cell_leakage_power(placed, cell.index)
        placed.resize_cell(cell.index, cell.size_index + 1)
        assert cell_internal_power(placed, cell.index) > before_int
        assert cell_leakage_power(placed, cell.index) > before_leak

    def test_switching_scales_with_frequency(self, placed):
        p1 = net_switching_power(placed, 0, frequency_ghz=1.0)
        p2 = net_switching_power(placed, 0, frequency_ghz=2.0)
        assert p2 == pytest.approx(2 * p1)

    def test_ports_have_zero_intrinsic_power(self, placed):
        port = next(c for c in placed.cells if c.is_input_port)
        assert cell_internal_power(placed, port.index) == 0.0
        assert cell_leakage_power(placed, port.index) == 0.0


class TestReport:
    def test_total_is_sum_of_components(self, placed):
        report = report_power(placed, ClockModel(period=0.8))
        assert report.total == pytest.approx(
            report.internal + report.leakage + report.switching
        )
        assert report.total > 0

    def test_faster_clock_more_switching(self, placed):
        slow = report_power(placed, ClockModel(period=1.0))
        fast = report_power(placed, ClockModel(period=0.5))
        assert fast.switching == pytest.approx(2 * slow.switching)
        assert fast.internal == pytest.approx(slow.internal)

    def test_str_contains_total(self, placed):
        assert "total" in str(report_power(placed, ClockModel(period=0.8)))

    def test_skew_is_power_neutral(self, placed):
        """Useful skew must not change reported power (the paper's asymmetry)."""
        clock = ClockModel.for_netlist(placed, 0.8)
        before = report_power(placed, clock)
        for f in placed.sequential_cells():
            if clock.bound(f) > 0:
                clock.adjust_arrival(f, clock.bound(f) / 2)
        after = report_power(placed, clock)
        assert after.total == pytest.approx(before.total)
