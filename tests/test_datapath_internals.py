"""Focused tests for data-path optimizer internals and flow accounting."""

from __future__ import annotations


from repro.ccd.datapath_opt import (
    DatapathConfig,
    _sizing_gain,
    _split_net,
    optimize_datapath,
)
from repro.ccd.flow import FlowConfig, run_flow, snapshot_netlist_state, restore_netlist_state
from repro.netlist.core import Netlist
from repro.netlist.library import get_library
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


def _chain_with_fanout():
    """in -> drv -> {s0..s7} -> ... with a heavily loaded middle net."""
    lib = get_library("tech7")
    nl = Netlist("fan", lib)
    src = nl.add_cell("src", lib.cell_type("INPORT"))
    drv = nl.add_cell("drv", lib.cell_type("INV"))
    nl.add_net("n_src", src.index, [(drv.index, 0)])
    sinks = []
    for i in range(8):
        s = nl.add_cell(f"s{i}", lib.cell_type("BUF"))
        s.x, s.y = 10.0 * i, 5.0
        sinks.append(s)
    nl.add_net("n_fan", drv.index, [(s.index, 0) for s in sinks])
    outs = []
    for i, s in enumerate(sinks):
        o = nl.add_cell(f"o{i}", lib.cell_type("OUTPORT"))
        o.x, o.y = 10.0 * i, 20.0
        nl.add_net(f"n_s{i}", s.index, [(o.index, 0)])
        outs.append(o)
    return nl, drv, sinks


class TestSizingGain:
    def test_gain_positive_for_loaded_min_size_cell(self):
        nl, drv, sinks = _chain_with_fanout()
        # drv drives 8 buffer pins: upsizing one step should look profitable.
        assert _sizing_gain(nl, drv.index) > 0

    def test_gain_shrinks_as_cell_grows(self):
        nl, drv, sinks = _chain_with_fanout()
        gains = []
        for size in range(drv.cell_type.max_size_index):
            nl.resize_cell(drv.index, size)
            gains.append(_sizing_gain(nl, drv.index))
        # Diminishing returns along the ladder (allowing small wobble).
        assert gains[0] > gains[-1]

    def test_gain_accounts_for_upstream_penalty(self):
        """A cell with a weak driver sees a smaller (or negative) gain."""
        nl, drv, sinks = _chain_with_fanout()
        base_gain = _sizing_gain(nl, sinks[0].index)
        # Weaken the driver (downsizing drv makes its resistance higher).
        assert drv.size_index == 0  # already weakest; upsize to compare
        nl.resize_cell(drv.index, drv.cell_type.max_size_index)
        strong_driver_gain = _sizing_gain(nl, sinks[0].index)
        assert strong_driver_gain >= base_gain


class TestSplitNet:
    def test_split_reduces_driver_load(self):
        nl, drv, sinks = _chain_with_fanout()
        before = nl.net_load_cap(drv.fanout_net)
        _split_net(nl, drv.fanout_net, keep_on_path={sinks[0].index})
        after = nl.net_load_cap(drv.fanout_net)
        assert after < before

    def test_split_preserves_connectivity(self):
        nl, drv, sinks = _chain_with_fanout()
        _split_net(nl, drv.fanout_net, keep_on_path={sinks[0].index})
        from repro.netlist.validate import validate_netlist

        validate_netlist(nl)
        # Every original sink still reachable from drv within two hops.
        direct = set(nl.fanout_cells(drv.index))
        two_hop = set()
        for c in direct:
            two_hop.update(nl.fanout_cells(c))
        reachable = direct | two_hop
        for s in sinks:
            assert s.index in reachable

    def test_on_path_sinks_stay_direct(self):
        nl, drv, sinks = _chain_with_fanout()
        keep = {sinks[0].index, sinks[1].index}
        _split_net(nl, drv.fanout_net, keep_on_path=keep)
        direct = set(nl.fanout_cells(drv.index))
        assert keep <= direct


class TestDatapathOnFanoutDesign:
    def test_buffering_move_triggers_on_high_fanout(self):
        nl, drv, sinks = _chain_with_fanout()
        # Saturate sizing headroom so buffering is the only move left.
        for cell in [drv] + sinks:
            nl.resize_cell(cell.index, cell.cell_type.max_size_index)
        analyzer = TimingAnalyzer(nl)
        # Tight clock so outputs violate.
        clock = ClockModel(period=0.05)
        config = DatapathConfig(
            buffer_fanout_threshold=4, effort_per_violation=4.0, min_moves=8
        )
        result = optimize_datapath(analyzer, clock, config=config)
        assert result.buffer_moves >= 1

    def test_rounds_bounded(self, fresh_design):
        nl, period = fresh_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        config = DatapathConfig(max_rounds=2)
        result = optimize_datapath(analyzer, clock, config=config)
        assert result.rounds <= 2


class TestFlowAccounting:
    def test_flow_result_properties(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        result = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snap)
        assert result.tns == result.final.tns
        assert result.wns == result.final.wns
        assert result.nve == result.final.nve
        assert result.prioritized == []

    def test_skew_and_datapath_results_populated(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        result = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snap)
        assert result.skew_result.passes_run >= 1
        assert result.datapath_result.budget_spent >= 0
        assert result.skew_result.total_adjustment >= 0

    def test_final_skew_pass_toggle(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        with_pass = run_flow(nl, FlowConfig(clock_period=period, final_skew_pass=True))
        restore_netlist_state(nl, snap)
        without = run_flow(nl, FlowConfig(clock_period=period, final_skew_pass=False))
        restore_netlist_state(nl, snap)
        # Final cleanup pass can only help (conservative engine).
        assert with_pass.final.tns >= without.final.tns - 1e-9
