"""Tests for the observability layer (``repro.obs``)."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.agent.parallel import evaluate_selections, fork_available
from repro.ccd.flow import (
    FlowConfig,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.netlist.generator import quick_design
from repro.obs.bench import (
    BenchConfig,
    aggregate_phases,
    compare_bench,
    load_bench,
    run_bench,
    save_bench,
    strip_timing,
)
from repro.placement.global_place import place_design
from repro.timing.clock import ClockModel
from repro.timing.metrics import choose_clock_period
from repro.timing.sta import TimingAnalyzer

CLOCK_PERIOD = 0.4


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate every test from global recorder/trace/verify state."""
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    prev_verify = obs.verify_enabled()
    obs.reset()
    yield
    obs.set_trace_path(prev_trace)
    obs.set_verify(prev_verify)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


def small_design(seed: int = 3, n_cells: int = 220):
    netlist = quick_design(n_cells=n_cells, seed=seed)
    place_design(netlist)
    return netlist


class TestRecorder:
    def test_span_records_duration(self):
        obs.enable()
        with obs.span("unit.outer"):
            pass
        stats = obs.get_recorder().phases["unit.outer"]
        assert stats.count == 1
        assert stats.total >= 0.0
        assert len(stats.durations) == 1

    def test_span_nesting(self):
        obs.enable()
        with obs.span("unit.outer"):
            assert obs.get_recorder().span_stack() == ["unit.outer"]
            with obs.span("unit.inner"):
                assert obs.get_recorder().span_stack() == [
                    "unit.outer",
                    "unit.inner",
                ]
            with obs.span("unit.inner"):
                pass
        recorder = obs.get_recorder()
        assert recorder.span_stack() == []
        assert recorder.phases["unit.outer"].count == 1
        assert recorder.phases["unit.inner"].count == 2
        # Children ran inside the parent, so the parent's time bounds theirs.
        assert (
            recorder.phases["unit.outer"].total
            >= recorder.phases["unit.inner"].total
        )

    def test_span_elapsed_exposed(self):
        obs.enable()
        with obs.span("unit.timed") as sp:
            pass
        assert sp.elapsed is not None and sp.elapsed >= 0.0

    def test_counters_and_gauges(self):
        obs.enable()
        obs.incr("unit.counter")
        obs.incr("unit.counter", 2.5)
        obs.gauge("unit.gauge", 7)
        obs.gauge("unit.gauge", 9)
        recorder = obs.get_recorder()
        assert recorder.counters["unit.counter"] == pytest.approx(3.5)
        assert recorder.gauges["unit.gauge"] == 9.0

    def test_disabled_mode_is_noop(self):
        obs.disable()
        null_a = obs.span("unit.ignored")
        null_b = obs.span("unit.other")
        assert null_a is null_b  # shared singleton, no per-call allocation
        with null_a:
            obs.incr("unit.ignored")
            obs.gauge("unit.ignored", 1.0)
        recorder = obs.get_recorder()
        assert recorder.phases == {}
        assert recorder.counters == {}
        assert recorder.gauges == {}
        assert obs.export_state() is None

    def test_export_merge_roundtrip(self):
        obs.enable()
        obs.incr("unit.counter", 2)
        with obs.span("unit.span"):
            pass
        state = obs.export_state()
        obs.merge_state(state)  # fold a copy of ourselves back in
        recorder = obs.get_recorder()
        assert recorder.counters["unit.counter"] == 4
        assert recorder.phases["unit.span"].count == 2


class TestInstrumentation:
    def test_flow_records_phases_and_counters(self):
        obs.enable()
        netlist = small_design()
        result = run_flow(netlist, FlowConfig(clock_period=CLOCK_PERIOD))
        assert result.runtime_seconds > 0
        recorder = obs.get_recorder()
        for phase in ("flow.run", "flow.skew", "flow.datapath", "sta.full_update"):
            assert recorder.phases[phase].count >= 1, phase
        # The flow ran the skew engine twice (main + final cleanup pass).
        assert recorder.phases["ccd.useful_skew"].count == 2
        assert recorder.counters.get("sta.incremental_update", 0) >= 0

    def test_flow_runtime_populated_when_disabled(self):
        obs.disable()
        netlist = small_design()
        result = run_flow(netlist, FlowConfig(clock_period=CLOCK_PERIOD))
        assert result.runtime_seconds > 0
        assert obs.get_recorder().phases == {}

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_counter_merge_from_forked_workers(self):
        obs.enable()
        netlist = small_design()
        snapshot = snapshot_netlist_state(netlist)
        obs.reset()  # drop the parent's own snapshot-time activity
        rewards = evaluate_selections(
            netlist,
            FlowConfig(clock_period=CLOCK_PERIOD),
            [[], []],
            workers=2,
            snapshot=snapshot,
        )
        assert len(rewards) == 2
        recorder = obs.get_recorder()
        # Both forked children's flow spans landed in the parent recorder.
        assert recorder.phases["flow.run"].count == 2
        assert recorder.phases["rollout.evaluate"].count == 1
        assert recorder.counters["rollout.tasks"] == 2
        # Deterministic flows: both children saw identical reward metrics.
        assert rewards[0] == rewards[1]


class TestVerifyMode:
    def test_restore_verifies_bit_for_bit(self):
        obs.set_verify(True)
        netlist = small_design()
        snapshot = snapshot_netlist_state(netlist, verify_clock_period=CLOCK_PERIOD)
        assert snapshot.verify_summary is not None
        run_flow(netlist, FlowConfig(clock_period=CLOCK_PERIOD))
        restore_netlist_state(netlist, snapshot)  # must not raise

    def test_restore_detects_snapshot_drift(self):
        obs.set_verify(True)
        netlist = small_design()
        # Constrain tightly enough that endpoint slacks are negative, so a
        # timing perturbation is visible in the TNS/WNS summary.
        report = TimingAnalyzer(netlist).analyze(
            ClockModel.for_netlist(netlist, CLOCK_PERIOD)
        )
        period = choose_clock_period(report, CLOCK_PERIOD, 0.5)
        snapshot = snapshot_netlist_state(netlist, verify_clock_period=period)
        # Placement is outside the snapshot's coverage: dragging a driving
        # cell stretches its wire delays — exactly the silent drift verify
        # mode exists to catch.
        moved = next(
            c for c in netlist.cells if c.fanout_net is not None and c.fanin_nets
        )
        moved.x += 200.0
        moved.y += 200.0
        with pytest.raises(RuntimeError, match="snapshot drift"):
            restore_netlist_state(netlist, snapshot)

    def test_verify_off_skips_the_check(self):
        obs.set_verify(False)
        netlist = small_design()
        snapshot = snapshot_netlist_state(netlist, verify_clock_period=CLOCK_PERIOD)
        assert snapshot.verify_summary is None
        netlist.cells[0].x += 50.0
        restore_netlist_state(netlist, snapshot)  # drift goes unchecked


class TestRunRecords:
    def test_emit_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        obs.emit("episode", {"episode": 0, "tns": -1.25, "seed": 7})
        obs.emit("episode", {"episode": 1, "tns": -1.0, "seed": 7})
        records = obs.read_records(path)
        assert [r["episode"] for r in records] == [0, 1]
        for record in records:
            assert record["schema"] == obs.SCHEMA
            assert record["kind"] == "episode"
            assert isinstance(record["git_sha"], str)
            assert record["seed"] == 7

    def test_flow_emits_schema_valid_record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        netlist = small_design()
        run_flow(netlist, FlowConfig(clock_period=CLOCK_PERIOD))
        (record,) = obs.read_records(path)
        assert record["kind"] == "flow"
        assert record["endpoints"] > 0
        assert record["final_tns"] <= 0.0
        for phase in ("begin_sta", "skew", "datapath", "final_skew", "final_sta"):
            assert record["phases"][phase] >= 0.0
        assert record["runtime_seconds"] > 0.0

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        obs.emit("flow", {"endpoints": 3})
        obs.emit("flow", {"endpoints": 4})
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_no_sink_means_no_write(self, tmp_path):
        obs.set_trace_path(None)
        obs.emit("flow", {"endpoints": 3})  # must not raise nor write

    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        """A writer killed mid-append leaves a torn last line; readers skip
        it (bumping ``obs.records.truncated``) instead of dying."""
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        obs.emit("flow", {"endpoints": 3})
        obs.emit("flow", {"endpoints": 4})
        with open(path, "a") as handle:
            handle.write('{"schema": "repro-obs/v2", "kind": "fl')  # no \n
        obs.enable()
        records = obs.read_records(path)
        assert [r["endpoints"] for r in records] == [3, 4]
        assert obs.get_recorder().counters["obs.records.truncated"] == 1

    def test_corrupt_complete_line_still_raises(self, tmp_path):
        """Only the unterminated final line is forgiven — a corrupt line
        *with* a newline means the file is damaged, not in flight."""
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        obs.emit("flow", {"endpoints": 3})
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        with pytest.raises(ValueError):
            obs.read_records(path)


class TestLogging:
    def test_setup_is_idempotent(self):
        root = obs.setup_logging(1)
        obs.setup_logging(2)
        tagged = [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(tagged) == 1
        assert root.level == logging.DEBUG

    def test_get_logger_namespacing(self):
        assert obs.get_logger().name == "repro"
        assert obs.get_logger("agent").name == "repro.agent"
        assert obs.get_logger("repro.cli").name == "repro.cli"

    def test_verbosity_mapping(self):
        assert obs.verbosity_to_level(0) == logging.WARNING
        assert obs.verbosity_to_level(1) == logging.INFO
        assert obs.verbosity_to_level(5) == logging.DEBUG


class TestBench:
    CONFIG = BenchConfig(seed=0, episodes=2, cells=240)

    def test_bench_schema_and_roundtrip(self, tmp_path):
        payload = run_bench(self.CONFIG)
        assert payload["schema"] == "repro-bench/v1"
        assert payload["design"]["endpoints"] > 0
        assert payload["metrics"]["default_tns"] <= 0.0
        assert payload["total_seconds"] > 0.0
        for stats in payload["phases"].values():
            assert stats["count"] >= 1
            assert stats["p90_s"] >= stats["median_s"] >= 0.0
        path = str(tmp_path / "BENCH_test.json")
        save_bench(payload, path)
        assert load_bench(path) == payload

    def test_bench_deterministic_modulo_timing(self):
        first = run_bench(self.CONFIG)
        second = run_bench(self.CONFIG)
        assert strip_timing(first) == strip_timing(second)
        # and the timing strip really removed the nondeterministic fields
        assert "total_seconds" not in strip_timing(first)

    def test_compare_flags_only_meaningful_regressions(self):
        baseline = {
            "phases": {
                "slow.phase": {"median_s": 0.010},
                "fast.phase": {"median_s": 1e-6},
                "fine.phase": {"median_s": 0.010},
            }
        }
        candidate = {
            "phases": {
                "slow.phase": {"median_s": 0.020},  # 2x: flagged
                "fast.phase": {"median_s": 1e-3},  # below floor: ignored
                "fine.phase": {"median_s": 0.0105},  # +5%: within tolerance
                "new.phase": {"median_s": 0.5},  # no baseline: ignored
            }
        }
        warnings = compare_bench(baseline, candidate, tolerance=0.2)
        assert len(warnings) == 1
        assert "slow.phase" in warnings[0]

    def test_aggregate_phases_quantiles(self):
        stats = aggregate_phases(
            {"p": {"count": 4, "total": 10.0, "durations": [1.0, 2.0, 3.0, 4.0]}}
        )["p"]
        assert stats["count"] == 4
        assert stats["total_s"] == pytest.approx(10.0)
        assert stats["median_s"] == pytest.approx(2.5)
        assert stats["max_s"] == pytest.approx(4.0)


class TestCliBench:
    def test_cli_bench_writes_and_compares(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_smoke.json"
        assert (
            main(
                [
                    "bench",
                    "--out",
                    str(out),
                    "--episodes",
                    "2",
                    "--cells",
                    "240",
                ]
            )
            == 0
        )
        payload = load_bench(str(out))
        assert payload["schema"] == "repro-bench/v1"
        captured = capsys.readouterr()
        assert "phase timings" in captured.out
        # Self-comparison never warns.
        assert (
            main(["bench", "--out", str(out), "--episodes", "2", "--cells", "240",
                  "--compare", str(out), "--tolerance", "1000"])
            == 0
        )
        captured = capsys.readouterr()
        assert "::warning" not in captured.err

    def test_cli_trace_flag_writes_records(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "BENCH_t.json"
        assert (
            main(
                [
                    "--trace",
                    str(trace),
                    "bench",
                    "--out",
                    str(out),
                    "--episodes",
                    "2",
                    "--cells",
                    "240",
                ]
            )
            == 0
        )
        records = obs.read_records(str(trace))
        kinds = {r["kind"] for r in records}
        assert "flow" in kinds and "episode" in kinds
