"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_blocks_lists_all(self, capsys):
        assert main(["blocks"]) == 0
        out = capsys.readouterr().out
        for name in ("block1", "block10", "block19"):
            assert name in out
        assert "tech5" in out and "tech12" in out

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_table2_single_block(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1200")  # tiny + fast
        assert main(["table2", "--blocks", "block10", "--episodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "block10" in out
        assert "RL-CCD" in out

    def test_fig5_runs_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1200")  # block11 -> 150 cells
        assert main(["fig5", "--episodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.5" in out
        assert "block11" in out
