"""Tests for the benchmark suite: design specs, harness wiring, reporting.

These tests run the harnesses at minimum effort (tiny episode budgets) —
they verify plumbing and invariants, not paper-shape numbers, which the
benchmarks measure.
"""

from __future__ import annotations

import pytest

from repro.benchsuite.ablations import overfix_vs_underfix, rho_sweep, selection_baselines
from repro.benchsuite.designs import (
    BLOCKS,
    BLOCKS_BY_NAME,
    DesignSpec,
    bench_scale,
    build_design,
    get_block,
)
from repro.benchsuite.figures import fig5_arrival_histogram, fig6_transfer
from repro.benchsuite.report import (
    format_ablation,
    format_fig5,
    format_fig6,
    format_table2,
)
from repro.benchsuite.table2 import (
    Table2Config,
    run_table2_row,
    summarize_improvements,
)

FAST = Table2Config(max_episodes=2, plateau_patience=5, seed=0)


@pytest.fixture(scope="module")
def small_spec():
    """A throwaway tiny spec so harness tests stay fast."""
    return DesignSpec(
        name="t2test", paper_cells=90_000, library="tech7", seed=77,
        violating_fraction=0.35,
    )


class TestSpecs:
    def test_nineteen_blocks(self):
        assert len(BLOCKS) == 19
        assert len(BLOCKS_BY_NAME) == 19

    def test_paper_cell_counts_preserved_in_order(self):
        by_name = {s.name: s.paper_cells for s in BLOCKS}
        assert by_name["block2"] == 1_300_000  # largest
        assert by_name["block10"] == 84_000  # smallest
        assert by_name["block11"] == 180_000  # the Fig.-5 design
        assert by_name["block19"] == 922_000  # the Fig.-6 design

    def test_tech_split_covers_all_nodes(self):
        libs = {s.library for s in BLOCKS}
        assert libs == {"tech5", "tech7", "tech12"}

    def test_scale_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1000")
        assert bench_scale() == 1000
        assert get_block("block2").n_cells() == 1300
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0")
        with pytest.raises(ValueError):
            bench_scale()

    def test_unknown_block_raises(self):
        with pytest.raises(KeyError):
            get_block("block99")

    def test_build_design_deterministic(self, small_spec):
        a = build_design(small_spec)
        b = build_design(small_spec)
        assert a.clock_period == b.clock_period
        assert a.netlist.num_cells == b.netlist.num_cells

    def test_build_design_has_violations(self, small_spec):
        from repro.timing.clock import ClockModel
        from repro.timing.metrics import nve
        from repro.timing.sta import TimingAnalyzer

        d = build_design(small_spec)
        rep = TimingAnalyzer(d.netlist).analyze(
            ClockModel.for_netlist(d.netlist, d.clock_period)
        )
        frac = nve(rep.slack) / rep.slack.size
        assert abs(frac - small_spec.violating_fraction) < 0.1


class TestTable2Harness:
    @pytest.fixture(scope="class")
    def row(self, small_spec=None):
        spec = DesignSpec(
            name="t2row", paper_cells=90_000, library="tech7", seed=78,
            violating_fraction=0.35,
        )
        return run_table2_row(spec, FAST)

    def test_row_fields(self, row):
        assert row.begin.tns <= row.default.final.tns
        assert row.begin.tns <= row.rlccd.final.tns
        assert row.default_runtime > 0
        assert row.rlccd_runtime > row.default_runtime  # training costs more

    def test_begin_state_shared(self, row):
        assert row.default.begin.tns == pytest.approx(row.rlccd.begin.tns)

    def test_improvement_metrics_consistent(self, row):
        expected = 100.0 * (1.0 - row.rlccd.final.tns / row.default.final.tns)
        assert row.tns_improvement_pct == pytest.approx(expected)

    def test_summarize_improvements(self, row):
        s = summarize_improvements([row])
        assert s["num_designs"] == 1
        assert "avg_tns_improvement_pct" in s

    def test_format_table2_renders(self, row):
        text = format_table2([row])
        assert "t2row" in text
        assert "default tool flow" in text
        assert "summary" in text


class TestFigureHarnesses:
    def test_fig5(self):
        spec = DesignSpec(
            name="f5test", paper_cells=80_000, library="tech7", seed=79,
            violating_fraction=0.35,
        )
        result = fig5_arrival_histogram(spec, FAST, num_bins=6)
        assert result.default_counts.shape == (6,)
        assert result.rlccd_counts.shape == (6,)
        assert result.bin_edges.shape == (7,)
        assert result.num_prioritized >= 1
        text = format_fig5(result)
        assert "f5test" in text

    def test_fig6(self):
        target = DesignSpec(
            name="f6target", paper_cells=80_000, library="tech7", seed=80,
            violating_fraction=0.35,
        )
        sources = [
            DesignSpec(
                name="f6src", paper_cells=70_000, library="tech7", seed=81,
                violating_fraction=0.35,
            )
        ]
        result = fig6_transfer(target, sources, FAST)
        assert result.scratch_curve.size >= 1
        assert result.transfer_curve.size >= 1
        assert result.pretrain_designs == ["f6src"]
        text = format_fig6(result)
        assert "f6target" in text

    def test_fig6_no_sources_raises(self):
        target = DesignSpec(
            name="f6t2", paper_cells=80_000, library="tech7", seed=80,
            violating_fraction=0.35,
        )
        with pytest.raises(ValueError):
            fig6_transfer(target, [], FAST)


class TestAblationHarnesses:
    SPEC = DesignSpec(
        name="abtest", paper_cells=80_000, library="tech7", seed=82,
        violating_fraction=0.35,
    )

    def test_overfix_vs_underfix(self):
        points = overfix_vs_underfix(self.SPEC, FAST)
        labels = [p.label for p in points]
        assert any("over-fix" in lab for lab in labels)
        assert any("under-fix" in lab for lab in labels)
        assert any("default" in lab for lab in labels)
        text = format_ablation("A1", points)
        assert "A1" in text

    def test_rho_sweep_monotone_selection_growth(self):
        points = rho_sweep(self.SPEC, rhos=(0.1, 0.9), config=FAST)
        assert points[0].num_selected <= points[1].num_selected

    def test_rho_one_disables_masking(self):
        points = rho_sweep(self.SPEC, rhos=(1.0,), config=FAST)
        # With masking disabled, greedy selection takes every endpoint
        # except those with ratio > 1.0 (impossible) => all endpoints.
        from repro.agent.env import EndpointSelectionEnv

        design = build_design(self.SPEC)
        env = EndpointSelectionEnv(design.netlist, design.clock_period, rho=1.0)
        assert points[0].num_selected == env.num_endpoints

    def test_selection_baselines_cover_all(self):
        points = selection_baselines(self.SPEC, FAST)
        labels = " ".join(p.label for p in points)
        for token in ("default", "worst-slack", "random", "greedy-overlap", "RL-CCD"):
            assert token in labels


class TestSeedSweep:
    def test_sweep_and_summary(self):
        from repro.benchsuite.stats import seed_sweep, summarize_sweep

        spec = DesignSpec(
            name="sweeptest", paper_cells=80_000, library="tech7", seed=90,
            violating_fraction=0.4,
        )
        sweep = seed_sweep(spec, seeds=(0, 1), config=FAST)
        assert sweep.design == "sweeptest"
        assert len(sweep.rows) == 2
        summary = summarize_sweep(sweep)
        assert summary.num_seeds == 2
        assert summary.ci95_low <= summary.mean_improvement_pct <= summary.ci95_high
        # With the fallback no seed can regress.
        assert summary.worst_improvement_pct >= -1e-9
        assert "TNS improvement" in str(summary)

    def test_empty_seeds_raise(self):
        from repro.benchsuite.stats import seed_sweep

        with pytest.raises(ValueError):
            seed_sweep("block10", seeds=())

    def test_single_seed_degenerate_ci(self):
        from repro.benchsuite.stats import seed_sweep, summarize_sweep

        spec = DesignSpec(
            name="sweep1", paper_cells=80_000, library="tech7", seed=91,
            violating_fraction=0.4,
        )
        summary = summarize_sweep(seed_sweep(spec, seeds=(3,), config=FAST))
        assert summary.ci95_low == summary.ci95_high == summary.mean_improvement_pct


class TestPersistence:
    @pytest.fixture(scope="class")
    def row(self):
        spec = DesignSpec(
            name="persist", paper_cells=80_000, library="tech7", seed=92,
            violating_fraction=0.4,
        )
        return run_table2_row(spec, FAST)

    def test_roundtrip(self, row, tmp_path):
        from repro.benchsuite.persistence import load_rows, save_rows

        path = str(tmp_path / "out" / "results.json")
        save_rows([row], path)
        loaded = load_rows(path)
        assert len(loaded) == 1
        assert loaded[0]["design"] == "persist"
        assert loaded[0]["rlccd"]["tns"] == pytest.approx(row.rlccd.final.tns)
        assert loaded[0]["tns_improvement_pct"] == pytest.approx(
            row.tns_improvement_pct
        )

    def test_bad_format_rejected(self, tmp_path):
        import json

        from repro.benchsuite.persistence import load_rows

        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"format": "something-else"}, fh)
        with pytest.raises(ValueError):
            load_rows(path)

    def test_compare_runs_synthetic(self):
        from repro.benchsuite.persistence import compare_runs

        base = [{"design": "d1", "rlccd": {"tns": -1.0}}]
        same = [{"design": "d1", "rlccd": {"tns": -1.0}}]
        result = compare_runs(base, same)
        assert result["common_designs"] == 1
        assert result["regressed"] == [] and result["improved"] == []

        worse = [{"design": "d1", "rlccd": {"tns": -1.5}}]
        assert compare_runs(base, worse)["regressed"] == ["d1"]
        better = [{"design": "d1", "rlccd": {"tns": -0.5}}]
        assert compare_runs(base, better)["improved"] == ["d1"]
        unknown = [{"design": "dX", "rlccd": {"tns": -0.5}}]
        assert compare_runs(base, unknown)["common_designs"] == 0

    def test_compare_negative_tolerance_rejected(self):
        from repro.benchsuite.persistence import compare_runs

        with pytest.raises(ValueError):
            compare_runs([], [], tolerance_pct=-1.0)
