"""Determinism and protocol tests for the distributed actor–learner.

The acceptance contract of ``docs/rollout.md``: ``train --actors N``
(N=1 and N=4) produces **byte-identical training histories** to the
pooled and sequential paths at equal seeds, with the shared reward-cache
service replaying across actor processes without perturbing anything.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.agent.baselines import select_random, select_worst_slack
from repro.agent.distributed import (
    DistributedEvaluator,
    RewardCacheClient,
    RewardCacheService,
    reward_from_wire,
    reward_to_wire,
    run_actor,
)
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    START_METHOD_ENV_VAR,
    FlowReward,
    RewardCache,
    evaluate_selections,
    fork_available,
)
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainConfig, train_rlccd
from repro.ccd.flow import FlowConfig, snapshot_netlist_state
from repro.features.table1 import NUM_FEATURES

_FORCED = os.environ.get(START_METHOD_ENV_VAR, "").strip()
START_METHOD = _FORCED or ("fork" if fork_available() else "spawn")

FAST = dict(task_timeout=30.0, heartbeat_timeout=10.0, backoff_base=0.01)


@pytest.fixture(scope="module")
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    config = FlowConfig(clock_period=period)
    snapshot = snapshot_netlist_state(nl)
    selections = [select_worst_slack(env, k) for k in (1, 2, 3)] + [
        select_random(env, 4, rng=s) for s in (0, 1)
    ]
    sequential = evaluate_selections(
        nl, config, selections, workers=1, snapshot=snapshot
    )
    return nl, period, config, snapshot, selections, sequential


def test_reward_wire_round_trip_is_exact():
    reward = FlowReward(
        tns=-3.141592653589793, wns=-0.1, nve=7, power_total=1e-17, num_selected=3
    )
    assert reward_from_wire(reward_to_wire(reward)) == reward
    with pytest.raises((ValueError, KeyError, TypeError)):
        reward_from_wire(["not", "a", "reward"])
    with pytest.raises((ValueError, KeyError, TypeError)):
        reward_from_wire({"tns": "NaN-ish"})


def test_rewards_identical_sequential_vs_distributed(context):
    nl, period, config, snapshot, selections, sequential = context
    cache = RewardCache.for_context(snapshot, config)
    with DistributedEvaluator(
        nl,
        config,
        actors=2,
        snapshot=snapshot,
        start_method=START_METHOD,
        cache=cache,
        **FAST,
    ) as evaluator:
        distributed = evaluator.evaluate(selections)
        replayed = evaluator.evaluate(selections)
        stats = evaluator.stats()
    blob = pickle.dumps(sequential)
    assert pickle.dumps(distributed) == blob
    assert pickle.dumps(replayed) == blob
    # Second batch replays entirely from the learner-local cache pre-pass.
    assert cache.hits == len(selections)
    assert stats["mode"] == "distributed"
    assert stats["weights_version"] == 2


def _train(nl, period, *, workers: int = 1, actors: int = 0,
           reward_cache: bool = True, seed: int = 3):
    env = EndpointSelectionEnv(nl, period)
    policy = RLCCDPolicy(NUM_FEATURES, rng=seed)
    result = train_rlccd(
        policy,
        env,
        FlowConfig(clock_period=period),
        TrainConfig(
            max_episodes=4,
            episodes_per_update=2,
            workers=workers,
            actors=actors,
            reward_cache=reward_cache,
            rollout_start_method=(
                START_METHOD if (workers > 1 or actors >= 1) else None
            ),
            seed=seed,
        ),
    )
    return [
        (r.episode, r.tns, r.wns, r.nve, r.num_selected, r.advantage)
        for r in result.history
    ]


@pytest.mark.parametrize("actors", [1, 4])
def test_training_histories_identical_to_pooled_path(fresh_design, actors):
    """The acceptance criterion: ``--actors N`` (N=1, 4) vs the pooled
    path, byte-identical training histories at equal seeds."""
    nl, period = fresh_design
    pooled = _train(nl, period, workers=4)
    distributed = _train(nl, period, actors=actors)
    assert pickle.dumps(pooled) == pickle.dumps(distributed)


def test_shared_cache_replay_across_actors_matches_cold_run(fresh_design):
    """Satellite: the shared cache service feeding two actor processes is
    semantically invisible — cached-replay histories are byte-identical
    to cold (cache-disabled) runs at equal seeds."""
    nl, period = fresh_design
    cold = _train(nl, period, actors=2, reward_cache=False)
    cached = _train(nl, period, actors=2, reward_cache=True)
    assert pickle.dumps(cold) == pickle.dumps(cached)


def test_cache_service_round_trip(context):
    """Key-level get/put through the service socket, with service-side
    hit/miss/put counters and evictions surfacing from the cache."""
    nl, period, config, snapshot, selections, sequential = context
    cache = RewardCache.for_context(snapshot, config, max_entries=2)
    service = RewardCacheService(cache)
    try:
        client = RewardCacheClient(service.address)
        key = cache.key(selections[0])
        assert client.get(key) is None
        client.put(key, sequential[0])
        assert client.get(key) == sequential[0]
        # FIFO eviction at capacity bumps the shared eviction counter.
        for selection, reward in zip(selections[1:3], sequential[1:3]):
            client.put(cache.key(selection), reward)
        stats = service.stats()
        client.close()
    finally:
        service.close()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["puts"] == 3
    assert stats["entries"] == 2
    assert stats["evictions"] == 1


def test_remote_actor_joins_as_guest(context):
    """The multi-host entry point: a process we did not spawn dials the
    learner, pulls the design blob over the wire, and serves tasks."""
    nl, period, config, snapshot, selections, sequential = context
    with DistributedEvaluator(
        nl,
        config,
        actors=1,
        snapshot=snapshot,
        start_method=START_METHOD,
        **FAST,
    ) as evaluator:
        ctx = multiprocessing.get_context(START_METHOD)
        guest = ctx.Process(
            target=run_actor, args=(evaluator.address,), daemon=True
        )
        guest.start()
        try:
            rewards = evaluator.evaluate(selections)
        finally:
            guest.terminate()
            guest.join(timeout=5.0)
    assert pickle.dumps(rewards) == pickle.dumps(sequential)


def test_stats_render_with_pool_schema(context):
    """The report dashboard reads the pool's key schema; the distributed
    stats payload must satisfy it (plus its own extras)."""
    nl, period, config, snapshot, selections, sequential = context
    with DistributedEvaluator(
        nl, config, actors=1, snapshot=snapshot, start_method=START_METHOD, **FAST
    ) as evaluator:
        evaluator.evaluate(selections[:2])
        stats = evaluator.stats()
    for key in (
        "workers",
        "start_method",
        "tasks",
        "cache_hits",
        "cache_misses",
        "worker_restarts",
        "task_timeouts",
        "worker_crashes",
        "corrupt_results",
        "sequential_fallbacks",
    ):
        assert key in stats, key
    assert stats["actors"] == 1
    assert stats["start_method"].startswith("distributed/")


def test_actors_and_workers_are_mutually_exclusive():
    with pytest.raises(ValueError, match="mutually exclusive"):
        TrainConfig(workers=2, actors=2)
    with pytest.raises(ValueError, match="non-negative"):
        TrainConfig(actors=-1)


def test_invalid_evaluator_parameters(context):
    nl, period, config, snapshot, *_ = context
    with pytest.raises(ValueError, match="actors"):
        DistributedEvaluator(nl, config, actors=0, snapshot=snapshot)
    with pytest.raises(ValueError, match="task_timeout"):
        DistributedEvaluator(nl, config, actors=1, snapshot=snapshot, task_timeout=0)
