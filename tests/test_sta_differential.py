"""Differential fuzz harness for the incremental STA engine.

Each fuzz case builds a seeded random design, then applies a randomized
sequence of the mutations the CCD engines actually perform — cell resizes,
buffer insertions, useful-skew commits, margin apply/change/remove — and
after every mutation asserts that the incrementally maintained report
matches a from-scratch full analysis to 1e-9 across slacks, arrivals,
required times and per-cell worst slacks.

Run under ``REPRO_STA_CHECK=1`` (the ``sta-differential`` CI job does)
every incremental analysis is *additionally* shadow-verified inside
``analyze()`` itself; the assertions here stay on so the suite is also
meaningful without the env var.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccd.flow import FlowConfig, run_flow
from repro.netlist.generator import quick_design
from repro.placement import PlacementConfig, place_design
from repro.timing import incremental as incr
from repro.timing.clock import ClockModel
from repro.timing.metrics import choose_clock_period
from repro.timing.sta import TimingAnalyzer

ATOL = 1e-9

#: Report fields the differential harness compares (ISSUE acceptance set
#: plus everything else cheap to check).
FIELDS = (
    "arrival",
    "required",
    "slack",
    "cell_arrival",
    "cell_slew",
    "cell_required",
    "cell_worst_slack",
    "cell_worst_slack_margined",
)


def _build(seed: int, n_cells: int = 160):
    netlist = quick_design(name=f"fuzz{seed}", n_cells=n_cells, seed=seed)
    place_design(netlist, PlacementConfig(seed=seed + 1))
    nominal = netlist.library.default_clock_period
    scratch = TimingAnalyzer(netlist, incremental=False)
    report = scratch.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    return netlist, ClockModel.for_netlist(netlist, period)


def _assert_matches_full(netlist, analyzer, clock, margins, context: str):
    incremental = analyzer.analyze(clock, margins)
    full = TimingAnalyzer(netlist, incremental=False).analyze(clock, margins)
    assert np.array_equal(incremental.endpoints, full.endpoints), context
    for name in FIELDS:
        a = getattr(incremental, name)
        b = getattr(full, name)
        assert np.allclose(a, b, rtol=0.0, atol=ATOL), (
            f"{context}: field {name} drifted beyond {ATOL} "
            f"(max |Δ|={np.nanmax(np.abs(np.where(np.isfinite(a - b), a - b, 0.0))):.3e})"
        )


def _random_mutation(rng, netlist, analyzer, clock, margins):
    """Apply one randomly chosen CCD-style mutation; returns new margins."""
    kind = rng.choice(["resize", "buffer", "skew", "margins"], p=[0.45, 0.1, 0.3, 0.15])

    if kind == "resize":
        comb = [
            c.index
            for c in netlist.cells
            if not c.cell_type.is_port and not c.is_sequential
        ]
        cell = netlist.cells[int(rng.choice(comb))]
        netlist.resize_cell(
            cell.index, int(rng.integers(0, cell.cell_type.max_size_index + 1))
        )
        analyzer.notify_resize(cell.index)

    elif kind == "buffer":
        candidates = [net for net in netlist.nets if net.fanout >= 2]
        if candidates:
            net = candidates[int(rng.integers(0, len(candidates)))]
            keep = int(rng.integers(1, net.fanout))
            netlist.insert_buffer(net.index, net.sinks[:keep])
            analyzer.invalidate()  # structural edit: full-recompute fallback

    elif kind == "skew":
        flops = netlist.sequential_cells()
        flop = int(rng.choice(flops))
        room = clock.bound(flop) - clock.arrival(flop)
        if room > 1e-9:
            clock.adjust_arrival(flop, float(rng.uniform(0.0, room)))
            if rng.random() < 0.8:
                analyzer.notify_skew((flop,))
            # else: un-notified — the clock-diff safety net must catch it

    else:
        endpoints = netlist.endpoints()
        if margins or rng.random() < 0.5:
            margins = {}  # remove
        else:
            chosen = rng.choice(endpoints, size=min(4, len(endpoints)), replace=False)
            margins = {int(e): float(rng.uniform(0.01, 0.3)) for e in chosen}
    return margins


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_incremental_matches_full(seed):
    netlist, clock = _build(seed)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    margins = {}
    rng = np.random.default_rng(seed)

    _assert_matches_full(netlist, analyzer, clock, margins, f"seed {seed} initial")
    for step in range(12):
        margins = _random_mutation(rng, netlist, analyzer, clock, margins)
        _assert_matches_full(
            netlist, analyzer, clock, margins, f"seed {seed} step {step}"
        )


def test_unnotified_resize_cannot_be_read_stale():
    """Regression: notify_resize patches load_cap[driver] — and the analyzer
    must treat the patched cells as timing-stale.  A resize that skips the
    hook entirely must be caught by the mutation-version guard: either way
    a stale read is impossible."""
    netlist, clock = _build(seed=99)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    analyzer.analyze(clock)

    target = next(
        c
        for c in netlist.cells
        if not c.cell_type.is_port and not c.is_sequential and c.sizing_headroom > 0
    )

    # Notified path: the driver whose load cap moved must be re-propagated.
    netlist.resize_cell(target.index, target.size_index + target.sizing_headroom)
    analyzer.notify_resize(target.index)
    _assert_matches_full(netlist, analyzer, clock, None, "notified resize")

    # Un-notified path: the version guard must force a recompile.
    netlist.resize_cell(target.index, 0)
    _assert_matches_full(netlist, analyzer, clock, None, "un-notified resize")


def _mutation_trace(seed: int, threshold: int, steps: int = 12):
    """Run the fuzz mutation sequence at one vector threshold; returns the
    per-step report field arrays (copies) for cross-threshold comparison."""
    netlist, clock = _build(seed)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    margins = {}
    rng = np.random.default_rng(seed)
    prev = incr.set_vector_threshold(threshold)
    try:
        reports = [analyzer.analyze(clock, margins)]
        for step in range(steps):
            margins = _random_mutation(rng, netlist, analyzer, clock, margins)
            if step == steps // 2:
                # Forced fallback mid-sequence: the full-recompute path must
                # rebuild state the kernels then extend, at any threshold.
                analyzer.invalidate()
            reports.append(analyzer.analyze(clock, margins))
    finally:
        incr.set_vector_threshold(prev)
    return [
        {name: np.array(getattr(r, name), copy=True) for name in FIELDS}
        for r in reports
    ]


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_vectorized_byte_identical_to_scalar(seed):
    """The density switch must be invisible: forcing every frontier batch
    through the vectorized kernels (threshold 0) and forcing every batch
    through the scalar path (huge threshold) must produce *byte-identical*
    reports at every step of the mutation sequence."""
    scalar = _mutation_trace(seed, threshold=1 << 30)
    vector = _mutation_trace(seed, threshold=0)
    assert len(scalar) == len(vector)
    for step, (s, v) in enumerate(zip(scalar, vector)):
        for name in FIELDS:
            assert np.array_equal(s[name], v[name], equal_nan=True), (
                f"seed {seed} step {step}: field {name} differs between "
                "scalar and vectorized frontier kernels"
            )


@pytest.mark.parametrize("threshold", (0, 1, 2, 4, incr.DEFAULT_VEC_THRESHOLD))
def test_density_threshold_boundaries_match_full(threshold):
    """Mixed scalar/vector batches around the density-switch boundary (tiny
    thresholds make single-cell batches flip between paths) stay equal to
    the from-scratch engine."""
    netlist, clock = _build(seed=7)
    analyzer = TimingAnalyzer(netlist, incremental=True)
    margins = {}
    rng = np.random.default_rng(7)
    prev = incr.set_vector_threshold(threshold)
    try:
        _assert_matches_full(
            netlist, analyzer, clock, margins, f"threshold {threshold} initial"
        )
        for step in range(8):
            margins = _random_mutation(rng, netlist, analyzer, clock, margins)
            _assert_matches_full(
                netlist, analyzer, clock, margins, f"threshold {threshold} step {step}"
            )
    finally:
        incr.set_vector_threshold(prev)


def test_vectorized_byte_identical_at_10k_cells():
    """Scale-path equivalence: at 10K cells (fast generator, always above
    the density threshold) a resize+skew mutation burst yields byte-equal
    reports from the scalar and vectorized kernels."""
    from repro.benchsuite.scale import fast_design
    from repro.netlist.generator import GeneratorConfig

    def run(threshold: int):
        netlist = fast_design(
            GeneratorConfig(
                name="scale10k", n_cells=10_000, seed=42, n_inputs=256, n_outputs=128
            )
        )
        nominal = netlist.library.default_clock_period
        clock = ClockModel.for_netlist(netlist, nominal)
        analyzer = TimingAnalyzer(netlist, incremental=True)
        rng = np.random.default_rng(42)
        prev = incr.set_vector_threshold(threshold)
        try:
            analyzer.analyze(clock)
            comb = np.array(
                [
                    c.index
                    for c in netlist.cells
                    if not c.cell_type.is_port and not c.is_sequential
                ]
            )
            flops = np.asarray(netlist.sequential_cells())
            for _ in range(3):
                for i in rng.choice(comb, size=48, replace=False):
                    cell = netlist.cells[int(i)]
                    netlist.resize_cell(
                        cell.index,
                        int(rng.integers(0, cell.cell_type.max_size_index + 1)),
                    )
                    analyzer.notify_resize(cell.index)
                moved = rng.choice(flops, size=64, replace=False)
                for f in moved:
                    f = int(f)
                    room = clock.bound(f) - clock.arrival(f)
                    if room > 1e-9:
                        clock.adjust_arrival(f, float(rng.uniform(0.0, room)))
                analyzer.notify_skew(int(f) for f in moved)
                report = analyzer.analyze(clock)
            return {
                name: np.array(getattr(report, name), copy=True) for name in FIELDS
            }
        finally:
            incr.set_vector_threshold(prev)

    scalar = run(1 << 30)
    vector = run(0)
    for name in FIELDS:
        assert np.array_equal(scalar[name], vector[name], equal_nan=True), (
            f"10K-cell field {name} differs between scalar and vectorized paths"
        )


@pytest.mark.parametrize("seed", (3, 11))
def test_flow_results_identical_incremental_on_vs_off(seed):
    """End-to-end equivalence: the whole CCD flow — skew, margins, datapath
    probes with rollbacks, final cleanup — produces *byte-identical* results
    whichever STA engine serves it."""

    def run(incremental: bool):
        netlist = quick_design(name=f"flow{seed}", n_cells=220, seed=seed)
        place_design(netlist, PlacementConfig(seed=seed))
        nominal = netlist.library.default_clock_period
        scratch = TimingAnalyzer(netlist, incremental=False)
        report = scratch.analyze(ClockModel.for_netlist(netlist, nominal))
        period = choose_clock_period(report, nominal, 0.35)
        prioritized = netlist.endpoints()[:4]
        return run_flow(
            netlist,
            FlowConfig(clock_period=period, incremental_sta=incremental),
            prioritized_endpoints=prioritized,
        )

    on = run(True)
    off = run(False)
    assert on.final == off.final  # TNS/WNS/NVE summary, bit-for-bit
    assert on.begin == off.begin
    assert on.arrival_adjustments == off.arrival_adjustments  # skew schedule
    assert on.skew_result.commits == off.skew_result.commits
    assert on.datapath_result.total_moves == off.datapath_result.total_moves
