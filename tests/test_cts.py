"""Tests for the H-tree clock synthesis substrate."""

from __future__ import annotations

import pytest

from repro.cts.htree import ClockTree, ClockTreeConfig, apply_clock_tree
from repro.netlist.generator import quick_design
from repro.placement.global_place import PlacementConfig, place_design


@pytest.fixture(scope="module")
def placed():
    nl = quick_design(name="cts_fix", n_cells=400, seed=33)
    place_design(nl, PlacementConfig(seed=2))
    return nl


@pytest.fixture(scope="module")
def tree(placed):
    return ClockTree(placed, ClockTreeConfig(levels=3))


class TestConstruction:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClockTreeConfig(levels=0)
        with pytest.raises(ValueError):
            ClockTreeConfig(buffer_delay=0.0)

    def test_node_count_is_quadtree(self, tree):
        # 1 root + 4 + 16 + 64 for 3 levels.
        assert len(tree.nodes) == 1 + 4 + 16 + 64
        assert tree.num_levels == 4

    def test_leaf_count(self, tree):
        assert len(tree.leaves()) == 64

    def test_every_flop_attached(self, placed, tree):
        for flop in placed.sequential_cells():
            leaf = tree.leaf_of(flop)
            assert flop in leaf.sinks

    def test_unknown_flop_raises(self, tree):
        with pytest.raises(KeyError):
            tree.leaf_of(10**9)

    def test_flops_attach_to_nearest_leaf(self, placed, tree):
        leaves = tree.leaves()
        for flop in placed.sequential_cells()[:10]:
            cell = placed.cells[flop]
            own = tree.leaf_of(flop)
            own_dist = abs(own.x - cell.x) + abs(own.y - cell.y)
            best = min(abs(n.x - cell.x) + abs(n.y - cell.y) for n in leaves)
            assert own_dist == pytest.approx(best)

    def test_root_path_descends_levels(self, placed, tree):
        flop = placed.sequential_cells()[0]
        path = tree.root_path(flop)
        assert path[0].level == 0
        assert [n.level for n in path] == list(range(len(path)))


class TestDelaysAndBounds:
    def test_insertion_delay_positive(self, placed, tree):
        for flop in placed.sequential_cells():
            assert tree.insertion_delay(flop) > 0

    def test_insertion_delay_at_least_buffer_chain(self, placed, tree):
        cfg = tree.config
        min_chain = cfg.buffer_delay * (tree.num_levels)
        for flop in placed.sequential_cells()[:10]:
            assert tree.insertion_delay(flop) >= min_chain - 1e-12

    def test_skew_bounds_positive(self, placed, tree):
        for flop in placed.sequential_cells():
            assert tree.skew_bound(flop) > 0

    def test_crowded_leaf_reduces_bound(self, placed):
        """More siblings on the same leaf => smaller per-flop bound."""
        tree = ClockTree(placed, ClockTreeConfig(levels=2))
        leaves = {n.index: n for n in tree.leaves()}
        by_crowding = sorted(
            (len(n.sinks), tree.skew_bound(n.sinks[0]))
            for n in leaves.values()
            if n.sinks
        )
        if len(by_crowding) >= 2 and by_crowding[0][0] != by_crowding[-1][0]:
            assert by_crowding[0][1] >= by_crowding[-1][1]

    def test_global_skew_nonnegative(self, tree):
        assert tree.global_skew() >= 0.0

    def test_deeper_tree_larger_bounds(self, placed):
        shallow = ClockTree(placed, ClockTreeConfig(levels=2))
        deep = ClockTree(placed, ClockTreeConfig(levels=4))
        flop = placed.sequential_cells()[0]
        # More stages along the path => more retuning headroom (before the
        # crowding discount, which deeper trees also reduce via spreading).
        assert len(deep.root_path(flop)) > len(shallow.root_path(flop))


class TestApply:
    def test_apply_overwrites_bounds(self):
        nl = quick_design(name="cts_apply", n_cells=300, seed=34)
        place_design(nl, PlacementConfig(seed=2))
        before = dict(nl.skew_bounds)
        delays = apply_clock_tree(nl)
        assert set(delays) == set(nl.sequential_cells())
        assert nl.skew_bounds != before
        for flop, bound in nl.skew_bounds.items():
            assert bound > 0

    def test_applied_bounds_work_with_flow(self):
        from repro.ccd.flow import FlowConfig, run_flow
        from repro.timing.clock import ClockModel
        from repro.timing.metrics import choose_clock_period
        from repro.timing.sta import TimingAnalyzer

        nl = quick_design(name="cts_flow", n_cells=300, seed=35)
        place_design(nl, PlacementConfig(seed=2))
        apply_clock_tree(nl)
        analyzer = TimingAnalyzer(nl)
        nominal = nl.library.default_clock_period
        rep = analyzer.analyze(ClockModel.for_netlist(nl, nominal))
        period = choose_clock_period(rep, nominal, 0.35)
        result = run_flow(nl, FlowConfig(clock_period=period))
        assert result.final.tns >= result.begin.tns


class TestCtsWithFullFlow:
    def test_tree_bounds_with_rl_environment(self):
        """The full RL environment works on tree-derived skew bounds."""
        from repro.agent.env import EndpointSelectionEnv
        from repro.netlist.generator import quick_design
        from repro.timing.clock import ClockModel
        from repro.timing.metrics import choose_clock_period
        from repro.timing.sta import TimingAnalyzer

        nl = quick_design(name="cts_rl", n_cells=300, seed=36)
        place_design(nl, PlacementConfig(seed=2))
        apply_clock_tree(nl)
        analyzer = TimingAnalyzer(nl)
        nominal = nl.library.default_clock_period
        rep = analyzer.analyze(ClockModel.for_netlist(nl, nominal))
        period = choose_clock_period(rep, nominal, 0.35)
        env = EndpointSelectionEnv(nl, period)
        env.reset()
        assert env.num_endpoints > 0
        env.step(0)
        assert len(env.selected_cells()) == 1

    def test_insertion_delays_usable_as_initial_arrivals(self):
        """Insertion delays can seed clock arrivals when bounds allow it."""
        from repro.netlist.generator import quick_design
        from repro.timing.clock import ClockModel

        nl = quick_design(name="cts_seed", n_cells=250, seed=37)
        place_design(nl, PlacementConfig(seed=2))
        delays = apply_clock_tree(nl, ClockTreeConfig(levels=2))
        # Center the delays so offsets are relative to the mean arrival.
        mean = sum(delays.values()) / len(delays)
        clock = ClockModel.for_netlist(nl, 1.0)
        applied = 0
        for flop, delay in delays.items():
            offset = delay - mean
            if abs(offset) <= clock.bound(flop):
                clock.set_arrival(flop, offset)
                applied += 1
        assert applied > 0
        assert clock.total_adjustment() > 0
