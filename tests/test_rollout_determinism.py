"""Determinism across rollout backends.

Training rewards must be byte-identical whether flow evaluation runs
sequentially, through a 4-worker pool, or replays from the reward cache —
the pool and cache are throughput features, never semantics features.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.agent.baselines import select_random, select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    START_METHOD_ENV_VAR,
    RewardCache,
    RolloutPool,
    evaluate_selections,
    fork_available,
)
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainConfig, train_rlccd
from repro.ccd.flow import FlowConfig, snapshot_netlist_state
from repro.features.table1 import NUM_FEATURES

_FORCED = os.environ.get(START_METHOD_ENV_VAR, "").strip()
START_METHOD = _FORCED or ("fork" if fork_available() else "spawn")


@pytest.fixture(scope="module")
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    return nl, period, env


def test_reward_sequences_identical_across_backends(context):
    """workers=1 vs workers=4 vs cache-hit replay: byte-identical
    FlowReward sequences for the same fixed selection batch."""
    nl, period, env = context
    config = FlowConfig(clock_period=period)
    snapshot = snapshot_netlist_state(nl)
    selections = [select_worst_slack(env, k) for k in (1, 2, 3)] + [
        select_random(env, 4, rng=s) for s in (0, 1, 2)
    ]

    sequential = evaluate_selections(
        nl, config, selections, workers=1, snapshot=snapshot
    )
    cache = RewardCache.for_context(snapshot, config)
    with RolloutPool(
        nl,
        config,
        workers=4,
        snapshot=snapshot,
        start_method=START_METHOD,
        cache=cache,
    ) as pool:
        pooled = pool.evaluate(selections)
        cached = pool.evaluate(selections)

    blob = pickle.dumps(sequential)
    assert pickle.dumps(pooled) == blob
    assert pickle.dumps(cached) == blob
    assert cache.hits == len(selections)


def _train(nl, period, workers: int, reward_cache: bool, seed: int = 3):
    env = EndpointSelectionEnv(nl, period)
    policy = RLCCDPolicy(NUM_FEATURES, rng=seed)
    result = train_rlccd(
        policy,
        env,
        FlowConfig(clock_period=period),
        TrainConfig(
            max_episodes=4,
            episodes_per_update=2,
            workers=workers,
            reward_cache=reward_cache,
            rollout_start_method=START_METHOD if workers > 1 else None,
            seed=seed,
        ),
    )
    return [
        (r.episode, r.tns, r.wns, r.nve, r.num_selected, r.advantage)
        for r in result.history
    ]


def test_training_identical_sequential_vs_pooled(fresh_design):
    """A fixed seed trains to the same per-episode reward sequence with
    workers=1 and workers=4 (the paper's farm is numerically invisible)."""
    nl, period = fresh_design
    sequential = _train(nl, period, workers=1, reward_cache=False)
    pooled = _train(nl, period, workers=4, reward_cache=False)
    assert pickle.dumps(sequential) == pickle.dumps(pooled)


def test_training_identical_with_and_without_cache(fresh_design):
    """The reward cache replays, never perturbs: same seed, same history."""
    nl, period = fresh_design
    uncached = _train(nl, period, workers=1, reward_cache=False)
    cached = _train(nl, period, workers=1, reward_cache=True)
    assert pickle.dumps(uncached) == pickle.dumps(cached)
