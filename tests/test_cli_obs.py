"""CLI-level tests for the observability satellites: bench baseline
handling, the enforced gate, trace-sink precedence, train/report wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.bench import load_bench

# --workers 1 / --actors 0 degrade the bench's rollout and distributed
# comparisons to the in-process sequential path: the enforced-gate tests
# below time several benches in one process, and forking pool workers or
# actor processes between them adds enough scheduler noise on small
# runners to trip the gate on sub-millisecond phases.  Pool and
# actor–learner timing behaviour is covered by test_parallel /
# test_rollout_* / test_distributed* instead.
FAST_BENCH = ["--episodes", "2", "--cells", "240", "--workers", "1", "--actors", "0"]


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    obs.reset()
    yield
    obs.set_trace_path(prev_trace)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


class TestBenchBaselineErrors:
    def test_missing_baseline_is_one_line_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        rc = main(["bench", "--compare", missing, *FAST_BENCH])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot load bench baseline")
        assert captured.err.count("\n") == 1
        # Fails fast: the workload never ran.
        assert "phase timings" not in captured.out

    def test_corrupt_baseline_is_one_line_error(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{truncated")
        rc = main(["bench", "--compare", str(corrupt), *FAST_BENCH])
        assert rc == 2
        assert "error: cannot load bench baseline" in capsys.readouterr().err

    def test_foreign_schema_baseline_rejected(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": "not-a-bench"}))
        rc = main(["bench", "--compare", str(foreign), *FAST_BENCH])
        assert rc == 2
        assert "error: cannot load bench baseline" in capsys.readouterr().err


class TestUpdateBaseline:
    def test_first_refresh_and_provenance_chain(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_baseline.json")
        rc = main(["bench", "--update-baseline", "--out", out, *FAST_BENCH])
        assert rc == 0
        first = load_bench(out)
        prov = first["provenance"]
        assert prov["refreshed_by"] == "python -m repro bench --update-baseline"
        assert prov["refreshed_at"] == first["created_at"]
        assert prov["previous_git_sha"] is None  # nothing superseded yet
        capsys.readouterr()

        rc = main(["bench", "--update-baseline", "--out", out, *FAST_BENCH])
        assert rc == 0
        second = load_bench(out)
        assert second["provenance"]["previous_git_sha"] == first["git_sha"]
        assert second["provenance"]["previous_created_at"] == first["created_at"]


class TestEnforcedGate:
    def test_enforce_needs_a_history_source(self, capsys):
        rc = main(["bench", "--enforce", *FAST_BENCH])
        assert rc == 2
        assert "--enforce needs" in capsys.readouterr().err

    def test_enforce_passes_against_own_baseline(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_b.json"),
             "--compare", out, "--enforce", *FAST_BENCH]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "enforced bench gate passed" in captured.err
        assert "::error" not in captured.err

    def test_enforce_fails_on_injected_slowdown(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        # Acceptance scenario: make the baseline claim every phase used to
        # run 5x faster, so the (honest) candidate looks 5x regressed.
        payload = load_bench(out)
        for stats in payload["phases"].values():
            stats["median_s"] = stats["median_s"] / 5.0
        doctored = str(tmp_path / "BENCH_fast.json")
        with open(doctored, "w") as handle:
            json.dump(payload, handle)
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_b.json"),
             "--compare", doctored, "--enforce", *FAST_BENCH]
        )
        assert rc == 1
        assert "::error ::bench regression:" in capsys.readouterr().err

    def test_enforce_with_history_directory(self, tmp_path, capsys):
        history_dir = tmp_path / "history"
        history_dir.mkdir()
        for i in range(3):
            out = str(history_dir / f"BENCH_{i}.json")
            assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_new.json"),
             "--history", str(history_dir), "--enforce", *FAST_BENCH]
        )
        assert rc == 0
        assert "against 3 historical runs" in capsys.readouterr().err


class TestTracePrecedence:
    def test_cli_trace_wins_over_env(self, tmp_path, monkeypatch, capsys):
        env_path = str(tmp_path / "env.jsonl")
        cli_path = str(tmp_path / "cli.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, env_path)
        rc = main(["--trace", cli_path, "blocks"])
        assert rc == 0
        assert obs.trace_path() == cli_path
        captured = capsys.readouterr()
        assert "overrides" in captured.err
        assert "CLI flag wins" in captured.err

    def test_no_warning_when_flag_matches_env(self, tmp_path, monkeypatch, capsys):
        path = str(tmp_path / "same.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, path)
        assert main(["--trace", path, "blocks"]) == 0
        assert "overrides" not in capsys.readouterr().err

    def test_env_alone_still_respected(self, tmp_path, monkeypatch):
        env_path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, env_path)
        obs.set_trace_path(env_path)  # what _init_from_env does at import
        assert main(["blocks"]) == 0
        assert obs.trace_path() == env_path


class TestTrainAndProfile:
    def test_train_emits_trace_and_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "train.jsonl")
        rc = main(
            ["--trace", trace, "train", "--episodes", "2", "--cells", "240",
             "--seed", "0"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "best TNS" in captured.out
        assert "episode 0:" in captured.err
        kinds = [r["kind"] for r in obs.read_records(trace)]
        assert "episode" in kinds and "train" in kinds

    def test_profile_without_sink_is_an_error(self, capsys):
        rc = main(["--profile", "blocks"])
        assert rc == 2
        assert "--profile needs a trace sink" in capsys.readouterr().err

    def test_profile_emits_profile_record(self, tmp_path, capsys):
        trace = str(tmp_path / "profiled.jsonl")
        rc = main(
            ["--trace", trace, "--profile", "train", "--episodes", "1",
             "--cells", "240"]
        )
        assert rc == 0
        (profile,) = [
            r for r in obs.read_records(trace) if r["kind"] == "profile"
        ]
        assert profile["command"] == "train"
        assert profile["top_functions"]
        assert profile["memory_peak_kb"] > 0.0


class TestTraceEventsFlag:
    def test_trace_events_without_sink_is_an_error(self, capsys):
        rc = main(["--trace-events", "blocks"])
        assert rc == 2
        assert "--trace-events needs a trace sink" in capsys.readouterr().err

    def test_trace_events_records_spans(self, tmp_path, capsys):
        from repro.obs import tracing

        trace = str(tmp_path / "events.jsonl")
        try:
            rc = main(
                ["--trace", trace, "--trace-events", "train", "--episodes",
                 "1", "--cells", "240"]
            )
        finally:
            tracing.disable()
        assert rc == 0
        spans = [r for r in obs.read_records(trace) if r["kind"] == "span"]
        assert spans
        names = {r["name"] for r in spans}
        assert "flow.run" in names and "agent.rollout" in names
        assert all(r["trace_schema"] == tracing.TRACE_SCHEMA for r in spans)
        # One trace id spans the whole invocation.
        assert len({r["trace_id"] for r in spans}) == 1


class TestTraceSubcommands:
    def _traced_run(self, tmp_path):
        from repro.obs import tracing

        trace = str(tmp_path / "run.jsonl")
        try:
            assert (
                main(
                    ["--trace", trace, "--trace-events", "train",
                     "--episodes", "1", "--cells", "240"]
                )
                == 0
            )
        finally:
            tracing.disable()
        return trace

    def test_export_writes_chrome_json(self, tmp_path, capsys):
        import json as json_module

        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        out = str(tmp_path / "run.perfetto.json")
        rc = main(["trace", "export", trace, "--out", out])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        with open(out) as handle:
            doc = json_module.load(handle)
        assert doc["traceEvents"]
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_export_default_output_path(self, tmp_path, capsys):
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "export", trace]) == 0
        assert f"{trace}.perfetto.json" in capsys.readouterr().out

    def test_export_missing_trace_is_one_line_error(self, tmp_path, capsys):
        rc = main(["trace", "export", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot export trace")
        assert err.count("\n") == 1

    def test_validate_accepts_traced_run(self, tmp_path, capsys):
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        rc = main(["trace", "validate", trace])
        assert rc == 0
        out = capsys.readouterr().out
        assert "valid" in out and "span=" in out

    def test_validate_rejects_corrupt_payload(self, tmp_path, capsys):
        import json as json_module

        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json_module.dumps(
                {"schema": "repro-obs/v2", "kind": "span", "git_sha": "x"}
            )
            + "\n"
        )
        rc = main(["trace", "validate", str(bad)])
        assert rc == 2
        assert "error: invalid trace" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_once_prints_progress_lines(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert (
            main(["--trace", trace, "train", "--episodes", "2", "--cells",
                  "240", "--seed", "0"])
            == 0
        )
        capsys.readouterr()
        rc = main(["watch", trace, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "episode" in out and "train" in out

    def test_watch_spans_mode_prints_span_lines(self, tmp_path, capsys):
        from repro.obs import tracing

        trace = str(tmp_path / "run.jsonl")
        try:
            assert (
                main(["--trace", trace, "--trace-events", "train",
                      "--episodes", "1", "--cells", "240"])
                == 0
            )
        finally:
            tracing.disable()
        capsys.readouterr()
        assert main(["watch", trace, "--once", "--spans"]) == 0
        assert "span     [main]" in capsys.readouterr().out

    def test_watch_invalid_interval_is_an_error(self, capsys):
        rc = main(["watch", "whatever.jsonl", "--once", "--interval", "0"])
        assert rc == 2
        assert "--interval must be positive" in capsys.readouterr().err

    def test_watch_once_on_missing_file_is_quietly_empty(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path / "nope.jsonl"), "--once"])
        assert rc == 0
        assert capsys.readouterr().out == ""


class TestMetricsPortFlag:
    def test_metrics_port_serves_during_command(self, capsys):
        # ``blocks`` is instant, so probe the endpoint via a patched
        # MetricsServer that records its own URL before the command exits.
        import urllib.request

        from repro.obs import metrics_export

        seen = {}
        original_start = metrics_export.MetricsServer.start.__func__

        def probing_start(cls, port, host="127.0.0.1"):
            server = original_start(cls, port, host)
            with urllib.request.urlopen(server.url) as response:
                seen["body"] = response.read().decode("utf-8")
            return server

        metrics_export.MetricsServer.start = classmethod(probing_start)
        try:
            rc = main(["--metrics-port", "0", "blocks"])
        finally:
            metrics_export.MetricsServer.start = classmethod(original_start)
        assert rc == 0
        assert "repro_build_info" in seen["body"]
