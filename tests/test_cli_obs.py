"""CLI-level tests for the observability satellites: bench baseline
handling, the enforced gate, trace-sink precedence, train/report wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.bench import load_bench

# --workers 1 degrades the bench's rollout comparison to the in-process
# sequential path: the enforced-gate tests below time several benches in one
# process, and forking pool workers between them adds enough scheduler noise
# on small runners to trip the gate on sub-millisecond phases.  Pool timing
# behaviour is covered by test_parallel / test_rollout_* instead.
FAST_BENCH = ["--episodes", "2", "--cells", "240", "--workers", "1"]


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    obs.reset()
    yield
    obs.set_trace_path(prev_trace)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


class TestBenchBaselineErrors:
    def test_missing_baseline_is_one_line_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        rc = main(["bench", "--compare", missing, *FAST_BENCH])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot load bench baseline")
        assert captured.err.count("\n") == 1
        # Fails fast: the workload never ran.
        assert "phase timings" not in captured.out

    def test_corrupt_baseline_is_one_line_error(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{truncated")
        rc = main(["bench", "--compare", str(corrupt), *FAST_BENCH])
        assert rc == 2
        assert "error: cannot load bench baseline" in capsys.readouterr().err

    def test_foreign_schema_baseline_rejected(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": "not-a-bench"}))
        rc = main(["bench", "--compare", str(foreign), *FAST_BENCH])
        assert rc == 2
        assert "error: cannot load bench baseline" in capsys.readouterr().err


class TestUpdateBaseline:
    def test_first_refresh_and_provenance_chain(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_baseline.json")
        rc = main(["bench", "--update-baseline", "--out", out, *FAST_BENCH])
        assert rc == 0
        first = load_bench(out)
        prov = first["provenance"]
        assert prov["refreshed_by"] == "python -m repro bench --update-baseline"
        assert prov["refreshed_at"] == first["created_at"]
        assert prov["previous_git_sha"] is None  # nothing superseded yet
        capsys.readouterr()

        rc = main(["bench", "--update-baseline", "--out", out, *FAST_BENCH])
        assert rc == 0
        second = load_bench(out)
        assert second["provenance"]["previous_git_sha"] == first["git_sha"]
        assert second["provenance"]["previous_created_at"] == first["created_at"]


class TestEnforcedGate:
    def test_enforce_needs_a_history_source(self, capsys):
        rc = main(["bench", "--enforce", *FAST_BENCH])
        assert rc == 2
        assert "--enforce needs" in capsys.readouterr().err

    def test_enforce_passes_against_own_baseline(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_b.json"),
             "--compare", out, "--enforce", *FAST_BENCH]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "enforced bench gate passed" in captured.err
        assert "::error" not in captured.err

    def test_enforce_fails_on_injected_slowdown(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_a.json")
        assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        # Acceptance scenario: make the baseline claim every phase used to
        # run 5x faster, so the (honest) candidate looks 5x regressed.
        payload = load_bench(out)
        for stats in payload["phases"].values():
            stats["median_s"] = stats["median_s"] / 5.0
        doctored = str(tmp_path / "BENCH_fast.json")
        with open(doctored, "w") as handle:
            json.dump(payload, handle)
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_b.json"),
             "--compare", doctored, "--enforce", *FAST_BENCH]
        )
        assert rc == 1
        assert "::error ::bench regression:" in capsys.readouterr().err

    def test_enforce_with_history_directory(self, tmp_path, capsys):
        history_dir = tmp_path / "history"
        history_dir.mkdir()
        for i in range(3):
            out = str(history_dir / f"BENCH_{i}.json")
            assert main(["bench", "--out", out, *FAST_BENCH]) == 0
        capsys.readouterr()
        rc = main(
            ["bench", "--out", str(tmp_path / "BENCH_new.json"),
             "--history", str(history_dir), "--enforce", *FAST_BENCH]
        )
        assert rc == 0
        assert "against 3 historical runs" in capsys.readouterr().err


class TestTracePrecedence:
    def test_cli_trace_wins_over_env(self, tmp_path, monkeypatch, capsys):
        env_path = str(tmp_path / "env.jsonl")
        cli_path = str(tmp_path / "cli.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, env_path)
        rc = main(["--trace", cli_path, "blocks"])
        assert rc == 0
        assert obs.trace_path() == cli_path
        captured = capsys.readouterr()
        assert "overrides" in captured.err
        assert "CLI flag wins" in captured.err

    def test_no_warning_when_flag_matches_env(self, tmp_path, monkeypatch, capsys):
        path = str(tmp_path / "same.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, path)
        assert main(["--trace", path, "blocks"]) == 0
        assert "overrides" not in capsys.readouterr().err

    def test_env_alone_still_respected(self, tmp_path, monkeypatch):
        env_path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(obs.ENV_VAR, env_path)
        obs.set_trace_path(env_path)  # what _init_from_env does at import
        assert main(["blocks"]) == 0
        assert obs.trace_path() == env_path


class TestTrainAndProfile:
    def test_train_emits_trace_and_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "train.jsonl")
        rc = main(
            ["--trace", trace, "train", "--episodes", "2", "--cells", "240",
             "--seed", "0"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "best TNS" in captured.out
        assert "episode 0:" in captured.err
        kinds = [r["kind"] for r in obs.read_records(trace)]
        assert "episode" in kinds and "train" in kinds

    def test_profile_without_sink_is_an_error(self, capsys):
        rc = main(["--profile", "blocks"])
        assert rc == 2
        assert "--profile needs a trace sink" in capsys.readouterr().err

    def test_profile_emits_profile_record(self, tmp_path, capsys):
        trace = str(tmp_path / "profiled.jsonl")
        rc = main(
            ["--trace", trace, "--profile", "train", "--episodes", "1",
             "--cells", "240"]
        )
        assert rc == 0
        (profile,) = [
            r for r in obs.read_records(trace) if r["kind"] == "profile"
        ]
        assert profile["command"] == "train"
        assert profile["top_functions"]
        assert profile["memory_peak_kb"] > 0.0
