"""Tests for netlist JSON serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.netlist.generator import quick_design
from repro.netlist.io import (
    FORMAT_NAME,
    FORMAT_VERSION,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.placement.global_place import PlacementConfig, place_design
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


@pytest.fixture
def placed():
    nl = quick_design(name="io_test", n_cells=250, seed=61)
    place_design(nl, PlacementConfig(seed=1))
    return nl


class TestRoundTrip:
    def test_structure_preserved(self, placed):
        data = netlist_to_dict(placed)
        restored = netlist_from_dict(data)
        assert restored.num_cells == placed.num_cells
        assert restored.num_nets == placed.num_nets
        assert restored.name == placed.name
        assert restored.library.name == placed.library.name
        for a, b in zip(placed.cells, restored.cells):
            assert a.name == b.name
            assert a.cell_type.name == b.cell_type.name
            assert a.size_index == b.size_index
            assert a.x == b.x and a.y == b.y
            assert a.toggle_rate == b.toggle_rate
            assert a.cluster == b.cluster

    def test_skew_bounds_preserved(self, placed):
        restored = netlist_from_dict(netlist_to_dict(placed))
        assert restored.skew_bounds == placed.skew_bounds

    def test_connectivity_preserved(self, placed):
        restored = netlist_from_dict(netlist_to_dict(placed))
        for a, b in zip(placed.nets, restored.nets):
            assert a.driver == b.driver
            assert a.sinks == b.sinks

    def test_timing_identical_after_roundtrip(self, placed):
        restored = netlist_from_dict(netlist_to_dict(placed))
        period = placed.library.default_clock_period
        rep_a = TimingAnalyzer(placed).analyze(ClockModel.for_netlist(placed, period))
        rep_b = TimingAnalyzer(restored).analyze(
            ClockModel.for_netlist(restored, period)
        )
        np.testing.assert_allclose(rep_a.slack, rep_b.slack)

    def test_parasitic_scale_preserved(self, placed):
        placed.parasitic_scale = 1.3
        restored = netlist_from_dict(netlist_to_dict(placed))
        assert restored.parasitic_scale == 1.3
        placed.parasitic_scale = 1.0

    def test_file_roundtrip(self, placed, tmp_path):
        path = str(tmp_path / "designs" / "d.json")
        save_netlist(placed, path)
        restored = load_netlist(path)
        assert restored.num_cells == placed.num_cells

    def test_json_is_plain_data(self, placed):
        text = json.dumps(netlist_to_dict(placed))
        assert FORMAT_NAME in text


class TestValidationOnLoad:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-netlist"):
            netlist_from_dict({"format": "verilog", "version": 1})

    def test_wrong_version_rejected(self, placed):
        data = netlist_to_dict(placed)
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported"):
            netlist_from_dict(data)

    def test_unknown_library_rejected(self, placed):
        data = netlist_to_dict(placed)
        data["library"] = "tech3000"
        with pytest.raises(KeyError):
            netlist_from_dict(data)

    def test_negative_skew_bound_rejected(self, placed):
        data = netlist_to_dict(placed)
        for entry in data["cells"]:
            if "skew_bound" in entry:
                entry["skew_bound"] = -0.5
                break
        with pytest.raises(ValueError, match="negative skew bound"):
            netlist_from_dict(data)

    def test_structurally_invalid_rejected(self, placed):
        data = netlist_to_dict(placed)
        # Drop all nets: every connected input pin disappears -> invalid.
        data["nets"] = []
        with pytest.raises(Exception):
            netlist_from_dict(data)
