"""Tests for RNG helpers and validation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngMixin, as_rng, spawn_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestRng:
    def test_as_rng_from_int_deterministic(self):
        assert as_rng(42).integers(1000) == as_rng(42).integers(1000)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_none_works(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_streams_differ(self):
        parent = as_rng(7)
        a = spawn_rng(parent, 0)
        parent2 = as_rng(7)
        b = spawn_rng(parent2, 1)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_same_stream_reproducible(self):
        a = spawn_rng(as_rng(7), 3)
        b = spawn_rng(as_rng(7), 3)
        assert a.integers(10**9) == b.integers(10**9)

    def test_spawn_negative_stream_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), -1)

    def test_mixin_lazy_and_reseed(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._seed = seed

        t = Thing(5)
        first = t.rng.integers(1000)
        t.reseed(5)
        assert t.rng.integers(1000) == first


class TestValidation:
    def test_check_type_pass(self):
        assert check_type("x", 3, int) == 3

    def test_check_type_fail_message(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "no", int)

    def test_check_type_tuple(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_check_positive(self):
        assert check_positive("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_positive("p", 0.0)

    def test_check_non_negative(self):
        assert check_non_negative("n", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("n", -1e-9)

    def test_check_probability(self):
        assert check_probability("q", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("q", 1.01)
        with pytest.raises(ValueError):
            check_probability("q", -0.01)

    def test_check_in_range(self):
        assert check_in_range("r", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("r", 11, 0, 10)
