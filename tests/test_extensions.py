"""Tests for the future-work extensions (§V): full-flow optimization,
adaptive overlap masking, and PPA (area) accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agent.baselines import select_greedy_overlap, select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.ccd.flow import FlowConfig, restore_netlist_state, snapshot_netlist_state
from repro.ccd.fullflow import (
    FullFlowStage,
    default_stages,
    run_full_flow,
)
from repro.features.adaptive_masking import DecayingRho, FixedRho, SizeAdaptiveRho
from repro.features.cones import ConeIndex
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


class TestArea:
    def test_total_cell_area_positive(self, small_design):
        nl, _ = small_design
        assert nl.total_cell_area() > 0

    def test_upsizing_grows_area(self, fresh_design):
        nl, _ = fresh_design
        before = nl.total_cell_area()
        cell = next(
            c for c in nl.cells if not c.cell_type.is_port and c.sizing_headroom > 0
        )
        nl.resize_cell(cell.index, cell.size_index + 1)
        assert nl.total_cell_area() > before

    def test_ports_have_zero_area(self, small_design):
        nl, _ = small_design
        port = next(c for c in nl.cells if c.is_input_port)
        assert port.size.area == 0.0

    def test_skew_is_area_neutral(self, fresh_design):
        nl, period = fresh_design
        before = nl.total_cell_area()
        clock = ClockModel.for_netlist(nl, period)
        for f in nl.sequential_cells():
            if clock.bound(f) > 0:
                clock.adjust_arrival(f, clock.bound(f) / 3)
        assert nl.total_cell_area() == pytest.approx(before)


class TestParasiticScale:
    def test_scale_degrades_timing(self, fresh_design):
        nl, period = fresh_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        base = analyzer.analyze(clock)
        nl.parasitic_scale = 1.5
        analyzer.invalidate()
        worse = analyzer.analyze(clock)
        assert worse.slack.min() < base.slack.min()
        assert np.all(worse.slack <= base.slack + 1e-12)
        nl.parasitic_scale = 1.0

    def test_snapshot_restores_scale(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        nl.parasitic_scale = 2.0
        restore_netlist_state(nl, snap)
        assert nl.parasitic_scale == 1.0


class TestFullFlow:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            FullFlowStage("x", FlowConfig(clock_period=1.0), parasitic_growth=-0.1)
        with pytest.raises(ValueError):
            run_full_flow(None, [])

    def test_default_stages_shape(self):
        stages = default_stages(0.5)
        assert [s.name for s in stages] == ["placement", "cts_refine", "route_refine"]
        assert stages[0].parasitic_growth == 0.0

    def test_native_full_flow_runs(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        result = run_full_flow(nl, default_stages(period))
        restore_netlist_state(nl, snap)
        assert len(result.stage_results) == 3
        assert result.stages == ["placement", "cts_refine", "route_refine"]
        assert result.selection_counts() == [0, 0, 0]
        # Each stage ends no worse than it began (the optimizer works).
        for r in result.stage_results:
            assert r.final.tns >= r.begin.tns

    def test_selector_consulted_per_stage(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        calls = []

        def selector(env: EndpointSelectionEnv):
            calls.append(env.num_endpoints)
            return select_worst_slack(env, 3)

        result = run_full_flow(nl, default_stages(period), selector)
        restore_netlist_state(nl, snap)
        assert len(calls) >= 1  # at least the placement stage had violations
        assert any(count > 0 for count in result.selection_counts())

    def test_parasitic_growth_applied(self, fresh_design):
        nl, period = fresh_design
        snap = snapshot_netlist_state(nl)
        run_full_flow(nl, default_stages(period))
        assert nl.parasitic_scale == pytest.approx(1.15 * 1.10)
        restore_netlist_state(nl, snap)
        assert nl.parasitic_scale == 1.0


class TestAdaptiveMasking:
    @pytest.fixture
    def cones(self, small_design):
        nl, _ = small_design
        return ConeIndex(nl, nl.endpoints())

    def test_fixed_matches_cone_index(self, cones):
        strategy = FixedRho(0.3)
        valid = np.ones(len(cones), bool)
        sel = cones.endpoints[0]
        np.testing.assert_array_equal(
            strategy.mask_after_selection(cones, sel, valid, 0),
            cones.mask_after_selection(sel, valid, 0.3),
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FixedRho(1.5)
        with pytest.raises(ValueError):
            SizeAdaptiveRho(min_rho=0.5, max_rho=0.3)
        with pytest.raises(ValueError):
            DecayingRho(decay=1.5)

    def test_size_adaptive_large_cone_masks_more(self, cones):
        sizes = cones.cone_sizes()
        order = np.argsort(sizes)
        large_ep = cones.endpoints[int(order[-1])]
        if sizes[order[0]] == sizes[order[-1]]:
            pytest.skip("fixture has uniform cone sizes")
        strategy = SizeAdaptiveRho(base_rho=0.3, alpha=1.0)
        valid = np.ones(len(cones), bool)
        # Effective rho for the large cone must be <= that of the small one;
        # verify via the describe + direct threshold computation.
        masked_large = strategy.mask_after_selection(cones, large_ep, valid, 0)
        fixed_large = cones.mask_after_selection(large_ep, valid, 0.3)
        assert masked_large.sum() >= fixed_large.sum()

    def test_decaying_rho_tightens(self, cones):
        strategy = DecayingRho(base_rho=0.6, decay=0.5, min_rho=0.05)
        sel = cones.endpoints[0]
        valid = np.ones(len(cones), bool)
        early = strategy.mask_after_selection(cones, sel, valid, 0)
        late = strategy.mask_after_selection(cones, sel, valid, 10)
        assert late.sum() >= early.sum()  # smaller rho masks at least as much

    def test_describe_strings(self):
        assert "fixed" in FixedRho().describe()
        assert "size-adaptive" in SizeAdaptiveRho().describe()
        assert "decaying" in DecayingRho().describe()

    def test_env_accepts_strategy(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(
            nl, period, masking=DecayingRho(base_rho=0.6, decay=0.7)
        )
        selection = select_greedy_overlap(env)
        assert selection
        assert env.state.done

    def test_env_strategies_differ(self, small_design):
        nl, period = small_design
        results = {}
        for label, masking in (
            ("fixed", FixedRho(0.3)),
            ("decay", DecayingRho(base_rho=0.9, decay=0.3)),
        ):
            env = EndpointSelectionEnv(nl, period, masking=masking)
            results[label] = len(select_greedy_overlap(env))
        assert results["fixed"] != results["decay"]
