"""Tests for the cell library, netlist data model and builder."""

from __future__ import annotations

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import Netlist
from repro.netlist.library import LIBRARIES, CellType, get_library


class TestLibrary:
    def test_three_nodes_available(self):
        assert set(LIBRARIES) == {"tech5", "tech7", "tech12"}

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError, match="tech3"):
            get_library("tech3")

    def test_unknown_cell_type_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_library("tech7").cell_type("NAND9")

    def test_smaller_node_is_faster(self):
        d5 = get_library("tech5").cell_type("NAND2").size(0).intrinsic_delay
        d12 = get_library("tech12").cell_type("NAND2").size(0).intrinsic_delay
        assert d5 < d12

    def test_sizing_ladder_tradeoff(self):
        """Upsizing must reduce drive resistance and raise cap/power."""
        inv = get_library("tech7").cell_type("INV")
        for lo, hi in zip(inv.sizes[:-1], inv.sizes[1:]):
            assert hi.drive_resistance < lo.drive_resistance
            assert hi.input_cap > lo.input_cap
            assert hi.internal_power > lo.internal_power

    def test_size_bounds_checked(self):
        inv = get_library("tech7").cell_type("INV")
        with pytest.raises(IndexError):
            inv.size(99)

    def test_delay_model_monotone_in_load(self):
        size = get_library("tech7").cell_type("NAND2").size(0)
        assert size.delay(10.0, 0.02) > size.delay(1.0, 0.02)

    def test_delay_model_monotone_in_slew(self):
        size = get_library("tech7").cell_type("NAND2").size(0)
        assert size.delay(1.0, 0.2) > size.delay(1.0, 0.01)

    def test_dff_has_sequential_params(self):
        dff = get_library("tech7").cell_type("DFF")
        assert dff.is_sequential
        assert dff.clk_to_q > 0
        assert dff.setup_time > 0

    def test_combinational_names_excludes_ports_and_dff(self):
        names = get_library("tech7").combinational_names
        assert "DFF" not in names
        assert "INPORT" not in names
        assert "NAND2" in names

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            CellType("X", 1, ())


class TestNetlistModel:
    def _mini(self):
        lib = get_library("tech7")
        nl = Netlist("mini", lib)
        a = nl.add_cell("a", lib.cell_type("INPORT"))
        g = nl.add_cell("g", lib.cell_type("INV"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("na", a.index, [(g.index, 0)])
        nl.add_net("ng", g.index, [(y.index, 0)])
        return nl, a, g, y

    def test_duplicate_cell_name_raises(self):
        lib = get_library("tech7")
        nl = Netlist("x", lib)
        nl.add_cell("c", lib.cell_type("INV"))
        with pytest.raises(ValueError, match="duplicate"):
            nl.add_cell("c", lib.cell_type("INV"))

    def test_double_drive_raises(self):
        nl, a, g, y = self._mini()
        with pytest.raises(ValueError, match="already drives"):
            nl.add_net("again", a.index)

    def test_output_port_cannot_drive(self):
        nl, a, g, y = self._mini()
        with pytest.raises(ValueError, match="cannot drive"):
            nl.add_net("bad", y.index)

    def test_connect_bad_pin_raises(self):
        nl, a, g, y = self._mini()
        with pytest.raises(ValueError, match="no input pin"):
            nl.connect(0, g.index, 5)

    def test_connect_taken_pin_raises(self):
        nl, a, g, y = self._mini()
        with pytest.raises(ValueError, match="already connected"):
            nl.connect(1, g.index, 0)

    def test_queries(self):
        nl, a, g, y = self._mini()
        assert nl.fanin_cells(g.index) == [a.index]
        assert nl.fanout_cells(a.index) == [g.index]
        assert nl.fanout_cells(y.index) == []
        assert nl.cell_by_name("g") is g
        with pytest.raises(KeyError):
            nl.cell_by_name("zzz")

    def test_endpoint_startpoint_classification(self):
        nl, a, g, y = self._mini()
        assert a.is_startpoint and not a.is_endpoint
        assert y.is_endpoint and not y.is_startpoint
        assert not g.is_endpoint and not g.is_startpoint

    def test_net_load_cap_counts_pins_and_wire(self):
        nl, a, g, y = self._mini()
        g.x, g.y = 100.0, 0.0
        cap = nl.net_load_cap(0)
        pin = g.size.input_cap
        wire = nl.library.wire_cap_per_um * 100.0
        assert cap == pytest.approx(pin + wire)

    def test_hpwl(self):
        nl, a, g, y = self._mini()
        a.x, a.y = 0.0, 0.0
        g.x, g.y = 30.0, 40.0
        assert nl.net_hpwl(0) == pytest.approx(70.0)
        assert nl.total_hpwl() >= 70.0

    def test_resize_returns_previous(self):
        nl, a, g, y = self._mini()
        prev = nl.resize_cell(g.index, 2)
        assert prev == 0
        assert g.size_index == 2
        with pytest.raises(IndexError):
            nl.resize_cell(g.index, 99)

    def test_sizing_headroom(self):
        nl, a, g, y = self._mini()
        max_idx = g.cell_type.max_size_index
        assert g.sizing_headroom == max_idx
        nl.resize_cell(g.index, max_idx)
        assert g.sizing_headroom == 0


class TestBufferInsertion:
    def _fanout_net(self):
        lib = get_library("tech7")
        nl = Netlist("fan", lib)
        drv = nl.add_cell("drv", lib.cell_type("INV"))
        sinks = [nl.add_cell(f"s{i}", lib.cell_type("INV")) for i in range(4)]
        src = nl.add_cell("src", lib.cell_type("INPORT"))
        nl.add_net("nsrc", src.index, [(drv.index, 0)])
        nl.add_net("nfan", drv.index, [(s.index, 0) for s in sinks])
        return nl, drv, sinks

    def test_split_moves_sinks(self):
        nl, drv, sinks = self._fanout_net()
        subset = [(sinks[2].index, 0), (sinks[3].index, 0)]
        buf = nl.insert_buffer(1, subset)
        original = nl.nets[1]
        assert original.fanout == 3  # two sinks left + buffer input
        assert (buf.index, 0) in original.sinks
        new_net = nl.nets[buf.fanout_net]
        assert set(new_net.sinks) == set(subset)
        for cell_idx, pin in subset:
            assert nl.cells[cell_idx].fanin_nets[pin] == new_net.index

    def test_empty_subset_raises(self):
        nl, drv, sinks = self._fanout_net()
        with pytest.raises(ValueError):
            nl.insert_buffer(1, [])

    def test_foreign_sink_raises(self):
        nl, drv, sinks = self._fanout_net()
        with pytest.raises(ValueError, match="not on net"):
            nl.insert_buffer(1, [(drv.index, 0)])

    def test_buffer_location_defaults_to_centroid(self):
        nl, drv, sinks = self._fanout_net()
        sinks[0].x, sinks[0].y = 0.0, 0.0
        sinks[1].x, sinks[1].y = 10.0, 20.0
        buf = nl.insert_buffer(1, [(sinks[0].index, 0), (sinks[1].index, 0)])
        assert buf.x == pytest.approx(5.0)
        assert buf.y == pytest.approx(10.0)


class TestBuilder:
    def test_full_circuit(self, tiny_pipeline):
        nl = tiny_pipeline
        assert nl.num_cells == 8
        assert len(nl.endpoints()) == 3  # ff1, ff2, y
        assert len(nl.sequential_cells()) == 2

    def test_gate_arity_checked(self):
        b = NetlistBuilder("t", get_library("tech7"))
        a = b.add_input("a")
        with pytest.raises(ValueError, match="needs 2 inputs"):
            b.add_gate("NAND2", "g", [a])

    def test_add_gate_rejects_dff(self):
        b = NetlistBuilder("t", get_library("tech7"))
        a = b.add_input("a")
        with pytest.raises(ValueError, match="add_flop"):
            b.add_gate("DFF", "f", [a])

    def test_flop_skew_bound_recorded(self):
        b = NetlistBuilder("t", get_library("tech7"))
        a = b.add_input("a")
        f = b.add_flop("f", a, skew_bound=0.123)
        assert b.netlist.skew_bounds[f.index] == pytest.approx(0.123)

    def test_negative_skew_bound_raises(self):
        b = NetlistBuilder("t", get_library("tech7"))
        with pytest.raises(ValueError):
            b.add_flop("f", skew_bound=-0.1)

    def test_connect_data_feedback(self):
        b = NetlistBuilder("t", get_library("tech7"))
        f = b.add_flop("f")
        g = b.add_gate("INV", "g", [f])
        b.connect_data(f, g)
        b.add_output("y", g)
        nl = b.build()
        assert nl.fanin_cells(f.index) == [g.index]

    def test_build_validates(self):
        b = NetlistBuilder("t", get_library("tech7"))
        b.add_flop("dangling_input_flop")  # D pin unconnected
        with pytest.raises(Exception):
            b.build()
