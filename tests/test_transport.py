"""Unit tests for the length-prefixed frame transport.

The transport is the only piece of the distributed actor–learner that
touches raw sockets, so its contract is pinned here in isolation: exact
float round-trips (the byte-identity foundation), timeout semantics,
oversize protection, and thread-safe interleaving-free sends.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.agent.transport import (
    CODEC_ENV_VAR,
    MAX_FRAME_BYTES,
    FrameError,
    FrameListener,
    available_codecs,
    connect,
    resolve_codec,
)


@pytest.fixture()
def pair():
    """A connected (client, server) FrameConnection pair over loopback."""
    listener = FrameListener()
    client = connect(listener.address)
    server = listener.accept(timeout=5.0)
    assert server is not None
    yield client, server
    client.close()
    server.close()
    listener.close()


def test_json_round_trip_is_exact(pair):
    client, server = pair
    message = {
        "kind": "result",
        "floats": [0.1, -1.5e-17, 3.141592653589793, 1e308],
        "ints": [0, -7, 2**53],
        "nested": {"unicode": "端点-sélection", "none": None, "flag": True},
    }
    client.send(message)
    received = server.recv(timeout=5.0)
    assert received == message
    # Exactness, not approximation: the reward determinism contract.
    assert all(a == b for a, b in zip(received["floats"], message["floats"]))


def test_many_frames_keep_order(pair):
    client, server = pair
    for i in range(200):
        client.send({"seq": i})
    assert [server.recv(timeout=5.0)["seq"] for _ in range(200)] == list(range(200))


def test_recv_timeout_returns_none(pair):
    client, server = pair
    assert server.recv(timeout=0.05) is None


def test_peer_close_raises_frame_error(pair):
    client, server = pair
    client.close()
    with pytest.raises(FrameError):
        server.recv(timeout=5.0)


def test_send_on_closed_connection_raises(pair):
    client, server = pair
    client.close()
    with pytest.raises(FrameError):
        client.send({"kind": "x"})


def test_oversized_announced_frame_rejected():
    """A corrupt length prefix must fail fast, not allocate gigabytes."""
    listener = FrameListener()
    raw = socket.create_connection(listener.address, timeout=5.0)
    server = listener.accept(timeout=5.0)
    try:
        raw.sendall(struct.pack("!BI", 0, MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="oversized"):
            server.recv(timeout=5.0)
    finally:
        raw.close()
        server.close()
        listener.close()


def test_unknown_codec_tag_rejected():
    listener = FrameListener()
    raw = socket.create_connection(listener.address, timeout=5.0)
    server = listener.accept(timeout=5.0)
    try:
        raw.sendall(struct.pack("!BI", 250, 2) + b"{}")
        with pytest.raises(FrameError, match="codec tag"):
            server.recv(timeout=5.0)
    finally:
        raw.close()
        server.close()
        listener.close()


def test_concurrent_sends_never_interleave(pair):
    """The actor's heartbeat thread shares the socket with the task loop;
    frames from four threads must all arrive intact."""
    client, server = pair
    per_thread = 50

    def sender(tag: int) -> None:
        for i in range(per_thread):
            client.send({"tag": tag, "i": i, "pad": "x" * 512})

    threads = [threading.Thread(target=sender, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    seen = [server.recv(timeout=5.0) for _ in range(4 * per_thread)]
    for t in threads:
        t.join()
    assert all(frame["pad"] == "x" * 512 for frame in seen)
    by_tag = {tag: [f["i"] for f in seen if f["tag"] == tag] for tag in range(4)}
    # Per-sender ordering survives even though the arrival order interleaves.
    assert all(seq == list(range(per_thread)) for seq in by_tag.values())


def test_resolve_codec_precedence(monkeypatch):
    monkeypatch.delenv(CODEC_ENV_VAR, raising=False)
    assert resolve_codec() == "json"
    assert resolve_codec("json") == "json"
    monkeypatch.setenv(CODEC_ENV_VAR, "json")
    assert resolve_codec() == "json"
    with pytest.raises(ValueError, match="unknown transport codec"):
        resolve_codec("protobuf")


def test_missing_msgpack_is_one_line_error():
    """msgpack must never be imported speculatively; asking for it without
    the package is a clean ValueError (the no-new-dependencies gate)."""
    if "msgpack" in available_codecs():  # pragma: no cover — image-dependent
        assert resolve_codec("msgpack") == "msgpack"
    else:
        with pytest.raises(ValueError, match="msgpack"):
            resolve_codec("msgpack")


def test_listener_reports_ephemeral_address():
    listener = FrameListener()
    host, port = listener.address
    assert host == "127.0.0.1" and port > 0
    listener.close()
    assert listener.accept(timeout=0.0) is None
