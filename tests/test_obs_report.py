"""Golden-output tests for ``python -m repro report``."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs.history import RunHistory
from repro.obs.report import render_report

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
CANNED_TRACE = os.path.join(DATA_DIR, "canned_trace.jsonl")
GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "report_golden.md")


@pytest.fixture(autouse=True)
def clean_obs():
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    obs.reset()
    yield
    obs.set_trace_path(prev_trace)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


def _golden() -> str:
    with open(GOLDEN) as handle:
        return handle.read()


class TestGoldenReport:
    def test_render_matches_golden(self):
        records = obs.read_records(CANNED_TRACE)
        text = render_report(records, source="canned_trace.jsonl")
        assert text + "\n" == _golden()

    def test_render_is_deterministic(self):
        records = obs.read_records(CANNED_TRACE)
        first = render_report(records, source="canned_trace.jsonl")
        second = render_report(records, source="canned_trace.jsonl")
        assert first == second

    def test_cli_report_matches_golden(self, capsys, tmp_path):
        out = str(tmp_path / "report.md")
        rc = main(["report", CANNED_TRACE, "--out", out])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == _golden()
        with open(out) as handle:
            assert handle.read() == _golden()

    def test_cli_report_missing_trace(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace")
        assert err.count("\n") == 1  # one line, no traceback

    def test_cli_report_corrupt_trace(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        rc = main(["report", str(bad)])
        assert rc == 2
        assert "error: cannot read trace" in capsys.readouterr().err


class TestReportSections:
    def test_empty_trace_renders_placeholder(self):
        text = render_report([], source="empty")
        assert "# repro run report — empty" in text
        assert "(no episode records in this trace)" in text

    def test_v1_episodes_render_without_telemetry_sections(self):
        records = [
            {
                "schema": "repro-obs/v1",
                "kind": "episode",
                "git_sha": "abc",
                "episode": 0,
                "tns": -1.0,
                "advantage": 0.0,
                "num_selected": 2,
            }
        ]
        upgraded = [obs.upgrade_record(r) for r in records]
        text = render_report(upgraded, source="v1")
        assert "## Training curves" in text
        assert "(no telemetry in this trace" in text

    def test_history_adds_trend_columns(self):
        records = obs.read_records(CANNED_TRACE)
        payload = {
            "schema": "repro-bench/v1",
            "git_sha": "abc",
            "created_at": "2026-01-01T00:00:00Z",
            "total_seconds": 1.0,
            "phases": {
                # Bench spans are namespaced; the report maps "skew" →
                # "flow.skew" when looking up the baseline.
                "flow.skew": {"count": 4, "median_s": 0.034},
                "flow.begin_sta": {"count": 4, "median_s": 0.001},
            },
        }
        history = RunHistory.from_payloads([payload] * 3)
        text = render_report(records, history=history, source="t")
        assert "history median" in text
        assert "| skew | 1 | 34.000 ms" in text
        assert "ok |" in text
        # begin_sta at 12 ms vs 1 ms baseline → regressed at 3×MAD.
        assert "**regressed**" in text
        # Phases with no history row say so instead of guessing.
        assert "no history |" in text
