"""Fault-injection suite for the distributed actor–learner.

The full :class:`RolloutPool` fault contract, re-proved over sockets:
actors are crashed mid-task, hung past the deadline, frozen (``SIGSTOP``)
and made to return corrupt frames; the learner itself is torn down and
restarted between batches.  In every case results must be byte-identical
to a sequential run — recovered or degraded, never hung, never wrong.

The ``distributed-faults`` CI matrix runs this file under both ``fork``
and ``spawn`` (via ``REPRO_ROLLOUT_START_METHOD``) with one fault class
per matrix cell (via ``REPRO_DISTRIBUTED_FAULT``), uploading the obs
trace as an artifact when a cell fails; locally, with the variables
unset, everything runs.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.agent.baselines import select_worst_slack
from repro.agent.distributed import DistributedEvaluator
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    START_METHOD_ENV_VAR,
    evaluate_selections,
    fork_available,
)
from repro.ccd.flow import FlowConfig, snapshot_netlist_state

_FORCED = os.environ.get(START_METHOD_ENV_VAR, "").strip()
START_METHODS = [_FORCED] if _FORCED else (
    (["fork"] if fork_available() else []) + ["spawn"]
)

#: CI matrix cells set this to run one fault class per cell; unset runs all.
FAULT_ENV_VAR = "REPRO_DISTRIBUTED_FAULT"
_FAULT_FILTER = os.environ.get(FAULT_ENV_VAR, "").strip()


def _fault_selected(name: str) -> bool:
    return not _FAULT_FILTER or _FAULT_FILTER == name


#: Short timeouts so an injected hang costs ~a second, not the default.
FAST = dict(
    task_timeout=2.0,
    heartbeat_timeout=1.0,
    backoff_base=0.01,
    max_retries=2,
    max_actor_restarts=4,
)


@pytest.fixture(scope="module")
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    config = FlowConfig(clock_period=period)
    snapshot = snapshot_netlist_state(nl)
    selections = [select_worst_slack(env, k) for k in (1, 2, 3, 4)]
    sequential = evaluate_selections(
        nl, config, selections, workers=1, snapshot=snapshot
    )
    return nl, config, snapshot, selections, sequential


@pytest.mark.skipif(
    not _fault_selected("actor-crash"), reason=f"{FAULT_ENV_VAR}={_FAULT_FILTER}"
)
@pytest.mark.parametrize("method", START_METHODS)
class TestActorCrash:
    def test_crashed_actor_is_respawned_and_task_retried(self, context, method):
        nl, config, snapshot, selections, sequential = context
        with DistributedEvaluator(
            nl,
            config,
            actors=2,
            snapshot=snapshot,
            start_method=method,
            fault_spec={(0, 0): "crash"},
            **FAST,
        ) as evaluator:
            rewards = evaluator.evaluate(selections)
            stats = evaluator.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["actor_restarts"] >= 1
        assert stats["actor_crashes"] >= 1

    def test_corrupt_frame_is_retried(self, context, method):
        """An actor shipping garbage instead of a reward payload: rejected
        at decode, charged as corrupt, task retried elsewhere."""
        nl, config, snapshot, selections, sequential = context
        with DistributedEvaluator(
            nl,
            config,
            actors=2,
            snapshot=snapshot,
            start_method=method,
            fault_spec={(2, 0): "corrupt"},
            **FAST,
        ) as evaluator:
            rewards = evaluator.evaluate(selections)
            stats = evaluator.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["corrupt_results"] >= 1

    def test_exhausted_retries_degrade_to_sequential(self, context, method):
        """A task that crashes its actor on every attempt is finished
        in-process — results are always produced, never dropped."""
        nl, config, snapshot, selections, sequential = context
        faults = {(1, attempt): "crash" for attempt in range(10)}
        with DistributedEvaluator(
            nl,
            config,
            actors=2,
            snapshot=snapshot,
            start_method=method,
            fault_spec=faults,
            **FAST,
        ) as evaluator:
            rewards = evaluator.evaluate(selections)
            stats = evaluator.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["sequential_fallbacks"] >= 1
        assert stats["actor_restarts"] >= 1


@pytest.mark.skipif(
    not _fault_selected("actor-hang"), reason=f"{FAULT_ENV_VAR}={_FAULT_FILTER}"
)
@pytest.mark.parametrize("method", START_METHODS)
class TestActorHang:
    def test_hung_actor_hits_deadline_and_task_is_retried(self, context, method):
        nl, config, snapshot, selections, sequential = context
        with DistributedEvaluator(
            nl,
            config,
            actors=2,
            snapshot=snapshot,
            start_method=method,
            fault_spec={(1, 0): "hang"},
            **FAST,
        ) as evaluator:
            start = time.monotonic()
            rewards = evaluator.evaluate(selections)
            elapsed = time.monotonic() - start
            stats = evaluator.stats()
        assert pickle.dumps(rewards) == pickle.dumps(sequential)
        assert stats["task_timeouts"] >= 1
        assert elapsed < 30.0  # bounded by the deadline, never hung

    def test_survivors_keep_serving_after_faulted_batch(self, context, method):
        nl, config, snapshot, selections, sequential = context
        with DistributedEvaluator(
            nl,
            config,
            actors=2,
            snapshot=snapshot,
            start_method=method,
            fault_spec={(0, 0): "hang"},
            **FAST,
        ) as evaluator:
            first = evaluator.evaluate(selections)
            second = evaluator.evaluate(selections)
        blob = pickle.dumps(sequential)
        assert pickle.dumps(first) == blob
        assert pickle.dumps(second) == blob


@pytest.mark.skipif(
    not _fault_selected("actor-hang"), reason=f"{FAULT_ENV_VAR}={_FAULT_FILTER}"
)
@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
def test_heartbeat_detects_frozen_actor(context):
    """A SIGSTOPped actor goes silent on the socket; the learner notices
    via heartbeat age well before the (long) task deadline."""
    nl, config, snapshot, selections, sequential = context
    with DistributedEvaluator(
        nl,
        config,
        actors=1,
        snapshot=snapshot,
        start_method="fork",
        task_timeout=60.0,
        heartbeat_timeout=1.0,
        backoff_base=0.01,
    ) as evaluator:
        deadline = time.monotonic() + 10.0
        while (
            not any(a.ready for a in evaluator._slots)
            and time.monotonic() < deadline
        ):
            evaluator._process_io(0.05)
        victim = evaluator._slots[0].process
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            start = time.monotonic()
            rewards = evaluator.evaluate(selections[:2])
            elapsed = time.monotonic() - start
            stats = evaluator.stats()
        finally:
            try:
                os.kill(victim.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
    assert pickle.dumps(rewards) == pickle.dumps(sequential[:2])
    assert stats["actor_restarts"] >= 1
    assert elapsed < 30.0  # heartbeat fired, not the 60s deadline


@pytest.mark.skipif(
    not _fault_selected("learner-restart"), reason=f"{FAULT_ENV_VAR}={_FAULT_FILTER}"
)
@pytest.mark.parametrize("method", START_METHODS)
class TestLearnerRestart:
    def test_restarted_learner_reproduces_history(self, context, method):
        """Kill the whole learner (actors die with it), start a fresh one:
        the reward stream picks up byte-identical — the weights-version
        ordering holds state nowhere but the learner."""
        nl, config, snapshot, selections, sequential = context
        first_evaluator = DistributedEvaluator(
            nl, config, actors=2, snapshot=snapshot, start_method=method, **FAST
        )
        try:
            first = first_evaluator.evaluate(selections)
            generation = [a.process for a in first_evaluator._slots]
        finally:
            first_evaluator.close()
        # All first-generation actors must be gone with their learner.
        for process in generation:
            assert process is None or not process.is_alive()
        with DistributedEvaluator(
            nl, config, actors=2, snapshot=snapshot, start_method=method, **FAST
        ) as evaluator:
            second = evaluator.evaluate(selections)
        blob = pickle.dumps(sequential)
        assert pickle.dumps(first) == blob
        assert pickle.dumps(second) == blob

    def test_closed_learner_refuses_new_batches(self, context, method):
        nl, config, snapshot, selections, sequential = context
        evaluator = DistributedEvaluator(
            nl, config, actors=1, snapshot=snapshot, start_method=method, **FAST
        )
        evaluator.close()
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate(selections[:1])
