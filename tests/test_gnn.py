"""Tests for the EP-GNN encoder (Eq. 2 and Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.cones import ConeIndex
from repro.features.table1 import NUM_FEATURES, FeatureExtractor
from repro.gnn.epgnn import EMBED_DIM, HIDDEN_DIM, EPGNN, GraphConvLayer
from repro.netlist.transform import to_message_passing_graph
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


@pytest.fixture
def gnn_context(small_design):
    nl, period = small_design
    analyzer = TimingAnalyzer(nl)
    clock = ClockModel.for_netlist(nl, period)
    report = analyzer.analyze(clock)
    graph = to_message_passing_graph(nl)
    cones = ConeIndex(nl, nl.endpoints())
    features = FeatureExtractor(nl).extract(report, clock)
    return nl, graph, cones, features


class TestGraphConvLayer:
    def test_output_in_sigmoid_range(self, gnn_context, rng):
        nl, graph, cones, features = gnn_context
        layer = GraphConvLayer(NUM_FEATURES, 8, rng=0)
        from repro.nn.tensor import Tensor

        out = layer(Tensor(features), graph)
        assert np.all(out.data > 0.0)
        assert np.all(out.data < 1.0)

    def test_gamma_in_unit_interval(self):
        layer = GraphConvLayer(4, 4, rng=0)
        assert 0.0 < layer.gamma < 1.0

    def test_gamma_trainable(self, gnn_context):
        nl, graph, cones, features = gnn_context
        layer = GraphConvLayer(NUM_FEATURES, 4, rng=0)
        from repro.nn.tensor import Tensor

        out = layer(Tensor(features), graph)
        out.sum().backward()
        assert layer.gamma_logit.grad is not None
        assert layer.gamma_logit.grad[0] != 0.0


class TestEPGNN:
    def test_paper_dimensions(self):
        gnn = EPGNN(NUM_FEATURES, rng=0)
        assert gnn.hidden_dim == HIDDEN_DIM == 32
        assert gnn.embed_dim == EMBED_DIM == 16
        assert len(gnn.layers) == 3

    def test_embedding_shape(self, gnn_context):
        nl, graph, cones, features = gnn_context
        gnn = EPGNN(NUM_FEATURES, rng=0)
        emb = gnn(features, graph, cones)
        assert emb.shape == (len(cones), EMBED_DIM)

    def test_wrong_feature_dim_raises(self, gnn_context):
        nl, graph, cones, features = gnn_context
        gnn = EPGNN(NUM_FEATURES, rng=0)
        with pytest.raises(ValueError):
            gnn(features[:, :5], graph, cones)

    def test_zero_layers_raises(self):
        with pytest.raises(ValueError):
            EPGNN(NUM_FEATURES, num_layers=0)

    def test_deterministic_per_seed(self, gnn_context):
        nl, graph, cones, features = gnn_context
        a = EPGNN(NUM_FEATURES, rng=3)(features, graph, cones)
        b = EPGNN(NUM_FEATURES, rng=3)(features, graph, cones)
        np.testing.assert_array_equal(a.data, b.data)

    def test_mask_column_changes_embeddings(self, gnn_context):
        """Re-encoding after a selection must produce different state s_t."""
        nl, graph, cones, features = gnn_context
        gnn = EPGNN(NUM_FEATURES, rng=0)
        base = gnn(features, graph, cones).data
        flipped = features.copy()
        flipped[cones.endpoints[0], 0] = 1.0
        after = gnn(flipped, graph, cones).data
        assert not np.allclose(base, after)

    def test_cone_aggregation_matters(self, gnn_context):
        """Eq. 3: perturbing a cone cell's features changes only endpoints
        whose receptive field contains it."""
        nl, graph, cones, features = gnn_context
        gnn = EPGNN(NUM_FEATURES, num_layers=1, rng=0)
        target = None
        for i, cone in enumerate(cones.cones):
            if len(cone) >= 3:
                target = i
                break
        assert target is not None
        cone_cell = next(iter(cones.cones[target]))
        base = gnn(features, graph, cones).data
        perturbed = features.copy()
        perturbed[cone_cell, 3:10] += 5.0
        after = gnn(perturbed, graph, cones).data
        assert not np.allclose(base[target], after[target])

    def test_gradients_reach_every_parameter(self, gnn_context):
        nl, graph, cones, features = gnn_context
        gnn = EPGNN(NUM_FEATURES, rng=0)
        emb = gnn(features, graph, cones)
        (emb * emb).sum().backward()
        for name, p in gnn.named_parameters():
            assert p.grad is not None, f"no grad for {name}"

    def test_segment_sum_gradient(self, rng):
        from repro.gnn.epgnn import _segment_sum
        from repro.nn.tensor import Tensor

        rows = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        segments = np.array([0, 0, 1, 2, 2])
        out = _segment_sum(rows, segments, 3)
        np.testing.assert_allclose(out.data[0], rows.data[:2].sum(axis=0))
        (out * out).sum().backward()
        assert rows.grad is not None
        np.testing.assert_allclose(rows.grad[0], 2 * out.data[0])

    def test_transfer_state_dict_roundtrip(self, gnn_context):
        nl, graph, cones, features = gnn_context
        a = EPGNN(NUM_FEATURES, rng=0)
        b = EPGNN(NUM_FEATURES, rng=9)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(
            a(features, graph, cones).data, b(features, graph, cones).data
        )
