"""Tests for the synthetic global placer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist.generator import quick_design
from repro.placement.global_place import PlacementConfig, die_size, place_design


class TestPlacementConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PlacementConfig(area_per_cell=0.0)
        with pytest.raises(ValueError):
            PlacementConfig(neighbor_pull=1.5)
        with pytest.raises(ValueError):
            PlacementConfig(refinement_sweeps=-1)


class TestPlacement:
    def test_deterministic(self):
        a = quick_design(n_cells=300, seed=1)
        b = quick_design(n_cells=300, seed=1)
        place_design(a, PlacementConfig(seed=5))
        place_design(b, PlacementConfig(seed=5))
        for ca, cb in zip(a.cells, b.cells):
            assert ca.x == cb.x and ca.y == cb.y

    def test_all_cells_inside_die(self):
        nl = quick_design(n_cells=400, seed=2)
        cfg = PlacementConfig(seed=1)
        place_design(nl, cfg)
        side = die_size(nl, cfg)
        for c in nl.cells:
            assert -1e-9 <= c.x <= side + 1e-9
            assert -1e-9 <= c.y <= side + 1e-9

    def test_input_ports_on_west_edge(self):
        nl = quick_design(n_cells=300, seed=3)
        place_design(nl, PlacementConfig(seed=1))
        for c in nl.cells:
            if c.is_input_port:
                assert c.x == 0.0

    def test_output_ports_on_east_edge(self):
        nl = quick_design(n_cells=300, seed=3)
        cfg = PlacementConfig(seed=1)
        place_design(nl, cfg)
        side = die_size(nl, cfg)
        for c in nl.cells:
            if c.is_output_port:
                assert c.x == pytest.approx(side)

    def test_clusters_spatially_separated(self):
        nl = quick_design(n_cells=600, seed=4, n_clusters=4)
        place_design(nl, PlacementConfig(seed=1))
        centroids = {}
        for c in nl.cells:
            if c.cell_type.is_port:
                continue
            centroids.setdefault(c.cluster, []).append((c.x, c.y))
        means = {k: np.mean(v, axis=0) for k, v in centroids.items()}
        keys = list(means)
        # At least one pair of clusters must be well separated.
        dists = [
            np.linalg.norm(means[a] - means[b])
            for i, a in enumerate(keys)
            for b in keys[i + 1 :]
        ]
        assert max(dists) > 0.2 * die_size(nl, PlacementConfig())

    def test_refinement_reduces_wirelength(self):
        nl_scatter = quick_design(n_cells=500, seed=5)
        nl_refined = quick_design(n_cells=500, seed=5)
        place_design(nl_scatter, PlacementConfig(seed=1, refinement_sweeps=0))
        place_design(nl_refined, PlacementConfig(seed=1, refinement_sweeps=4))
        assert nl_refined.total_hpwl() < nl_scatter.total_hpwl()

    def test_die_scales_with_cells(self):
        small = quick_design(n_cells=200, seed=6)
        large = quick_design(n_cells=800, seed=6)
        cfg = PlacementConfig()
        assert die_size(large, cfg) > die_size(small, cfg)
