"""Tests for fan-in cones, overlap masking, and Table-I feature extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.cones import ConeIndex, fanin_cone
from repro.features.table1 import FEATURE_NAMES, NUM_FEATURES, FeatureExtractor
from repro.netlist.generator import quick_design
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


class TestFaninCone:
    def test_tiny_pipeline_cones(self, tiny_pipeline):
        nl = tiny_pipeline
        ff1 = nl.cell_by_name("ff1").index
        ff2 = nl.cell_by_name("ff2").index
        y = nl.cell_by_name("y").index
        g1 = nl.cell_by_name("g1").index
        g2 = nl.cell_by_name("g2").index
        g3 = nl.cell_by_name("g3").index
        assert fanin_cone(nl, ff1) == {g1}
        assert fanin_cone(nl, ff2) == {g2}
        assert fanin_cone(nl, y) == {g3}

    def test_cone_stops_at_startpoints(self, tiny_pipeline):
        """ff2's cone must not reach through ff1 into g1."""
        nl = tiny_pipeline
        ff2 = nl.cell_by_name("ff2").index
        g1 = nl.cell_by_name("g1").index
        assert g1 not in fanin_cone(nl, ff2)

    def test_cone_excludes_endpoint_itself(self, small_design):
        nl, _ = small_design
        for e in nl.endpoints()[:10]:
            assert e not in fanin_cone(nl, e)

    def test_cone_contains_only_comb_cells(self, small_design):
        nl, _ = small_design
        for e in nl.endpoints()[:10]:
            for c in fanin_cone(nl, e):
                cell = nl.cells[c]
                assert not cell.is_startpoint
                assert not cell.is_sequential


class TestConeIndex:
    @pytest.fixture
    def index(self, small_design):
        nl, _ = small_design
        return nl, ConeIndex(nl, nl.endpoints())

    def test_self_overlap_is_one(self, index):
        nl, idx = index
        for e in idx.endpoints[:15]:
            if idx.cone_of(e):
                assert idx.overlap_ratio(e, e) == pytest.approx(1.0)

    def test_ratio_in_unit_interval(self, index):
        nl, idx = index
        for a in idx.endpoints[:8]:
            ratios = idx.overlap_ratios(a)
            assert np.all(ratios >= 0.0)
            assert np.all(ratios <= 1.0)

    def test_ratio_formula_matches_sets(self, index):
        nl, idx = index
        a, b = idx.endpoints[0], idx.endpoints[1]
        cone_a, cone_b = idx.cone_of(a), idx.cone_of(b)
        if cone_b:
            expected = len(cone_a & cone_b) / len(cone_b)
            assert idx.overlap_ratio(a, b) == pytest.approx(expected)

    def test_empty_cone_ratio_zero(self, index):
        nl, idx = index
        # Endpoint fed directly by a startpoint has an empty cone.
        empties = [e for e in idx.endpoints if not idx.cone_of(e)]
        for e in empties[:3]:
            assert idx.overlap_ratio(idx.endpoints[0], e) == 0.0

    def test_bitset_ratios_match_set_intersections(self, index):
        nl, idx = index
        # The popcount/bitset path must be bitwise identical to the
        # original per-candidate frozenset intersections, for every pair.
        for a in idx.endpoints[:10]:
            cone_a = idx.cone_of(a)
            ratios = idx.overlap_ratios(a)
            for pos, b in enumerate(idx.endpoints):
                cone_b = idx.cone_of(b)
                expected = (
                    len(cone_a & cone_b) / len(cone_b) if cone_b else 0.0
                )
                assert ratios[pos] == expected
                assert idx.overlap_ratio(a, b) == expected

    def test_cone_arrays_match_frozensets(self, index):
        nl, idx = index
        for pos, cone in enumerate(idx.cones):
            members = idx.cone_array(pos)
            assert members.dtype == np.int64
            assert np.all(np.diff(members) > 0)  # sorted, unique
            assert set(members.tolist()) == set(cone)

    def test_cone_csr_flattens_all_cones(self, index):
        nl, idx = index
        assert idx.cone_indptr.shape == (len(idx.endpoints) + 1,)
        assert idx.cone_indptr[-1] == idx.cone_members.size
        for pos in range(len(idx.endpoints)):
            start, stop = idx.cone_indptr[pos], idx.cone_indptr[pos + 1]
            assert np.array_equal(
                idx.cone_members[start:stop], idx.cone_array(pos)
            )

    def test_endpoints_touching_inverts_membership(self, index):
        nl, idx = index
        some_cells = idx.cone_members[:5]
        touched = idx.endpoints_touching(some_cells)
        expected = {
            pos
            for pos, cone in enumerate(idx.cones)
            if cone & set(some_cells.tolist())
        }
        assert set(touched.tolist()) == expected
        assert np.all(np.diff(touched) > 0)

    def test_endpoints_touching_empty_input(self, index):
        nl, idx = index
        assert idx.endpoints_touching(np.empty(0, dtype=np.int64)).size == 0

    def test_mask_respects_rho(self, index):
        nl, idx = index
        selected = idx.endpoints[0]
        valid = np.ones(len(idx), bool)
        strict = idx.mask_after_selection(selected, valid, rho=0.1)
        loose = idx.mask_after_selection(selected, valid, rho=0.9)
        assert strict.sum() >= loose.sum()

    def test_mask_never_includes_selected(self, index):
        nl, idx = index
        selected = idx.endpoints[0]
        valid = np.ones(len(idx), bool)
        mask = idx.mask_after_selection(selected, valid, rho=0.0)
        assert not mask[0]

    def test_mask_only_among_valid(self, index):
        nl, idx = index
        selected = idx.endpoints[0]
        valid = np.zeros(len(idx), bool)
        valid[1] = True
        mask = idx.mask_after_selection(selected, valid, rho=0.0)
        assert mask.sum() <= 1

    def test_bad_rho_raises(self, index):
        nl, idx = index
        with pytest.raises(ValueError):
            idx.mask_after_selection(idx.endpoints[0], np.ones(len(idx), bool), 1.5)

    def test_bad_valid_shape_raises(self, index):
        nl, idx = index
        with pytest.raises(ValueError):
            idx.mask_after_selection(idx.endpoints[0], np.ones(3, bool), 0.3)

    def test_cone_sizes(self, index):
        nl, idx = index
        sizes = idx.cone_sizes()
        assert sizes.shape == (len(idx),)
        assert (sizes >= 0).all()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 300), rho=st.floats(0.0, 1.0))
def test_property_masking_loop_terminates(seed, rho):
    """Selecting worst-valid repeatedly always ends with all selected/masked,
    and selected cones pairwise overlap at most rho (w.r.t. later cones)."""
    nl = quick_design(n_cells=250, seed=seed)
    endpoints = nl.endpoints()
    idx = ConeIndex(nl, endpoints)
    valid = np.ones(len(idx), bool)
    selected = []
    for _ in range(len(idx) + 1):
        if not valid.any():
            break
        pos = int(np.nonzero(valid)[0][0])
        endpoint = idx.endpoints[pos]
        valid[pos] = False
        mask = idx.mask_after_selection(endpoint, valid, rho)
        valid &= ~mask
        selected.append(endpoint)
    assert not valid.any()
    # Later selections were valid when chosen: their overlap with every
    # earlier selection is <= rho.
    for i, later in enumerate(selected):
        for earlier in selected[:i]:
            assert idx.overlap_ratio(earlier, later) <= rho + 1e-12


class TestFeatureExtractor:
    @pytest.fixture
    def context(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        report = analyzer.analyze(clock)
        return nl, clock, report, FeatureExtractor(nl)

    def test_shape_and_names(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        assert feats.shape == (nl.num_cells, NUM_FEATURES)
        assert len(FEATURE_NAMES) == NUM_FEATURES

    def test_mask_column(self, context):
        nl, clock, report, fx = context
        eps = nl.endpoints()[:3]
        feats = fx.extract(report, clock, masked_or_selected=eps)
        assert np.all(feats[eps, 0] == 1.0)
        assert feats[:, 0].sum() == len(eps)

    def test_update_mask_column_in_place(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        out = fx.update_mask_column(feats, [5, 7])
        assert out is feats
        assert feats[5, 0] == 1.0 and feats[7, 0] == 1.0
        fx.update_mask_column(feats, [])
        assert feats[:, 0].sum() == 0.0

    def test_locations_normalized(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        assert feats[:, 1].max() <= 1.0 + 1e-9
        assert feats[:, 2].max() <= 1.0 + 1e-9

    def test_all_finite(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        assert np.all(np.isfinite(feats))

    def test_endpoint_slack_feature_margin_aware(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        ep = nl.endpoints()[0]
        fx = FeatureExtractor(nl)
        plain = fx.extract(analyzer.analyze(clock), clock)
        margined = fx.extract(analyzer.analyze(clock, margins={ep: 0.1}), clock)
        assert margined[ep, 10] < plain[ep, 10]

    def test_clock_flexibility_feature(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        for f, bound in nl.skew_bounds.items():
            assert feats[f, 13] == pytest.approx(bound / clock.period)
        comb = next(
            c.index for c in nl.cells if not c.is_sequential and not c.cell_type.is_port
        )
        assert feats[comb, 13] == 0.0

    def test_clock_flexibility_can_be_disabled(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        fx = FeatureExtractor(nl, include_clock_flexibility=False)
        feats = fx.extract(analyzer.analyze(clock), clock)
        assert feats[:, 13].sum() == 0.0

    def test_toggle_feature_passthrough(self, context):
        nl, clock, report, fx = context
        feats = fx.extract(report, clock)
        for c in nl.cells[:20]:
            assert feats[c.index, 9] == pytest.approx(c.toggle_rate)
