"""Tests for margins, the useful-skew engine, the data-path optimizer and
the placement flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccd.datapath_opt import DatapathConfig, optimize_datapath
from repro.ccd.flow import (
    FlowConfig,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.ccd.margins import margins_by_amount, margins_to_wns, remove_margins
from repro.ccd.useful_skew import UsefulSkewConfig, optimize_useful_skew
from repro.timing.clock import ClockModel
from repro.timing.metrics import tns, violating_endpoints
from repro.timing.sta import TimingAnalyzer


def _context(design):
    nl, period = design
    analyzer = TimingAnalyzer(nl)
    clock = ClockModel.for_netlist(nl, period)
    report = analyzer.analyze(clock)
    return nl, period, analyzer, clock, report


class TestMargins:
    def test_margins_bring_apparent_slack_to_wns(self, small_design):
        nl, period, analyzer, clock, report = _context(small_design)
        viol = violating_endpoints(report)[:5].tolist()
        margins = margins_to_wns(report, viol)
        margined = analyzer.analyze(clock, margins)
        design_wns = report.slack.min()
        for e in viol:
            k = int(np.nonzero(margined.endpoints == e)[0][0])
            assert margined.slack_with_margins[k] == pytest.approx(design_wns)

    def test_margins_non_negative(self, small_design):
        nl, period, analyzer, clock, report = _context(small_design)
        margins = margins_to_wns(report, violating_endpoints(report).tolist())
        assert all(m >= 0.0 for m in margins.values())

    def test_worst_endpoint_gets_zero_margin(self, small_design):
        nl, period, analyzer, clock, report = _context(small_design)
        worst = int(report.endpoints[np.argmin(report.slack)])
        margins = margins_to_wns(report, [worst])
        assert margins[worst] == pytest.approx(0.0)

    def test_non_endpoint_raises(self, small_design):
        nl, period, analyzer, clock, report = _context(small_design)
        comb = next(
            c.index for c in nl.cells if not c.is_endpoint and not c.is_startpoint
        )
        with pytest.raises(KeyError):
            margins_to_wns(report, [comb])

    def test_margins_by_amount_signs(self):
        m = margins_by_amount([3, 4], 0.1)
        assert m == {3: 0.1, 4: 0.1}
        m = margins_by_amount([3], -0.05)  # under-fix variant
        assert m[3] == -0.05

    def test_remove_margins_restores_exactly(self, small_design):
        nl, period, analyzer, clock, report = _context(small_design)
        viol = violating_endpoints(report)[:5].tolist()
        margins = margins_to_wns(report, viol)
        cleared = analyzer.analyze(clock, remove_margins(margins))
        plain = analyzer.analyze(clock)
        np.testing.assert_array_equal(cleared.slack, plain.slack)
        np.testing.assert_array_equal(cleared.margins, plain.margins)


class TestUsefulSkew:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            UsefulSkewConfig(passes=0)
        with pytest.raises(ValueError):
            UsefulSkewConfig(mode="yolo")
        with pytest.raises(ValueError):
            UsefulSkewConfig(attention_fraction=0.0)
        with pytest.raises(ValueError):
            UsefulSkewConfig(min_attention=0)

    def test_improves_tns(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        before = tns(report.slack)
        optimize_useful_skew(analyzer, clock)
        after = tns(analyzer.analyze(clock).slack)
        assert after > before

    def test_respects_bounds(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        optimize_useful_skew(analyzer, clock)
        for f, v in clock.arrivals.items():
            assert abs(v) <= clock.bound(f) + 1e-9

    def test_conservative_never_creates_new_violations(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        healthy_before = set(report.endpoints[report.slack >= 0].tolist())
        optimize_useful_skew(
            analyzer, clock, config=UsefulSkewConfig(mode="conservative")
        )
        after = analyzer.analyze(clock)
        healthy_after = set(after.endpoints[after.slack >= -1e-9].tolist())
        assert healthy_before <= healthy_after

    def test_rigid_flops_never_move(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        rigid = {f for f in nl.sequential_cells() if clock.bound(f) == 0.0}
        optimize_useful_skew(analyzer, clock)
        for f in rigid:
            assert clock.arrival(f) == 0.0

    def test_margins_change_allocation(self, fresh_design):
        """Margined endpoints receive at least as much capture skew."""
        nl, period, analyzer, clock, report = _context(fresh_design)
        viol = violating_endpoints(report)
        flex = [
            int(e)
            for e in viol
            if nl.cells[int(e)].is_sequential and clock.bound(int(e)) > 0.02
        ]
        if not flex:
            pytest.skip("no flexible violating flop in fixture")
        target = flex[min(4, len(flex) - 1)]  # not the worst one
        plain_clock = clock.copy()
        optimize_useful_skew(analyzer, plain_clock)
        margin_clock = clock.copy()
        margins = margins_to_wns(report, [target])
        optimize_useful_skew(analyzer, margin_clock, margins)
        assert margin_clock.arrival(target) >= plain_clock.arrival(target) - 1e-9

    def test_result_accounting(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        result = optimize_useful_skew(analyzer, clock)
        assert result.commits >= 0
        assert result.passes_run >= 1
        assert result.total_adjustment == pytest.approx(clock.total_adjustment())


class TestDatapath:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DatapathConfig(effort_per_violation=0)
        with pytest.raises(ValueError):
            DatapathConfig(min_moves=5, max_moves=3)

    def test_improves_tns(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        before = tns(report.slack)
        result = optimize_datapath(analyzer, clock)
        after = tns(analyzer.analyze(clock).slack)
        assert after >= before
        assert result.total_moves > 0

    def test_no_violations_no_moves(self, fresh_design):
        nl, period, analyzer, _, _ = _context(fresh_design)
        generous = ClockModel.for_netlist(nl, period * 10)
        result = optimize_datapath(analyzer, generous)
        assert result.total_moves == 0

    def test_budget_respected(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        config = DatapathConfig(
            effort_per_violation=0.1, min_moves=3, max_moves=3
        )
        result = optimize_datapath(analyzer, clock, config=config)
        assert result.budget_spent <= 3 + 1.5  # one in-flight move may finish

    def test_moves_mutate_netlist(self, fresh_design):
        nl, period, analyzer, clock, report = _context(fresh_design)
        sizes_before = [c.size_index for c in nl.cells]
        n_before = nl.num_cells
        result = optimize_datapath(analyzer, clock)
        sizes_after = [c.size_index for c in nl.cells[:n_before]]
        changed = sizes_before != sizes_after or nl.num_cells > n_before
        assert changed == (result.total_moves > 0)


class TestFlow:
    def test_default_flow_improves(self, fresh_design):
        nl, period = fresh_design
        result = run_flow(nl, FlowConfig(clock_period=period))
        assert result.final.tns > result.begin.tns
        assert result.final.nve <= result.begin.nve
        assert result.runtime_seconds > 0

    def test_prioritized_flow_runs(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        analyzer = TimingAnalyzer(nl)
        report = analyzer.analyze(ClockModel.for_netlist(nl, period))
        sel = violating_endpoints(report)[:5].tolist()
        result = run_flow(nl, FlowConfig(clock_period=period), sel)
        assert result.prioritized == sel
        assert result.final.tns > result.begin.tns
        restore_netlist_state(nl, snapshot)

    def test_same_begin_state_both_flows(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        r1 = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        r2 = run_flow(nl, FlowConfig(clock_period=period), [nl.endpoints()[0]])
        restore_netlist_state(nl, snapshot)
        assert r1.begin.tns == pytest.approx(r2.begin.tns)
        assert r1.begin_power.total == pytest.approx(r2.begin_power.total)

    def test_flow_deterministic(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        r1 = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        r2 = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        assert r1.final.tns == pytest.approx(r2.final.tns)
        assert r1.final.nve == r2.final.nve

    def test_snapshot_restore_roundtrip(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        sizes = [c.size_index for c in nl.cells]
        n_cells, n_nets = nl.num_cells, nl.num_nets
        run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        assert nl.num_cells == n_cells
        assert nl.num_nets == n_nets
        assert [c.size_index for c in nl.cells] == sizes
        # Timing identical after restore.
        analyzer = TimingAnalyzer(nl)
        analyzer.analyze(ClockModel.for_netlist(nl, period))
        rep2_nl_sizes = [c.size_index for c in nl.cells]
        assert rep2_nl_sizes == sizes

    def test_restore_removes_inserted_buffers(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        names_before = {c.name for c in nl.cells}
        run_flow(
            nl,
            FlowConfig(
                clock_period=period,
                datapath=DatapathConfig(effort_per_violation=4.0),
            ),
        )
        restore_netlist_state(nl, snapshot)
        assert {c.name for c in nl.cells} == names_before
        with pytest.raises(KeyError):
            nl.cell_by_name("definitely_not_there")

    def test_arrival_adjustments_recorded(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        result = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        assert len(result.arrival_adjustments) > 0
        for f, v in result.arrival_adjustments.items():
            assert v != 0.0
            assert abs(v) <= nl.skew_bounds.get(f, 0.0) + 1e-9

    def test_underfix_margin_mode(self, fresh_design):
        nl, period = fresh_design
        snapshot = snapshot_netlist_state(nl)
        analyzer = TimingAnalyzer(nl)
        report = analyzer.analyze(ClockModel.for_netlist(nl, period))
        sel = violating_endpoints(report)[:5].tolist()
        result = run_flow(
            nl,
            FlowConfig(clock_period=period, margin_mode=-0.05),
            sel,
        )
        restore_netlist_state(nl, snapshot)
        assert result.final.tns > result.begin.tns  # still optimizes overall
