"""Tests for the parallel flow-reward evaluator."""

from __future__ import annotations

import pytest

from repro.agent.baselines import select_random, select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import FlowReward, evaluate_selections, fork_available
from repro.ccd.flow import FlowConfig, snapshot_netlist_state


@pytest.fixture
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    return nl, period, env


class TestEvaluateSelections:
    def test_invalid_workers_raise(self, context):
        nl, period, env = context
        with pytest.raises(ValueError):
            evaluate_selections(nl, FlowConfig(clock_period=period), [[]], workers=0)

    def test_sequential_returns_one_reward_per_selection(self, context):
        nl, period, env = context
        selections = [select_worst_slack(env, k) for k in (0, 2, 5)]
        rewards = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=1
        )
        assert len(rewards) == 3
        for reward, selection in zip(rewards, selections):
            assert isinstance(reward, FlowReward)
            assert reward.num_selected == len(selection)
            assert reward.tns <= 0.0

    def test_netlist_left_at_snapshot(self, context):
        nl, period, env = context
        before = snapshot_netlist_state(nl)
        evaluate_selections(
            nl, FlowConfig(clock_period=period), [select_worst_slack(env, 3)]
        )
        after = snapshot_netlist_state(nl)
        assert before == after

    def test_empty_selection_matches_default_flow(self, context):
        from repro.ccd.flow import restore_netlist_state, run_flow

        nl, period, env = context
        snapshot = snapshot_netlist_state(nl)
        (reward,) = evaluate_selections(nl, FlowConfig(clock_period=period), [[]])
        direct = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        assert reward.tns == pytest.approx(direct.final.tns)
        assert reward.nve == direct.final.nve

    def test_deterministic_across_calls(self, context):
        nl, period, env = context
        sel = [select_random(env, 4, rng=1)]
        a = evaluate_selections(nl, FlowConfig(clock_period=period), sel)
        b = evaluate_selections(nl, FlowConfig(clock_period=period), sel)
        assert a == b

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_parallel_matches_sequential(self, context):
        nl, period, env = context
        selections = [select_random(env, 3, rng=i) for i in range(3)]
        seq = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=1
        )
        par = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=3
        )
        assert seq == par
