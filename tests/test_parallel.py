"""Tests for the parallel flow-reward evaluator and rollout pool."""

from __future__ import annotations

import pickle

import pytest

from repro.agent.baselines import select_random, select_worst_slack
from repro.agent.env import EndpointSelectionEnv
from repro.agent.parallel import (
    FlowReward,
    RewardCache,
    RolloutPool,
    _task_message,
    evaluate_selections,
    fork_available,
    resolve_start_method,
)
from repro.ccd.flow import FlowConfig, snapshot_netlist_state


@pytest.fixture
def context(small_design):
    nl, period = small_design
    env = EndpointSelectionEnv(nl, period)
    return nl, period, env


class TestEvaluateSelections:
    def test_invalid_workers_raise(self, context):
        nl, period, env = context
        with pytest.raises(ValueError):
            evaluate_selections(nl, FlowConfig(clock_period=period), [[]], workers=0)

    def test_sequential_returns_one_reward_per_selection(self, context):
        nl, period, env = context
        selections = [select_worst_slack(env, k) for k in (0, 2, 5)]
        rewards = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=1
        )
        assert len(rewards) == 3
        for reward, selection in zip(rewards, selections):
            assert isinstance(reward, FlowReward)
            assert reward.num_selected == len(selection)
            assert reward.tns <= 0.0

    def test_netlist_left_at_snapshot(self, context):
        nl, period, env = context
        before = snapshot_netlist_state(nl)
        evaluate_selections(
            nl, FlowConfig(clock_period=period), [select_worst_slack(env, 3)]
        )
        after = snapshot_netlist_state(nl)
        assert before == after

    def test_empty_selection_matches_default_flow(self, context):
        from repro.ccd.flow import restore_netlist_state, run_flow

        nl, period, env = context
        snapshot = snapshot_netlist_state(nl)
        (reward,) = evaluate_selections(nl, FlowConfig(clock_period=period), [[]])
        direct = run_flow(nl, FlowConfig(clock_period=period))
        restore_netlist_state(nl, snapshot)
        assert reward.tns == pytest.approx(direct.final.tns)
        assert reward.nve == direct.final.nve

    def test_deterministic_across_calls(self, context):
        nl, period, env = context
        sel = [select_random(env, 4, rng=1)]
        a = evaluate_selections(nl, FlowConfig(clock_period=period), sel)
        b = evaluate_selections(nl, FlowConfig(clock_period=period), sel)
        assert a == b

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_parallel_matches_sequential(self, context):
        nl, period, env = context
        selections = [select_random(env, 3, rng=i) for i in range(3)]
        seq = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=1
        )
        par = evaluate_selections(
            nl, FlowConfig(clock_period=period), selections, workers=3
        )
        assert seq == par


class TestTaskPayload:
    def test_task_payload_is_o_selection_not_o_netlist(self, context):
        """Regression: the pre-pool evaluator re-pickled the whole netlist
        into every worker task; pool tasks must stay O(selection)."""
        nl, period, env = context
        selection = select_worst_slack(env, 8)
        payload = pickle.dumps(_task_message(7, 0, selection))
        netlist_size = len(pickle.dumps(nl))
        assert len(payload) < 512
        assert len(payload) * 100 < netlist_size

    def test_task_payload_grows_with_selection_only(self, context):
        nl, period, env = context
        small = len(pickle.dumps(_task_message(0, 0, select_worst_slack(env, 1))))
        large = len(pickle.dumps(_task_message(0, 0, select_worst_slack(env, 9))))
        # Eight more endpoints cost a few dozen bytes, not a netlist.
        assert large - small < 256


class TestRewardCache:
    def test_hit_returns_stored_reward(self, context):
        nl, period, env = context
        config = FlowConfig(clock_period=period)
        snapshot = snapshot_netlist_state(nl)
        cache = RewardCache.for_context(snapshot, config)
        selection = select_worst_slack(env, 3)
        assert cache.get(selection) is None
        (reward,) = evaluate_selections(
            nl, config, [selection], workers=1, snapshot=snapshot, cache=cache
        )
        assert cache.get(selection) == reward
        assert cache.hits == 1 and cache.misses == 2

    def test_cached_rewards_identical_to_recompute(self, context):
        nl, period, env = context
        config = FlowConfig(clock_period=period)
        snapshot = snapshot_netlist_state(nl)
        cache = RewardCache.for_context(snapshot, config)
        selections = [select_worst_slack(env, k) for k in (0, 2, 4)]
        first = evaluate_selections(
            nl, config, selections, workers=1, snapshot=snapshot, cache=cache
        )
        replay = evaluate_selections(
            nl, config, selections, workers=1, snapshot=snapshot, cache=cache
        )
        uncached = evaluate_selections(
            nl, config, selections, workers=1, snapshot=snapshot
        )
        assert pickle.dumps(first) == pickle.dumps(replay) == pickle.dumps(uncached)
        assert cache.hits == len(selections)

    def test_key_distinguishes_selection_order(self, context):
        nl, period, env = context
        snapshot = snapshot_netlist_state(nl)
        cache = RewardCache.for_context(snapshot, FlowConfig(clock_period=period))
        a, b = env.endpoints[0], env.endpoints[1]
        assert cache.key([a, b]) != cache.key([b, a])

    def test_key_distinguishes_flow_config(self, context):
        nl, period, env = context
        snapshot = snapshot_netlist_state(nl)
        one = RewardCache.for_context(snapshot, FlowConfig(clock_period=period))
        two = RewardCache.for_context(
            snapshot, FlowConfig(clock_period=period, final_skew_pass=False)
        )
        selection = select_worst_slack(env, 2)
        assert one.key(selection) != two.key(selection)

    def test_fifo_eviction_bounds_entries(self, context):
        nl, period, env = context
        snapshot = snapshot_netlist_state(nl)
        cache = RewardCache.for_context(
            snapshot, FlowConfig(clock_period=period), max_entries=2
        )
        reward = FlowReward(tns=-1.0, wns=-0.5, nve=1, power_total=1.0, num_selected=1)
        for endpoint in env.endpoints[:3]:
            cache.put([endpoint], reward)
        assert len(cache) == 2
        assert cache.get([env.endpoints[0]]) is None  # evicted first-in


class TestRolloutPool:
    def test_sequential_degradation_without_processes(self, context):
        nl, period, env = context
        config = FlowConfig(clock_period=period)
        selections = [select_worst_slack(env, k) for k in (1, 3)]
        with RolloutPool(nl, config, workers=1) as pool:
            assert pool.start_method is None
            rewards = pool.evaluate(selections)
        direct = evaluate_selections(nl, config, selections, workers=1)
        assert rewards == direct

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_pool_reused_across_batches(self, context):
        nl, period, env = context
        config = FlowConfig(clock_period=period)
        batch1 = [select_worst_slack(env, k) for k in (1, 2)]
        batch2 = [select_random(env, 3, rng=7), select_worst_slack(env, 4)]
        with RolloutPool(nl, config, workers=2, start_method="fork") as pool:
            one = pool.evaluate(batch1)
            two = pool.evaluate(batch2)
        assert one == evaluate_selections(nl, config, batch1, workers=1)
        assert two == evaluate_selections(nl, config, batch2, workers=1)

    def test_closed_pool_rejects_evaluate(self, context):
        nl, period, env = context
        pool = RolloutPool(nl, FlowConfig(clock_period=period), workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.evaluate([[]])

    def test_invalid_parameters_raise(self, context):
        nl, period, env = context
        config = FlowConfig(clock_period=period)
        with pytest.raises(ValueError):
            RolloutPool(nl, config, workers=0)
        with pytest.raises(ValueError):
            RolloutPool(nl, config, workers=1, task_timeout=0.0)

    def test_unknown_start_method_degrades_to_sequential(self, context):
        nl, period, env = context
        assert resolve_start_method("not-a-method") is None
        with RolloutPool(
            nl, FlowConfig(clock_period=period), workers=4, start_method="not-a-method"
        ) as pool:
            assert pool.start_method is None
            (reward,) = pool.evaluate([select_worst_slack(env, 2)])
        assert isinstance(reward, FlowReward)


class TestPooledThroughputRegression:
    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_pooled_not_slower_than_sequential(self, context):
        """Guard on the pooled-dispatch regression fixed with batched
        submission: a warmed 2-worker pool must keep up with sequential
        evaluation at smoke scale (it used to run ~1.45x slower because
        tasks were dispatched one at a time).  Single-CPU runners can only
        reach parity, so the allowed factor is loose there and tight when
        real parallelism is available; best-of-3 on both sides absorbs
        scheduler noise."""
        import os
        import time

        nl, period, env = context
        config = FlowConfig(clock_period=period)
        selections = [select_worst_slack(env, k) for k in (1, 2, 3, 4)]
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            cpus = os.cpu_count() or 1
        factor = 1.25 if cpus == 1 else 1.05

        def best_of(run, passes=3):
            best = float("inf")
            for _ in range(passes):
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            return best

        sequential = best_of(
            lambda: evaluate_selections(nl, config, selections, workers=1)
        )
        with RolloutPool(nl, config, workers=2, start_method="fork") as pool:
            pool.evaluate(selections)  # untimed warm-up batch
            pooled = best_of(lambda: pool.evaluate(selections))
        assert pooled <= sequential * factor, (
            f"pooled evaluation regressed: {pooled:.3f}s vs sequential "
            f"{sequential:.3f}s (allowed factor {factor} on {cpus} cpus)"
        )
