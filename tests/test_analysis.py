"""Tests for the endpoint sensitivity analyzer."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    analyze_sensitivity,
    select_clock_sensitive,
)
from repro.timing.clock import ClockModel
from repro.timing.metrics import violating_endpoints
from repro.timing.sta import TimingAnalyzer


class TestAnalyzeSensitivity:
    def test_covers_every_violating_endpoint(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        report = analyze_sensitivity(nl, period)
        assert len(report.entries) == len(violating_endpoints(rep))
        assert report.design == nl.name

    def test_entries_sorted_worst_first(self, small_design):
        nl, period = small_design
        report = analyze_sensitivity(nl, period)
        slacks = [e.slack for e in report.entries]
        assert slacks == sorted(slacks)

    def test_fixabilities_in_unit_interval(self, small_design):
        nl, period = small_design
        for e in analyze_sensitivity(nl, period).entries:
            assert 0.0 <= e.clock_fixability <= 1.0
            assert 0.0 <= e.data_fixability <= 1.0
            assert e.deficit == pytest.approx(-e.slack)

    def test_output_ports_have_zero_clock_fixability(self, small_design):
        nl, period = small_design
        for e in analyze_sensitivity(nl, period).entries:
            if nl.cells[e.endpoint].is_output_port:
                assert e.clock_fixability == 0.0

    def test_rigid_flop_limits_clock_fixability(self, small_design):
        nl, period = small_design
        for e in analyze_sensitivity(nl, period).entries:
            cell = nl.cells[e.endpoint]
            if cell.is_sequential and nl.skew_bounds.get(e.endpoint, 0) == 0.0:
                assert e.clock_fixability == 0.0

    def test_classification_partitions(self, small_design):
        nl, period = small_design
        report = analyze_sensitivity(nl, period)
        counts = report.counts()
        assert sum(counts.values()) == len(report.entries)
        assert set(counts) == {"clock", "data", "both", "stuck"}

    def test_threshold_changes_classes(self, small_design):
        nl, period = small_design
        strict = analyze_sensitivity(nl, period, fix_threshold=0.95)
        loose = analyze_sensitivity(nl, period, fix_threshold=0.05)
        assert strict.counts()["stuck"] >= loose.counts()["stuck"]

    def test_invalid_threshold_raises(self, small_design):
        nl, period = small_design
        with pytest.raises(ValueError):
            analyze_sensitivity(nl, period, fix_threshold=0.0)

    def test_str_renders(self, small_design):
        nl, period = small_design
        text = str(analyze_sensitivity(nl, period))
        assert "sensitivity report" in text
        assert "clockfix" in text


class TestSelectClockSensitive:
    def test_selection_is_violating_and_unique(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        viol = set(int(e) for e in violating_endpoints(rep))
        selection = select_clock_sensitive(nl, period)
        assert len(set(selection)) == len(selection)
        assert set(selection) <= viol

    def test_max_count_respected(self, small_design):
        nl, period = small_design
        assert len(select_clock_sensitive(nl, period, max_count=3)) <= 3

    def test_pure_clock_endpoints_come_first(self, small_design):
        nl, period = small_design
        report = analyze_sensitivity(nl, period)
        pure = {e.endpoint for e in report.entries if e.classification == "clock"}
        selection = select_clock_sensitive(nl, period)
        if pure and len(selection) > len(pure):
            assert set(selection[: len(pure)]) == pure

    def test_usable_as_flow_selection(self, fresh_design):
        from repro.ccd.flow import FlowConfig, restore_netlist_state, run_flow, snapshot_netlist_state

        nl, period = fresh_design
        selection = select_clock_sensitive(nl, period, max_count=8)
        snap = snapshot_netlist_state(nl)
        result = run_flow(nl, FlowConfig(clock_period=period), selection)
        restore_netlist_state(nl, snap)
        assert result.final.tns >= result.begin.tns
