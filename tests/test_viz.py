"""Tests for the ASCII visualization helpers."""

from __future__ import annotations

import numpy as np

from repro.viz.ascii_plots import (
    histogram,
    line_plot,
    scatter,
    slack_profile,
    sparkline,
)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_uniform(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(set(s)) == 1

    def test_monotone_series_monotone_chars(self):
        s = sparkline(list(range(8)))
        assert s[0] == "▁" and s[-1] == "█"

    def test_non_finite_marked(self):
        s = sparkline([1.0, float("nan"), 3.0])
        assert s[1] == "·"

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3 ) == "···"


class TestHistogram:
    def test_counts_sum_preserved(self):
        out = histogram(np.random.default_rng(0).normal(size=100), bins=5)
        total = sum(
            int(line.split(")")[1].split()[0]) for line in out.splitlines()
        )
        assert total == 100

    def test_empty(self):
        assert "(no data)" in histogram([])

    def test_label_included(self):
        assert histogram([1, 2, 3], label="title").startswith("title")


class TestLinePlot:
    def test_contains_series_markers_and_legend(self):
        out = line_plot({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*" in out and "+" in out
        assert "a" in out and "b" in out

    def test_empty(self):
        assert "(no data)" in line_plot({})

    def test_constant_series(self):
        out = line_plot({"flat": [2.0, 2.0]})
        assert "flat" in out

    def test_bounds_in_labels(self):
        out = line_plot({"a": [0.0, 10.0]})
        assert "10.000" in out and "0.000" in out


class TestScatter:
    def test_basic_render(self):
        out = scatter([(0, 0), (1, 1)], width=10, height=5)
        assert "•" in out

    def test_highlight_layer(self):
        out = scatter([(0, 0), (1, 1)], highlight=[(1, 1)], width=10, height=5)
        assert "X" in out

    def test_empty(self):
        assert "(no data)" in scatter([])

    def test_placement_map_runs(self, small_design):
        nl, _ = small_design
        pts = [(c.x, c.y) for c in nl.cells]
        flops = [(c.x, c.y) for c in nl.cells if c.is_sequential]
        out = scatter(pts, highlight=flops, title="placement")
        assert out.startswith("placement")


class TestSlackProfile:
    def test_reports_wns_and_tns(self):
        out = slack_profile([-0.5, -0.1, 0.2, 0.4])
        assert "2/4 violating" in out
        assert "WNS -0.500" in out
        assert "TNS -0.600" in out

    def test_empty(self):
        assert "(no endpoints)" in slack_profile([])

    def test_on_real_design(self, small_design):
        from repro.timing.clock import ClockModel
        from repro.timing.sta import TimingAnalyzer

        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        out = slack_profile(rep.slack)
        assert "violating" in out
