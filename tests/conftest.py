"""Shared fixtures: small placed designs and their timing context."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.generator import quick_design
from repro.netlist.library import get_library
from repro.placement.global_place import PlacementConfig, place_design
from repro.timing.clock import ClockModel
from repro.timing.metrics import choose_clock_period
from repro.timing.sta import TimingAnalyzer


@pytest.fixture(scope="session")
def small_design():
    """A ~400-cell placed design with a period giving ~35% violations.

    Session-scoped and treated as READ-ONLY by tests; anything that mutates
    the netlist must snapshot/restore or use ``fresh_design``.
    """
    netlist = quick_design(name="fixture400", n_cells=400, seed=5)
    place_design(netlist, PlacementConfig(seed=2))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    return netlist, period


@pytest.fixture
def fresh_design():
    """Like ``small_design`` but function-scoped for mutating tests."""
    netlist = quick_design(name="fixture_fresh", n_cells=350, seed=9)
    place_design(netlist, PlacementConfig(seed=3))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    return netlist, period


@pytest.fixture
def tiny_pipeline():
    """A hand-built 2-stage pipeline: in -> g1 -> ff1 -> g2 -> ff2 -> out.

    Small enough to reason about timing by hand in tests.
    """
    lib = get_library("tech7")
    b = NetlistBuilder("tiny", lib)
    a = b.add_input("a")
    x = b.add_input("x")
    g1 = b.add_gate("NAND2", "g1", [a, x])
    ff1 = b.add_flop("ff1", g1, skew_bound=0.2)
    g2 = b.add_gate("INV", "g2", [ff1])
    ff2 = b.add_flop("ff2", g2, skew_bound=0.2)
    g3 = b.add_gate("BUF", "g3", [ff2])
    b.add_output("y", g3)
    netlist = b.build()
    for i, cell in enumerate(netlist.cells):
        cell.x = 10.0 * i
        cell.y = 5.0
    return netlist


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
