"""Tests for the clock model, STA engine, metrics and path tracing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.generator import quick_design
from repro.placement.global_place import PlacementConfig, place_design
from repro.timing.clock import ClockModel
from repro.timing.metrics import (
    choose_clock_period,
    nve,
    summarize,
    tns,
    violating_endpoints,
    wns,
)
from repro.timing.paths import trace_critical_path
from repro.timing.sta import TimingAnalyzer


class TestClockModel:
    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            ClockModel(period=0.0)

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            ClockModel(period=1.0, bounds={0: -0.1})

    def test_set_arrival_within_bounds(self):
        clock = ClockModel(period=1.0, bounds={3: 0.2})
        clock.set_arrival(3, 0.15)
        assert clock.arrival(3) == 0.15
        clock.set_arrival(3, -0.2)
        assert clock.arrival(3) == -0.2

    def test_set_arrival_beyond_bound_raises(self):
        clock = ClockModel(period=1.0, bounds={3: 0.2})
        with pytest.raises(ValueError, match="exceeds"):
            clock.set_arrival(3, 0.25)

    def test_unbounded_flop_cannot_move(self):
        clock = ClockModel(period=1.0)
        with pytest.raises(ValueError):
            clock.set_arrival(7, 0.01)

    def test_adjust_clamps_and_reports(self):
        clock = ClockModel(period=1.0, bounds={1: 0.1})
        applied = clock.adjust_arrival(1, 0.5)
        assert applied == pytest.approx(0.1)
        assert clock.arrival(1) == pytest.approx(0.1)
        applied = clock.adjust_arrival(1, -0.3)
        assert applied == pytest.approx(-0.2)

    def test_copy_is_independent(self):
        clock = ClockModel(period=1.0, bounds={1: 0.1}, arrivals={1: 0.05})
        dup = clock.copy()
        dup.set_arrival(1, 0.0)
        assert clock.arrival(1) == 0.05

    def test_total_adjustment_and_adjustments(self):
        clock = ClockModel(period=1.0, bounds={1: 0.2, 2: 0.2})
        clock.set_arrival(1, 0.1)
        clock.set_arrival(2, -0.05)
        assert clock.total_adjustment() == pytest.approx(0.15)
        assert set(clock.adjustments()) == {1, 2}


class TestStaOnTinyPipeline:
    """Hand-checkable STA behaviour on the 2-stage pipeline fixture."""

    def _analyze(self, netlist, period=0.8, **clock_kw):
        analyzer = TimingAnalyzer(netlist)
        clock = ClockModel.for_netlist(netlist, period)
        for f, v in clock_kw.items():
            clock.set_arrival(netlist.cell_by_name(f).index, v)
        return analyzer, clock, analyzer.analyze(clock)

    def test_three_endpoints_reported(self, tiny_pipeline):
        _, _, rep = self._analyze(tiny_pipeline)
        assert rep.endpoints.size == 3

    def test_slack_is_required_minus_arrival(self, tiny_pipeline):
        _, _, rep = self._analyze(tiny_pipeline)
        np.testing.assert_allclose(rep.slack, rep.required - rep.arrival)

    def test_flop_required_includes_setup(self, tiny_pipeline):
        nl = tiny_pipeline
        _, clock, rep = self._analyze(nl)
        ff1 = nl.cell_by_name("ff1").index
        k = int(np.nonzero(rep.endpoints == ff1)[0][0])
        setup = nl.library.cell_type("DFF").setup_time
        assert rep.required[k] == pytest.approx(clock.period - setup)

    def test_output_port_required_is_period(self, tiny_pipeline):
        nl = tiny_pipeline
        _, clock, rep = self._analyze(nl)
        y = nl.cell_by_name("y").index
        k = int(np.nonzero(rep.endpoints == y)[0][0])
        assert rep.required[k] == pytest.approx(clock.period)

    def test_capture_skew_improves_capture_slack_exactly(self, tiny_pipeline):
        nl = tiny_pipeline
        ff1 = nl.cell_by_name("ff1").index
        _, _, base = self._analyze(nl)
        _, _, skewed = self._analyze(nl, ff1=0.05)
        k = int(np.nonzero(base.endpoints == ff1)[0][0])
        assert skewed.slack[k] - base.slack[k] == pytest.approx(0.05)

    def test_launch_skew_hurts_downstream_exactly(self, tiny_pipeline):
        nl = tiny_pipeline
        ff2 = nl.cell_by_name("ff2").index
        _, _, base = self._analyze(nl)
        _, _, skewed = self._analyze(nl, ff1=0.05)
        k2 = int(np.nonzero(base.endpoints == ff2)[0][0])
        assert base.slack[k2] - skewed.slack[k2] == pytest.approx(0.05)

    def test_longer_period_adds_slack_everywhere(self, tiny_pipeline):
        _, _, rep1 = self._analyze(tiny_pipeline, period=0.8)
        _, _, rep2 = self._analyze(tiny_pipeline, period=0.9)
        np.testing.assert_allclose(rep2.slack - rep1.slack, 0.1, atol=1e-12)

    def test_margins_dont_change_true_slack(self, tiny_pipeline):
        nl = tiny_pipeline
        ff1 = nl.cell_by_name("ff1").index
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, 0.8)
        plain = analyzer.analyze(clock)
        margined = analyzer.analyze(clock, margins={ff1: 0.3})
        np.testing.assert_allclose(plain.slack, margined.slack)
        k = int(np.nonzero(margined.endpoints == ff1)[0][0])
        assert margined.slack_with_margins[k] == pytest.approx(
            margined.slack[k] - 0.3
        )

    def test_margined_backward_view_differs(self, tiny_pipeline):
        nl = tiny_pipeline
        ff1 = nl.cell_by_name("ff1").index
        g1 = nl.cell_by_name("g1").index
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, 0.8)
        rep = analyzer.analyze(clock, margins={ff1: 0.3})
        # g1 feeds only ff1, so its margined worst slack drops by the margin.
        assert rep.cell_worst_slack_margined[g1] == pytest.approx(
            rep.cell_worst_slack[g1] - 0.3
        )

    def test_endpoint_slack_lookup(self, tiny_pipeline):
        nl = tiny_pipeline
        _, _, rep = self._analyze(nl)
        ff1 = nl.cell_by_name("ff1").index
        assert rep.endpoint_slack(ff1) == pytest.approx(
            float(rep.slack[rep.endpoints == ff1][0])
        )
        with pytest.raises(KeyError):
            rep.endpoint_slack(nl.cell_by_name("g1").index)

    def test_upsizing_driver_one_step_speeds_up_path(self, tiny_pipeline):
        """One upsize step on a loaded driver helps; max upsizing may not
        (the larger input cap reflects onto the upstream stage) — which is
        exactly why the data-path optimizer verifies each move with STA."""
        nl = tiny_pipeline
        g2 = nl.cell_by_name("g2")
        ff2 = nl.cell_by_name("ff2").index
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, 0.8)
        base = analyzer.analyze(clock).endpoint_slack(ff2)
        nl.resize_cell(g2.index, 1)
        analyzer.invalidate()
        upsized = analyzer.analyze(clock).endpoint_slack(ff2)
        assert upsized > base


class TestStaOnGenerated:
    def test_arrivals_monotone_along_critical_path(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        worst_ep = int(rep.endpoints[np.argmin(rep.slack)])
        path = trace_critical_path(analyzer.compiled, rep, worst_ep)
        arr = [rep.cell_arrival[c] for c in path.cells[:-1]]  # exclude endpoint
        assert all(a <= b + 1e-12 for a, b in zip(arr, arr[1:]))

    def test_worst_slack_through_consistent(self, small_design):
        """Cells on the worst path carry (at most) the worst endpoint slack."""
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        worst_ep = int(rep.endpoints[np.argmin(rep.slack)])
        worst_slack = rep.slack.min()
        path = trace_critical_path(analyzer.compiled, rep, worst_ep)
        for c in path.cells[:-1]:
            assert rep.cell_worst_slack[c] <= worst_slack + 1e-6

    def test_invalidate_reflects_mutation(self, fresh_design):
        nl, period = fresh_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        before = analyzer.analyze(clock)
        # Upsize every endpoint driver: timing must change.
        for e in nl.endpoints()[:10]:
            for d in nl.fanin_cells(e):
                cell = nl.cells[d]
                if not cell.cell_type.is_port and cell.sizing_headroom > 0:
                    nl.resize_cell(d, cell.size_index + 1)
        analyzer.invalidate()
        after = analyzer.analyze(clock)
        assert not np.allclose(before.slack, after.slack)

    def test_cycle_detection_guard(self):
        """Compile raises on a netlist with an (invalid) comb cycle."""
        from repro.netlist.core import Netlist
        from repro.netlist.library import get_library

        lib = get_library("tech7")
        nl = Netlist("loop", lib)
        g1 = nl.add_cell("g1", lib.cell_type("INV"))
        g2 = nl.add_cell("g2", lib.cell_type("INV"))
        y = nl.add_cell("y", lib.cell_type("OUTPORT"))
        nl.add_net("n1", g1.index, [(g2.index, 0)])
        nl.add_net("n2", g2.index, [(g1.index, 0), (y.index, 0)])
        with pytest.raises(ValueError, match="cycle"):
            TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, 1.0))


class TestMetrics:
    def test_tns_only_counts_negative(self):
        slack = np.array([0.5, -0.2, -0.3, 0.1])
        assert tns(slack) == pytest.approx(-0.5)

    def test_wns_clamped_at_zero(self):
        assert wns(np.array([0.5, 0.2])) == 0.0
        assert wns(np.array([0.5, -0.4])) == pytest.approx(-0.4)

    def test_nve_counts(self):
        assert nve(np.array([-0.1, 0.0, -1e-12, 0.2])) == 1

    def test_empty_arrays(self):
        assert tns(np.array([])) == 0.0
        assert wns(np.array([])) == 0.0
        assert nve(np.array([])) == 0

    def test_summarize(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        s = summarize(rep)
        assert s.tns == pytest.approx(tns(rep.slack))
        assert s.wns == pytest.approx(wns(rep.slack))
        assert s.nve == nve(rep.slack)
        assert "TNS" in str(s)

    def test_violating_endpoints_sorted_worst_first(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        cells = violating_endpoints(rep)
        slacks = [rep.endpoint_slack(int(c)) for c in cells]
        assert slacks == sorted(slacks)
        assert all(s < 0 for s in slacks)

    def test_choose_clock_period_hits_fraction(self, small_design):
        nl, _ = small_design
        analyzer = TimingAnalyzer(nl)
        nominal = nl.library.default_clock_period
        rep = analyzer.analyze(ClockModel.for_netlist(nl, nominal))
        for target in (0.2, 0.4):
            period = choose_clock_period(rep, nominal, target)
            rep2 = analyzer.analyze(ClockModel.for_netlist(nl, period))
            frac = nve(rep2.slack) / rep2.slack.size
            assert abs(frac - target) < 0.08

    def test_choose_clock_period_invalid_fraction(self, small_design):
        nl, _ = small_design
        rep = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, nl.library.default_clock_period)
        )
        with pytest.raises(ValueError):
            choose_clock_period(rep, 1.0, 0.0)


class TestPaths:
    def test_path_starts_at_launch_point(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        for e in rep.endpoints[:10]:
            path = trace_critical_path(analyzer.compiled, rep, int(e))
            first = nl.cells[path.cells[0]]
            assert first.is_startpoint
            assert path.cells[-1] == int(e)

    def test_non_endpoint_raises(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        comb = next(
            c.index for c in nl.cells if not c.is_endpoint and not c.is_startpoint
        )
        with pytest.raises(KeyError):
            trace_critical_path(analyzer.compiled, rep, comb)

    def test_str_and_depth(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        path = trace_critical_path(analyzer.compiled, rep, int(rep.endpoints[0]))
        assert path.depth == len(path.cells)
        assert "Path(" in str(path)


def _cone_startpoints(netlist, endpoint):
    """Startpoints feeding the fan-in cone of ``endpoint``."""
    seen = set()
    starts = set()
    frontier = list(netlist.fanin_cells(endpoint))
    while frontier:
        v = frontier.pop()
        if v in seen:
            continue
        seen.add(v)
        if netlist.cells[v].is_startpoint:
            starts.add(v)
            continue
        frontier.extend(netlist.fanin_cells(v))
    return starts


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 500),
    skew=st.floats(-0.05, 0.05),
)
def test_property_skew_shift_is_exact(seed, skew):
    """Moving one bounded capture flop by δ changes its slack by exactly δ —
    unless the flop launches into its own fan-in cone (a feedback register),
    where capture and launch shifts cancel; such flops are excluded."""
    nl = quick_design(n_cells=250, seed=seed)
    place_design(nl, PlacementConfig(seed=seed))
    analyzer = TimingAnalyzer(nl)
    period = nl.library.default_clock_period
    clock = ClockModel.for_netlist(nl, period)
    base = analyzer.analyze(clock)
    flops = [
        f
        for f in nl.sequential_cells()
        if clock.bound(f) >= 0.05 and f not in _cone_startpoints(nl, f)
    ]
    if not flops:
        return
    flop = flops[0]
    clock.set_arrival(flop, skew)
    after = analyzer.analyze(clock)
    assert after.endpoint_slack(flop) - base.endpoint_slack(flop) == pytest.approx(
        skew, abs=1e-9
    )


class TestHoldAnalysis:
    def test_hold_fields_absent_by_default(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(ClockModel.for_netlist(nl, period))
        assert rep.hold_slack is None
        assert rep.cell_min_arrival is None

    def test_hold_fields_present_when_requested(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, period), include_hold=True
        )
        assert rep.hold_slack is not None
        assert rep.hold_slack.shape == rep.slack.shape
        assert rep.cell_min_arrival is not None

    def test_min_arrival_never_exceeds_max(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, period), include_hold=True
        )
        assert np.all(rep.cell_min_arrival <= rep.cell_arrival + 1e-9)

    def test_ports_have_infinite_hold_slack(self, small_design):
        nl, period = small_design
        rep = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, period), include_hold=True
        )
        for k, e in enumerate(rep.endpoints):
            if not nl.cells[int(e)].is_sequential:
                assert rep.hold_slack[k] == np.inf

    def test_capture_skew_erodes_hold_exactly(self, tiny_pipeline):
        nl = tiny_pipeline
        ff2 = nl.cell_by_name("ff2").index
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, 0.8)
        base = analyzer.analyze(clock, include_hold=True)
        k = int(np.nonzero(base.endpoints == ff2)[0][0])
        clock.set_arrival(ff2, 0.05)
        after = analyzer.analyze(clock, include_hold=True)
        assert base.hold_slack[k] - after.hold_slack[k] == pytest.approx(0.05)

    def test_hold_slack_positive_on_tiny_pipeline(self, tiny_pipeline):
        """Zero-skew short paths with clk-to-q > hold time never race."""
        nl = tiny_pipeline
        rep = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, 0.8), include_hold=True
        )
        flop_holds = [
            rep.hold_slack[k]
            for k, e in enumerate(rep.endpoints)
            if nl.cells[int(e)].is_sequential
        ]
        assert all(h > 0 for h in flop_holds)

    def test_respect_hold_guard_limits_skew(self, fresh_design):
        """The hold-aware engine never leaves a flop with negative hold."""
        from repro.ccd.useful_skew import UsefulSkewConfig, optimize_useful_skew

        nl, period = fresh_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        optimize_useful_skew(
            analyzer, clock, config=UsefulSkewConfig(respect_hold=True)
        )
        rep = analyzer.analyze(clock, include_hold=True)
        base = TimingAnalyzer(nl).analyze(
            ClockModel.for_netlist(nl, period), include_hold=True
        )
        # Guarded skew must not create hold violations on flops whose hold
        # slack was healthy at zero skew.
        for k, e in enumerate(rep.endpoints):
            if not nl.cells[int(e)].is_sequential:
                continue
            if base.hold_slack[k] > 1e-9:
                assert rep.hold_slack[k] >= -1e-6


class TestMultiCorner:
    def test_default_corners_available(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        assert set(analyzer.corners) == {"typ", "slow", "fast"}

    def test_unknown_corner_raises(self, small_design):
        nl, period = small_design
        with pytest.raises(KeyError, match="unknown corner"):
            TimingAnalyzer(nl).analyze(
                ClockModel.for_netlist(nl, period), corner="cryogenic"
            )

    def test_invalid_derate_raises(self, small_design):
        from repro.timing.sta import compile_timing

        nl, _ = small_design
        with pytest.raises(ValueError):
            compile_timing(nl, derate=0.0)

    def test_slow_corner_worse_slack(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        typ = analyzer.analyze(clock)
        slow = analyzer.analyze(clock, corner="slow")
        fast = analyzer.analyze(clock, corner="fast")
        assert slow.slack.min() < typ.slack.min()
        assert fast.slack.min() > typ.slack.min()
        assert np.all(slow.arrival >= typ.arrival - 1e-12)
        assert np.all(fast.arrival <= typ.arrival + 1e-12)

    def test_derate_scales_arrival_exactly(self, small_design):
        """Linear delay model: arrivals scale exactly with the derate."""
        nl, period = small_design
        analyzer = TimingAnalyzer(nl, corners={"typ": 1.0, "x2": 2.0})
        clock = ClockModel.for_netlist(nl, period)
        typ = analyzer.analyze(clock)
        doubled = analyzer.analyze(clock, corner="x2")
        np.testing.assert_allclose(doubled.arrival, 2.0 * typ.arrival, rtol=1e-9)

    def test_notify_resize_updates_all_corners(self, fresh_design):
        nl, period = fresh_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        analyzer.analyze(clock)
        analyzer.analyze(clock, corner="slow")  # cache both corners
        cell = next(
            c for c in nl.cells if not c.cell_type.is_port and c.sizing_headroom > 0
        )
        before_slow = analyzer.analyze(clock, corner="slow").slack.copy()
        nl.resize_cell(cell.index, cell.size_index + 1)
        analyzer.notify_resize(cell.index)
        after_slow = analyzer.analyze(clock, corner="slow").slack
        assert not np.allclose(before_slow, after_slow)
        # The incremental update must equal a fresh compile.
        fresh = TimingAnalyzer(nl).analyze(clock, corner="slow").slack
        np.testing.assert_allclose(after_slow, fresh, atol=1e-12)

    def test_hold_at_fast_corner(self, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        clock = ClockModel.for_netlist(nl, period)
        typ = analyzer.analyze(clock, include_hold=True)
        fast = analyzer.analyze(clock, include_hold=True, corner="fast")
        flops = [
            k for k, e in enumerate(typ.endpoints) if nl.cells[int(e)].is_sequential
        ]
        # Fast corner = earlier min arrivals = tighter hold.
        for k in flops[:10]:
            assert fast.hold_slack[k] <= typ.hold_slack[k] + 1e-12
