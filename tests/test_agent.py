"""Tests for the selection environment, policy, baselines, REINFORCE trainer
and transfer learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agent.baselines import (
    select_greedy_overlap,
    select_none,
    select_random,
    select_worst_slack,
)
from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy, _masked_probabilities
from repro.agent.reinforce import TrainConfig, _RunningNorm, train_rlccd
from repro.agent.transfer import (
    load_pretrained_epgnn,
    save_pretrained_epgnn,
    transfer_epgnn,
)
from repro.ccd.flow import FlowConfig
from repro.features.table1 import NUM_FEATURES
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer


@pytest.fixture
def env(small_design):
    nl, period = small_design
    return EndpointSelectionEnv(nl, period, rho=0.3)


class TestEnv:
    def test_endpoints_are_violating_and_sorted(self, env, small_design):
        nl, period = small_design
        analyzer = TimingAnalyzer(nl)
        rep = analyzer.analyze(ClockModel.for_netlist(nl, period))
        slacks = [rep.endpoint_slack(e) for e in env.endpoints]
        assert all(s < 0 for s in slacks)
        assert slacks == sorted(slacks)

    def test_no_violations_raises(self, small_design):
        nl, period = small_design
        with pytest.raises(ValueError, match="no violating endpoints"):
            EndpointSelectionEnv(nl, period * 10)

    def test_bad_rho_raises(self, small_design):
        nl, period = small_design
        with pytest.raises(ValueError):
            EndpointSelectionEnv(nl, period, rho=2.0)

    def test_reset_clears_state(self, env):
        env.reset()
        env.step(0)
        state = env.reset()
        assert state.valid.all()
        assert state.selected == []
        assert state.masked == set()

    def test_step_marks_selected_and_masks(self, env):
        state = env.reset()
        state = env.step(0)
        assert not state.valid[0]
        assert state.selected == [0]
        for p in state.masked:
            assert not state.valid[p]

    def test_step_invalid_position_raises(self, env):
        env.reset()
        env.step(0)
        with pytest.raises(ValueError):
            env.step(0)
        with pytest.raises(IndexError):
            env.step(10**6)

    def test_step_before_reset_raises(self, small_design):
        nl, period = small_design
        fresh = EndpointSelectionEnv(nl, period)
        with pytest.raises(RuntimeError):
            fresh.step(0)
        with pytest.raises(RuntimeError):
            fresh.features()

    def test_features_reflect_selection(self, env):
        env.reset()
        before = env.features()[:, 0].sum()
        env.step(0)
        after = env.features()[:, 0].sum()
        assert before == 0
        assert after >= 1

    def test_selected_cells_in_selection_order(self, env):
        state = env.reset()
        picks = []
        while not state.done and len(picks) < 3:
            pos = int(np.nonzero(state.valid)[0][-1])  # pick last valid
            picks.append(env.endpoints[pos])
            state = env.step(pos)
        assert env.selected_cells() == picks

    def test_episode_terminates(self, env):
        state = env.reset()
        steps = 0
        while not state.done:
            pos = int(np.nonzero(state.valid)[0][0])
            state = env.step(pos)
            steps += 1
            assert steps <= env.num_endpoints
        assert len(state.selected) + len(state.masked) == env.num_endpoints


class TestPolicy:
    def test_masked_probabilities_helper(self, rng):
        scores = rng.normal(size=6)
        valid = np.array([1, 0, 1, 1, 0, 1], bool)
        p = _masked_probabilities(scores, valid)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p[~valid] == 0.0)

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            _masked_probabilities(np.zeros(3), np.zeros(3, bool))

    def test_single_valid_endpoint_gets_full_mass(self, rng):
        scores = rng.normal(size=5)
        valid = np.array([0, 0, 1, 0, 0], bool)
        p = _masked_probabilities(scores, valid)
        assert p[2] == pytest.approx(1.0)
        assert np.all(p[~valid] == 0.0)
        assert np.all(np.isfinite(p))

    def test_extreme_logits_no_nans(self):
        # The -inf mask shift must survive huge positive/negative scores
        # without overflow (exp of +1e4) or NaNs (inf - inf).
        scores = np.array([1e4, -1e4, 5e3, 0.0])
        valid = np.array([1, 1, 0, 1], bool)
        p = _masked_probabilities(scores, valid)
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)
        assert p[0] == pytest.approx(1.0)
        assert p[2] == 0.0

    def test_extreme_negative_logits_single_survivor(self):
        scores = np.full(4, -1e308)
        valid = np.array([0, 1, 0, 0], bool)
        p = _masked_probabilities(scores, valid)
        assert np.all(np.isfinite(p))
        assert p[1] == pytest.approx(1.0)

    def test_rollout_completes(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1)
        assert len(traj) >= 1
        assert len(traj.actions) == len(traj.log_probs) == len(traj.action_cells)
        assert env.state.done

    def test_rollout_actions_unique(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1)
        assert len(set(traj.actions)) == len(traj.actions)

    def test_rollout_respects_max_steps(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1, max_steps=2)
        assert len(traj) <= 2

    def test_greedy_rollout_deterministic(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        a = policy.rollout(env, rng=1, greedy=True)
        b = policy.rollout(env, rng=99, greedy=True)
        assert a.actions == b.actions

    def test_total_log_prob_differentiable(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1)
        loss = traj.total_log_prob() * -1.0
        loss.backward()
        grads = [p.grad for p in policy.parameters() if p.grad is not None]
        assert grads, "no gradients flowed"
        total = sum(float(np.abs(g).sum()) for g in grads)
        assert total > 0

    def test_empty_trajectory_log_prob_raises(self):
        from repro.agent.policy import Trajectory

        with pytest.raises(ValueError):
            Trajectory().total_log_prob()

    def test_probabilities_recorded(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1)
        for p in traj.probabilities:
            assert p.sum() == pytest.approx(1.0)


class TestBaselines:
    def test_select_none(self, env):
        assert select_none(env) == []

    def test_worst_slack_prefix(self, env):
        sel = select_worst_slack(env, 3)
        assert sel == env.endpoints[:3]
        with pytest.raises(ValueError):
            select_worst_slack(env, -1)

    def test_random_selection(self, env):
        sel = select_random(env, 5, rng=0)
        assert len(sel) == min(5, env.num_endpoints)
        assert len(set(sel)) == len(sel)
        assert select_random(env, 5, rng=0) == sel  # deterministic per seed
        with pytest.raises(ValueError):
            select_random(env, -2)

    def test_random_k_larger_than_pool(self, env):
        sel = select_random(env, 10**6, rng=0)
        assert len(sel) == env.num_endpoints

    def test_greedy_overlap_terminates_and_valid(self, env):
        sel = select_greedy_overlap(env)
        assert len(sel) >= 1
        assert len(set(sel)) == len(sel)
        # First pick must be the worst endpoint (canonical order head).
        assert sel[0] == env.endpoints[0]


class TestRunningNorm:
    def test_single_value_unit_std(self):
        norm = _RunningNorm()
        norm.update(5.0)
        assert norm.std == 1.0
        assert norm.advantage(5.0) == 0.0

    def test_mean_and_std(self):
        norm = _RunningNorm()
        for v in (1.0, 2.0, 3.0):
            norm.update(v)
        assert norm.mean == pytest.approx(2.0)
        assert norm.std == pytest.approx(1.0)


class TestTrainer:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainConfig(max_episodes=0)
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0.0)

    def test_training_runs_and_restores(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        sizes_before = [c.size_index for c in nl.cells]
        n_before = nl.num_cells
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            FlowConfig(clock_period=period),
            TrainConfig(max_episodes=3, plateau_patience=5, seed=0),
        )
        assert result.episodes_run == 3
        assert len(result.history) == 3
        assert result.best_tns >= max(r.tns for r in result.history) - 1e-12
        assert result.best_selection
        # Trainer must leave the netlist in its original state.
        assert nl.num_cells == n_before
        assert [c.size_index for c in nl.cells] == sizes_before

    def test_plateau_stops_early(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            FlowConfig(clock_period=period),
            TrainConfig(max_episodes=30, plateau_patience=2, seed=0),
        )
        if result.converged:
            assert result.episodes_run < 30

    def test_curves_shapes(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            FlowConfig(clock_period=period),
            TrainConfig(max_episodes=3, plateau_patience=9, seed=0),
        )
        assert result.tns_curve.shape == (3,)
        best = result.best_so_far_curve
        assert np.all(np.diff(best) >= 0)


class TestTransfer:
    def test_transfer_copies_epgnn_only(self):
        a = RLCCDPolicy(NUM_FEATURES, rng=0)
        b = RLCCDPolicy(NUM_FEATURES, rng=1)
        dec_before = b.decoder.w1.data.copy()
        transfer_epgnn(a, b)
        np.testing.assert_array_equal(
            a.epgnn.fc.weight.data, b.epgnn.fc.weight.data
        )
        np.testing.assert_array_equal(b.decoder.w1.data, dec_before)

    def test_save_load_roundtrip(self, tmp_path):
        a = RLCCDPolicy(NUM_FEATURES, rng=0)
        path = str(tmp_path / "epgnn.npz")
        save_pretrained_epgnn(a, path)
        b = RLCCDPolicy(NUM_FEATURES, rng=5)
        load_pretrained_epgnn(b, path)
        np.testing.assert_array_equal(
            a.epgnn.fc.weight.data, b.epgnn.fc.weight.data
        )


class TestEntropyRegularization:
    def test_rollout_records_entropies(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1, with_entropy=True)
        assert len(traj.entropies) == len(traj)
        total = traj.total_entropy()
        assert total.item() >= 0.0

    def test_entropy_absent_without_flag(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1)
        assert traj.entropies == []
        with pytest.raises(ValueError):
            traj.total_entropy()

    def test_entropy_gradients_flow(self, env):
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        traj = policy.rollout(env, rng=1, with_entropy=True, max_steps=2)
        (traj.total_entropy() * -0.1).backward()
        grads = [p.grad for p in policy.parameters() if p.grad is not None]
        assert grads

    def test_trainer_with_entropy_coefficient(self, small_design):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        result = train_rlccd(
            policy,
            env,
            FlowConfig(clock_period=period),
            TrainConfig(max_episodes=2, entropy_coefficient=0.01, seed=0),
        )
        assert result.episodes_run == 2

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(entropy_coefficient=-0.1)
