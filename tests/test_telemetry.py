"""Tests for RL training telemetry and the v2 run-record schema."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainConfig, train_rlccd
from repro.ccd.flow import FlowConfig
from repro.features.table1 import NUM_FEATURES
from repro.gnn.epgnn import EPGNN
from repro.netlist.generator import quick_design
from repro.nn.attention import logit_stats
from repro.obs import telemetry
from repro.placement.global_place import place_design

CLOCK_PERIOD = 0.4


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate every test from global recorder/trace state."""
    was_enabled = obs.enabled()
    prev_trace = obs.trace_path()
    obs.reset()
    yield
    obs.set_trace_path(prev_trace)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


def _train_design(seed: int = 3, n_cells: int = 220):
    netlist = quick_design(n_cells=n_cells, seed=seed)
    place_design(netlist)
    return netlist


def _run_training(trace_path: str, episodes: int = 3, seed: int = 0):
    obs.set_trace_path(trace_path)
    netlist = _train_design()
    env = EndpointSelectionEnv(netlist, CLOCK_PERIOD)
    policy = RLCCDPolicy(NUM_FEATURES, rng=seed)
    return train_rlccd(
        policy,
        env,
        FlowConfig(clock_period=CLOCK_PERIOD),
        TrainConfig(max_episodes=episodes, seed=seed),
    )


class TestEpisodeTelemetry:
    def test_for_rollout_none_when_disabled(self):
        obs.disable()
        assert telemetry.for_rollout() is None

    def test_for_rollout_collector_when_enabled(self):
        obs.enable()
        collector = telemetry.for_rollout()
        assert isinstance(collector, telemetry.EpisodeTelemetry)

    def test_summary_aggregates_steps(self):
        collector = telemetry.EpisodeTelemetry()
        collector.record_step(
            endpoint=7, step=0, masked_after=2, entropy=1.5,
            logit_min=-0.5, logit_max=0.5, top_prob=0.4, concentration=0.3,
        )
        collector.record_step(
            endpoint=9, step=1, masked_after=5, entropy=0.5,
            logit_min=-1.0, logit_max=0.2, top_prob=0.8, concentration=0.7,
        )
        summary = collector.summary()
        assert summary["num_steps"] == 2
        assert summary["entropy_mean"] == pytest.approx(1.0)
        assert summary["entropy_first"] == pytest.approx(1.5)
        assert summary["entropy_last"] == pytest.approx(0.5)
        assert summary["logit_min"] == pytest.approx(-1.0)
        assert summary["logit_max"] == pytest.approx(0.5)
        assert summary["masked_total"] == 5

    def test_empty_summary_is_safe(self):
        summary = telemetry.EpisodeTelemetry().summary()
        assert summary["num_steps"] == 0
        assert summary["entropy_mean"] is None

    def test_episode_payload_nests_everything(self):
        collector = telemetry.EpisodeTelemetry()
        collector.record_step(
            endpoint=3, step=0, masked_after=1, entropy=1.0,
            logit_min=0.0, logit_max=1.0, top_prob=0.5, concentration=0.4,
        )
        payload = telemetry.episode_payload(
            {"episode": 0, "tns": -1.0},
            collector,
            baseline={"mean": -1.0, "std": 1.0, "count": 1},
            selection_frequency={12: 2, 3: 1},
            gnn_gamma=[0.5, 0.6],
        )
        assert payload["episode"] == 0
        tele = payload["telemetry"]
        assert tele["steps"][0]["endpoint"] == 3
        assert tele["baseline"]["count"] == 1
        # Keys are stringified deterministically.
        assert tele["selection_frequency"] == {"3": 1, "12": 2}
        assert tele["gnn_gamma"] == [0.5, 0.6]

    def test_episode_payload_without_collector(self):
        payload = telemetry.episode_payload({"episode": 1}, None)
        assert payload["telemetry"] is None


class TestLogitStats:
    def test_stats_over_valid_positions_only(self):
        scores = np.array([0.0, 5.0, -3.0, 1.0])
        valid = np.array([True, False, True, True])
        stats = logit_stats(scores, valid)
        assert stats["logit_min"] == pytest.approx(-3.0)
        assert stats["logit_max"] == pytest.approx(1.0)  # 5.0 is masked
        assert 0.0 < stats["top_prob"] <= 1.0
        assert 0.0 < stats["concentration"] <= 1.0

    def test_uniform_concentration_is_one_over_k(self):
        scores = np.zeros(4)
        valid = np.ones(4, dtype=bool)
        stats = logit_stats(scores, valid)
        assert stats["concentration"] == pytest.approx(0.25)
        assert stats["top_prob"] == pytest.approx(0.25)

    def test_requires_a_valid_position(self):
        with pytest.raises(ValueError):
            logit_stats(np.zeros(3), np.zeros(3, dtype=bool))

    def test_accepts_precomputed_probabilities(self):
        scores = np.array([1.0, 2.0, 3.0])
        valid = np.ones(3, dtype=bool)
        exp = np.exp(scores - scores.max())
        probs = exp / exp.sum()
        direct = logit_stats(scores, valid)
        reused = logit_stats(scores, valid, probs)
        assert direct == pytest.approx(reused)


class TestGammaValues:
    def test_one_gamma_per_layer_in_open_interval(self):
        gnn = EPGNN(NUM_FEATURES, rng=0)
        gammas = gnn.gamma_values()
        assert len(gammas) == len(gnn.layers)
        for gamma in gammas:
            assert 0.0 < gamma < 1.0


class TestTelemetryRecords:
    def test_episode_records_carry_full_telemetry(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _run_training(path)
        episodes = [r for r in obs.read_records(path) if r["kind"] == "episode"]
        assert episodes
        for record in episodes:
            tele = record["telemetry"]
            assert tele["num_steps"] == record["num_selected"]
            assert len(tele["steps"]) == tele["num_steps"]
            assert tele["grad_norm_postclip"] <= tele["grad_norm_preclip"] + 1e-12
            assert tele["baseline"]["count"] == record["episode"] + 1
            assert tele["gnn_gamma"] and all(0 < g < 1 for g in tele["gnn_gamma"])
            for step in tele["steps"]:
                assert step["logit_min"] <= step["logit_max"]
                assert 0.0 <= step["top_prob"] <= 1.0
                assert step["entropy"] >= 0.0
        # Selection frequency accumulates across episodes.
        last = episodes[-1]["telemetry"]["selection_frequency"]
        assert sum(last.values()) == sum(r["num_selected"] for r in episodes)

    def test_train_summary_record_emitted(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        result = _run_training(path)
        (train,) = [r for r in obs.read_records(path) if r["kind"] == "train"]
        assert train["episodes_run"] == result.episodes_run
        assert train["best_tns"] == pytest.approx(result.best_tns)
        assert train["best_selection"] == result.best_selection

    def test_rollout_without_obs_collects_nothing(self):
        obs.disable()
        netlist = _train_design()
        env = EndpointSelectionEnv(netlist, CLOCK_PERIOD)
        policy = RLCCDPolicy(NUM_FEATURES, rng=0)
        trajectory = policy.rollout(env, rng=0, max_steps=3)
        assert trajectory.telemetry is None

    def test_determinism_fixed_seed_identical_episode_records(self, tmp_path):
        """Acceptance: same seed → byte-identical episode records (they
        contain no wall-clock fields at all, so no stripping is needed)."""
        lines = []
        for name in ("a.jsonl", "b.jsonl"):
            path = str(tmp_path / name)
            _run_training(path, episodes=3, seed=0)
            with open(path) as handle:
                lines.append(
                    [
                        line
                        for line in handle
                        if json.loads(line)["kind"] == "episode"
                    ]
                )
        assert lines[0] == lines[1]
        assert lines[0]  # the comparison was not vacuous


class TestSchemaV2:
    def test_emitted_records_are_v2(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.set_trace_path(path)
        obs.emit("episode", {"episode": 0})
        (record,) = obs.read_records(path)
        assert record["schema"] == "repro-obs/v2"

    def test_v1_records_upgrade_in_memory(self, tmp_path):
        path = str(tmp_path / "v1.jsonl")
        v1 = {
            "schema": "repro-obs/v1",
            "kind": "episode",
            "git_sha": "abc",
            "episode": 0,
            "tns": -1.0,
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(v1) + "\n")
        (record,) = obs.read_records(path)
        assert record["schema"] == "repro-obs/v2"
        assert record["telemetry"] is None  # explicit "predates telemetry"
        assert record["tns"] == -1.0

    def test_mixed_v1_v2_file_reads(self, tmp_path):
        path = str(tmp_path / "mixed.jsonl")
        with open(path, "w") as handle:
            handle.write(
                json.dumps({"schema": "repro-obs/v1", "kind": "flow", "x": 1})
                + "\n"
            )
            handle.write(
                json.dumps({"schema": "repro-obs/v2", "kind": "flow", "x": 2})
                + "\n"
            )
        records = obs.read_records(path)
        assert [r["x"] for r in records] == [1, 2]
        assert all(r["schema"] == obs.SCHEMA for r in records)

    def test_upgrade_preserves_raw_with_flag_off(self, tmp_path):
        path = str(tmp_path / "v1.jsonl")
        with open(path, "w") as handle:
            handle.write(
                json.dumps({"schema": "repro-obs/v1", "kind": "flow"}) + "\n"
            )
        (record,) = obs.read_records(path, upgrade=False)
        assert record["schema"] == "repro-obs/v1"

    def test_unknown_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"schema": "repro-obs/v99"}) + "\n")
        with pytest.raises(ValueError, match="v99"):
            obs.read_records(path)

    def test_v1_flow_upgrade_does_not_add_telemetry(self):
        upgraded = obs.upgrade_record({"schema": "repro-obs/v1", "kind": "flow"})
        assert upgraded["schema"] == obs.SCHEMA
        assert "telemetry" not in upgraded
