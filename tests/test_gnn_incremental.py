"""Equivalence and guard tests for the incremental EP-GNN encoder.

The incremental engine (:mod:`repro.gnn.incremental`) must be invisible:
same embeddings (≤ 1e-9 per step), same sampled trajectories, same
parameter gradients, and byte-identical training histories as the full
re-encode path.  Run under ``REPRO_GNN_CHECK=1`` (the ``gnn-differential``
CI job does) every incremental encode is *additionally* shadow-verified
inside ``encode()`` itself; the assertions here stay on so the suite is
also meaningful without the env var.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainConfig, train_rlccd
from repro.ccd.flow import FlowConfig
from repro.features.table1 import NUM_FEATURES
from repro.gnn import incremental as gi
from repro.nn.tensor import Tensor

ATOL = 1e-9


@pytest.fixture
def env(small_design):
    nl, period = small_design
    return EndpointSelectionEnv(nl, period, rho=0.3)


@pytest.fixture
def policy():
    return RLCCDPolicy(NUM_FEATURES, rng=11)


def _episode_features(env, rng, max_steps=None):
    """Feature matrices + actions of one random valid episode."""
    state = env.reset()
    steps = [env.features()]
    while not state.done and (max_steps is None or len(steps) <= max_steps):
        action = int(rng.choice(np.nonzero(state.valid)[0]))
        state = env.step(action)
        steps.append(env.features())
    return steps


class TestSwitches:
    def test_set_incremental_roundtrip(self):
        previous = gi.set_incremental(False)
        try:
            assert gi.incremental_enabled() is False
            gi.set_incremental(True)
            assert gi.incremental_enabled() is True
        finally:
            gi.set_incremental(previous)

    def test_set_check_roundtrip(self):
        previous = gi.set_check(True)
        try:
            assert gi.check_enabled() is True
        finally:
            gi.set_check(previous)

    def test_assert_embeddings_equal_raises_on_drift(self):
        a = Tensor(np.zeros((3, 4)))
        b = Tensor(np.full((3, 4), 1e-6))
        with pytest.raises(RuntimeError, match="drift"):
            gi.assert_embeddings_equal(a, b)
        gi.assert_embeddings_equal(a, Tensor(np.zeros((3, 4))))

    def test_assert_embeddings_equal_raises_on_shape(self):
        with pytest.raises(RuntimeError, match="shape"):
            gi.assert_embeddings_equal(
                Tensor(np.zeros((3, 4))), Tensor(np.zeros((2, 4)))
            )


class TestEncoderSession:
    def test_per_step_embeddings_match_full(self, env, policy, rng):
        """Every step of an episode: incremental ≤ 1e-9 from a full encode."""
        session = policy.encoder_session(env)
        session.begin_episode()
        for features in _episode_features(env, rng, max_steps=8):
            incremental = session.encode(features)
            full = policy.epgnn(features, env.graph, env.cones)
            assert incremental.shape == full.shape
            np.testing.assert_allclose(
                incremental.data, full.data, atol=ATOL, rtol=0.0
            )

    def test_first_encode_is_full_and_bitwise(self, env, policy):
        session = policy.encoder_session(env)
        session.begin_episode()
        env.reset()
        features = env.features()
        incremental = session.encode(features)
        full = policy.epgnn(features, env.graph, env.cones)
        assert np.array_equal(incremental.data, full.data)

    def test_unchanged_mask_returns_cached_tensor(self, env, policy):
        session = policy.encoder_session(env)
        session.begin_episode()
        env.reset()
        first = session.encode(env.features())
        second = session.encode(env.features())
        assert second is first

    def test_mutation_version_guard_forces_full(self, env, policy):
        session = policy.encoder_session(env)
        session.begin_episode()
        env.reset()
        session.encode(env.features())
        state = env.step(int(np.nonzero(env.state.valid)[0][0]))
        assert not state.done
        # Any netlist mutation bumps mutation_version; the next encode must
        # refuse the stale cache and fall back to a full re-encode.
        obs.enable()
        obs.reset()
        try:
            env.netlist.mutation_version += 1
            session.encode(env.features())
            counters = obs.get_recorder().counters
            assert counters.get("gnn.full_encode", 0) == 1
            assert counters.get("gnn.incremental_encode", 0) == 0
        finally:
            obs.disable()
            obs.reset()

    def test_static_column_change_forces_full(self, env, policy):
        session = policy.encoder_session(env)
        session.begin_episode()
        env.reset()
        session.encode(env.features())
        features = env.features()
        features[:, 3] += 0.125  # a "static" column changed under us
        obs.enable()
        obs.reset()
        try:
            out = session.encode(features)
            counters = obs.get_recorder().counters
            assert counters.get("gnn.full_encode", 0) == 1
        finally:
            obs.disable()
            obs.reset()
        full = policy.epgnn(features, env.graph, env.cones)
        assert np.array_equal(out.data, full.data)

    def test_counters_track_engine_choice(self, env, policy, rng):
        session = policy.encoder_session(env)
        session.begin_episode()
        obs.enable()
        obs.reset()
        try:
            steps = _episode_features(env, rng, max_steps=5)
            for features in steps:
                session.encode(features)
            counters = obs.get_recorder().counters
            assert counters.get("gnn.full_encode", 0) >= 1  # episode warm-up
            assert (
                counters.get("gnn.full_encode", 0)
                + counters.get("gnn.incremental_encode", 0)
                == len(steps)
            )
            if counters.get("gnn.incremental_encode", 0):
                assert counters.get("gnn.dirty_cells", 0) > 0
        finally:
            obs.disable()
            obs.reset()

    def test_gradients_match_full_path(self, env, small_design):
        """Parameter gradients through the incremental tape ≈ full tape."""
        policy_a = RLCCDPolicy(NUM_FEATURES, rng=3)
        policy_b = RLCCDPolicy(NUM_FEATURES, rng=3)
        traj_a = policy_a.rollout(env, rng=77, incremental=True)
        traj_b = policy_b.rollout(env, rng=77, incremental=False)
        assert traj_a.actions == traj_b.actions
        traj_a.total_log_prob().backward()
        traj_b.total_log_prob().backward()
        for (name, pa), (_, pb) in zip(
            policy_a.named_parameters(), policy_b.named_parameters()
        ):
            ga = pa.grad if pa.grad is not None else np.zeros_like(pa.data)
            gb = pb.grad if pb.grad is not None else np.zeros_like(pb.data)
            np.testing.assert_allclose(
                ga, gb, atol=1e-9, rtol=0.0, err_msg=f"grad mismatch: {name}"
            )


class TestRolloutEquivalence:
    def test_sampled_trajectories_identical(self, env, policy):
        for seed in (0, 1, 2):
            a = policy.rollout(env, rng=seed, incremental=True)
            b = policy.rollout(env, rng=seed, incremental=False)
            assert a.actions == b.actions
            assert a.action_cells == b.action_cells

    def test_greedy_trajectories_identical(self, env, policy):
        a = policy.rollout(env, greedy=True, incremental=True)
        b = policy.rollout(env, greedy=True, incremental=False)
        assert a.actions == b.actions

    def test_rollout_respects_global_switch(self, env, policy):
        previous = gi.set_incremental(False)
        obs.enable()
        obs.reset()
        try:
            policy.rollout(env, rng=5, max_steps=3)
            counters = obs.get_recorder().counters
            assert counters.get("gnn.incremental_encode", 0) == 0
            assert counters.get("gnn.full_encode", 0) >= 1
        finally:
            obs.disable()
            obs.reset()
            gi.set_incremental(previous)

    def test_shadow_check_passes_across_episode(self, env, policy):
        previous = gi.set_check(True)
        try:
            trajectory = policy.rollout(env, rng=9, incremental=True)
            assert len(trajectory) >= 1
        finally:
            gi.set_check(previous)

    def test_shadow_check_catches_corrupted_cache(self, env, policy):
        previous = gi.set_check(True)
        try:
            session = policy.encoder_session(env)
            session.begin_episode()
            env.reset()
            base = env.features()
            session.encode(base)
            # One endpoint flips to masked: a single-cell dirty seed, so the
            # next encode stays on the incremental path (no fallback) and
            # reuses cached embedding rows for every untouched endpoint.
            stepped = np.array(base, copy=True)
            stepped[env.endpoints[0], 0] = 1.0
            # Corrupt the cached embeddings: the reused clean rows must be
            # caught by the shadow check, not silently returned.
            session._emb.data[:, :] += 1.0
            with pytest.raises(RuntimeError, match="drift"):
                session.encode(stepped)
        finally:
            gi.set_check(previous)


class TestTrainingEquivalence:
    def _train(self, small_design, incremental):
        nl, period = small_design
        env = EndpointSelectionEnv(nl, period, rho=0.3)
        policy = RLCCDPolicy(NUM_FEATURES, rng=21)
        config = TrainConfig(
            max_episodes=3,
            seed=4,
            max_selection_steps=6,
            incremental_gnn=incremental,
        )
        return train_rlccd(policy, env, FlowConfig(clock_period=period), config)

    def test_training_history_byte_identical(self, small_design):
        """Full vs incremental engines: byte-identical training histories."""
        full = self._train(small_design, incremental=False)
        fast = self._train(small_design, incremental=True)
        assert full.best_selection == fast.best_selection
        assert full.best_tns == fast.best_tns
        assert len(full.history) == len(fast.history)
        for a, b in zip(full.history, fast.history):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_training_history_byte_identical_under_check(self, small_design):
        previous = gi.set_check(True)
        try:
            full = self._train(small_design, incremental=False)
            fast = self._train(small_design, incremental=True)
        finally:
            gi.set_check(previous)
        for a, b in zip(full.history, fast.history):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)
        assert len(full.history) == len(fast.history)


class TestPoolingEquivalence:
    def test_csr_pooling_matches_loop(self, env, policy):
        env.reset()
        features = env.features()
        policy.epgnn.pooling = "loop"
        try:
            loop = policy.epgnn(features, env.graph, env.cones)
        finally:
            policy.epgnn.pooling = "csr"
        csr = policy.epgnn(features, env.graph, env.cones)
        np.testing.assert_allclose(csr.data, loop.data, atol=ATOL, rtol=0.0)

    def test_csr_pooling_gradients_match_loop(self, env):
        policy_a = RLCCDPolicy(NUM_FEATURES, rng=2)
        policy_b = RLCCDPolicy(NUM_FEATURES, rng=2)
        env.reset()
        features = env.features()
        policy_b.epgnn.pooling = "loop"
        out_a = policy_a.epgnn(features, env.graph, env.cones)
        out_b = policy_b.epgnn(features, env.graph, env.cones)
        out_a.sum().backward()
        out_b.sum().backward()
        for (name, pa), (_, pb) in zip(
            policy_a.named_parameters(), policy_b.named_parameters()
        ):
            if pa.grad is None and pb.grad is None:
                continue
            np.testing.assert_allclose(
                pa.grad, pb.grad, atol=ATOL, rtol=0.0,
                err_msg=f"grad mismatch: {name}",
            )


class TestFallbackThreshold:
    def test_large_dirty_region_falls_back_to_full(self, env, policy):
        session = policy.encoder_session(env)
        session.begin_episode()
        env.reset()
        session.encode(env.features())
        # Flip the mask on over half the cells: the 3-hop dirty region
        # exceeds FULL_FALLBACK_FRACTION, so the engine must full-encode.
        features = env.features()
        features[:, 0] = 1.0
        obs.enable()
        obs.reset()
        try:
            out = session.encode(features)
            counters = obs.get_recorder().counters
            assert counters.get("gnn.full_encode", 0) == 1
        finally:
            obs.disable()
            obs.reset()
        full = policy.epgnn(features, env.graph, env.cones)
        assert np.array_equal(out.data, full.data)

