#!/usr/bin/env python
"""Quickstart: train RL-CCD on one synthetic design and beat the default flow.

Walks the full paper pipeline on a small design (runs in ~1 minute):

1. generate a synthetic register-bound design and globally place it;
2. pick a clock period that leaves ~35% of endpoints violating
   (the post-global-placement state Table II starts from);
3. run the *default tool flow* (useful skew + data-path optimization,
   no endpoint prioritization);
4. train the RL-CCD agent (EP-GNN + LSTM + pointer attention, REINFORCE)
   to select endpoints for useful-skew prioritization;
5. compare final WNS / TNS / NVE and power.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClockModel,
    EndpointSelectionEnv,
    FlowConfig,
    NUM_FEATURES,
    PlacementConfig,
    RLCCDPolicy,
    TimingAnalyzer,
    TrainConfig,
    choose_clock_period,
    place_design,
    quick_design,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
    summarize,
    train_rlccd,
)


def main() -> None:
    # --- 1. design + placement ---------------------------------------- #
    netlist = quick_design(name="quickstart", n_cells=700, seed=11)
    place_design(netlist, PlacementConfig(seed=1))
    print(f"design: {netlist}")

    # --- 2. clock constraint ------------------------------------------ #
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, violating_fraction=0.35)
    begin = summarize(analyzer.analyze(ClockModel.for_netlist(netlist, period)))
    print(f"clock period: {period:.3f} ns")
    print(f"begin (post global place): {begin}")

    # --- 3. default tool flow ------------------------------------------ #
    snapshot = snapshot_netlist_state(netlist)
    flow_config = FlowConfig(clock_period=period)
    default = run_flow(netlist, flow_config)
    restore_netlist_state(netlist, snapshot)
    print(f"default tool flow:         {default.final}")

    # --- 4. RL-CCD training --------------------------------------------- #
    env = EndpointSelectionEnv(netlist, period, rho=0.3)
    print(f"violating endpoints available to the agent: {env.num_endpoints}")
    policy = RLCCDPolicy(NUM_FEATURES, rng=0)
    result = train_rlccd(
        policy,
        env,
        flow_config,
        TrainConfig(max_episodes=16, plateau_patience=3, seed=1),
        progress=lambda r: print(
            f"  episode {r.episode + 1:>2}: TNS {r.tns:8.3f} "
            f"({r.num_selected} endpoints selected)"
        ),
    )

    # --- 5. comparison --------------------------------------------------- #
    restore_netlist_state(netlist, snapshot)
    rlccd = run_flow(netlist, flow_config, prioritized_endpoints=result.best_selection)
    restore_netlist_state(netlist, snapshot)
    print(f"RL-CCD enhanced flow:      {rlccd.final}")
    if default.final.tns != 0:
        gain = 100.0 * (1.0 - rlccd.final.tns / default.final.tns)
        print(f"TNS improvement vs default flow: {gain:+.1f}%")
    print(
        f"power: default {default.final_power.total:.2f} mW, "
        f"RL-CCD {rlccd.final_power.total:.2f} mW"
    )
    print(f"prioritized endpoints: {result.best_selection}")

    # --- visual summary ---------------------------------------------------- #
    from repro.viz import slack_profile, sparkline

    print(f"\nepisode TNS trend: {sparkline(result.tns_curve)}")
    print("\nfinal endpoint slack profile (RL-CCD flow):")
    print(slack_profile(rlccd.report.slack, width=56, height=9))


if __name__ == "__main__":
    main()
