#!/usr/bin/env python
"""Fan-in-cone overlap masking ablation (paper §III-C, Fig. 3).

Sweeps the overlap threshold ρ and shows how it controls the number of
endpoints the selection loop picks (Algorithm 1 uses ρ = 0.3): small ρ
masks aggressively (few, spread-out selections — avoiding the clock
arrival "ping-pong" effect on successive endpoints), ρ = 1.0 disables
masking entirely.

Run:  python examples/rho_ablation.py
"""

from __future__ import annotations

from repro import (
    ClockModel,
    EndpointSelectionEnv,
    FlowConfig,
    PlacementConfig,
    TimingAnalyzer,
    choose_clock_period,
    place_design,
    quick_design,
    restore_netlist_state,
    run_flow,
    select_greedy_overlap,
    snapshot_netlist_state,
)


def main() -> None:
    netlist = quick_design(name="rho_demo", n_cells=600, seed=17)
    place_design(netlist, PlacementConfig(seed=1))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    snapshot = snapshot_netlist_state(netlist)
    flow_config = FlowConfig(clock_period=period)

    default = run_flow(netlist, flow_config)
    restore_netlist_state(netlist, snapshot)
    print(f"default flow (no selection): TNS {default.final.tns:8.3f}")
    print()
    print(f"{'rho':>5} | {'#selected':>9} | {'TNS':>9} | {'NVE':>5}")

    for rho in (0.1, 0.3, 0.6, 0.9, 1.0):
        env = EndpointSelectionEnv(netlist, period, rho=rho)
        selection = select_greedy_overlap(env)
        restore_netlist_state(netlist, snapshot)
        result = run_flow(netlist, flow_config, prioritized_endpoints=selection)
        restore_netlist_state(netlist, snapshot)
        print(
            f"{rho:>5.1f} | {len(selection):>9} | {result.final.tns:>9.3f} "
            f"| {result.final.nve:>5}"
        )

    print(
        "\nSmaller rho -> aggressive masking -> fewer, structurally spread "
        "selections; rho=1.0 -> masking disabled (all endpoints selected)."
    )


if __name__ == "__main__":
    main()
