#!/usr/bin/env python
"""Full-flow optimization with per-stage re-prioritization (paper §V).

The paper's future work: "expand RL-CCD for full-flow optimization".  This
example chains placement → CTS-refinement → routing-refinement stages
(each tightening wire parasitics, as extraction replaces estimates) and
compares three flows from the identical start state:

* the native full flow (no prioritization at any stage);
* worst-slack prioritization at every stage;
* greedy-overlap prioritization (the agent's masking loop with a
  worst-first policy) at every stage.

It also quantifies the PPA impact: final TNS (performance), total power,
and total cell area.

Run:  python examples/full_flow.py
"""

from __future__ import annotations

from repro import (
    ClockModel,
    PlacementConfig,
    TimingAnalyzer,
    choose_clock_period,
    place_design,
    quick_design,
    report_power,
    restore_netlist_state,
    select_greedy_overlap,
    select_worst_slack,
    snapshot_netlist_state,
)
from repro.ccd.fullflow import default_stages, run_full_flow


def main() -> None:
    netlist = quick_design(name="fullflow", n_cells=700, seed=23)
    place_design(netlist, PlacementConfig(seed=1))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.40)
    snapshot = snapshot_netlist_state(netlist)
    stages = default_stages(period)

    flows = {
        "native full flow": None,
        "worst-slack each stage": lambda env: select_worst_slack(env, 8),
        "greedy-overlap each stage": select_greedy_overlap,
    }

    print(f"design {netlist.name}, period {period:.3f} ns, stages: "
          f"{' -> '.join(s.name for s in stages)}\n")
    print(f"{'flow':>26} | {'final TNS':>9} | {'NVE':>4} | "
          f"{'power mW':>9} | {'area um2':>9} | {'#sel/stage':>12}")

    for label, selector in flows.items():
        result = run_full_flow(netlist, stages, selector)
        final_clock = result.stage_results[-1].clock
        power = report_power(netlist, final_clock)
        area = netlist.total_cell_area()
        counts = "/".join(str(c) for c in result.selection_counts())
        print(
            f"{label:>26} | {result.final.tns:>9.3f} | {result.final.nve:>4} "
            f"| {power.total:>9.3f} | {area:>9.1f} | {counts:>12}"
        )
        restore_netlist_state(netlist, snapshot)

    print(
        "\nEach stage tightens parasitics (placement estimates -> extraction),"
        "\nso the violating set shifts and per-stage re-prioritization has"
        "\nfresh decisions to make — the richer problem the paper points to."
    )


if __name__ == "__main__":
    main()
