#!/usr/bin/env python
"""Endpoint strategy-sensitivity analysis (the problem behind the paper).

The paper's §I observation — "not all violating endpoints are equal" — made
inspectable: classify every violating endpoint of a design by whether the
clock path (useful skew) or the data path (sizing/buffering) can fix it,
then compare three flows: the native one, the transparent clock-sensitive
heuristic built on this analysis, and the analysis printed next to what an
RL-trained agent actually selects.

Run:  python examples/sensitivity_analysis.py
"""

from __future__ import annotations

from repro import (
    ClockModel,
    EndpointSelectionEnv,
    FlowConfig,
    NUM_FEATURES,
    PlacementConfig,
    RLCCDPolicy,
    TimingAnalyzer,
    TrainConfig,
    choose_clock_period,
    place_design,
    quick_design,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
    train_rlccd,
)
from repro.analysis import analyze_sensitivity, select_clock_sensitive


def main() -> None:
    # block17 is one of the suite's strong prioritization responders
    # (Table II: ~+44% TNS improvement) — a design where the clock-vs-data
    # structure actually matters.
    from repro.benchsuite import build_design, get_block

    design = build_design(get_block("block17"))
    netlist, period = design.netlist, design.clock_period

    # --- 1. the analysis ------------------------------------------------ #
    sens = analyze_sensitivity(netlist, period)
    print(sens)
    counts = sens.counts()
    print(
        f"\n'clock' endpoints are the agent's best targets; 'stuck' ones "
        f"need a different recipe entirely ({counts['stuck']} here).\n"
    )

    # --- 2. flows -------------------------------------------------------- #
    snapshot = snapshot_netlist_state(netlist)
    flow_config = FlowConfig(clock_period=period)

    default = run_flow(netlist, flow_config)
    restore_netlist_state(netlist, snapshot)

    heuristic_sel = select_clock_sensitive(netlist, period, max_count=12)
    heuristic = run_flow(netlist, flow_config, prioritized_endpoints=heuristic_sel)
    restore_netlist_state(netlist, snapshot)

    env = EndpointSelectionEnv(netlist, period, rho=0.3)
    policy = RLCCDPolicy(NUM_FEATURES, rng=0)
    training = train_rlccd(
        policy, env, flow_config, TrainConfig(max_episodes=12, seed=1)
    )
    restore_netlist_state(netlist, snapshot)
    rl = run_flow(netlist, flow_config, prioritized_endpoints=training.best_selection)
    restore_netlist_state(netlist, snapshot)

    print(f"{'flow':>28} | {'TNS':>9} | {'NVE':>4} | {'#selected':>9}")
    for label, result, n_sel in (
        ("native (no selection)", default, 0),
        ("clock-sensitive heuristic", heuristic, len(heuristic_sel)),
        ("RL-CCD (trained)", rl, len(training.best_selection)),
    ):
        print(
            f"{label:>28} | {result.final.tns:>9.3f} | {result.final.nve:>4} "
            f"| {n_sel:>9}"
        )

    overlap = set(training.best_selection) & set(heuristic_sel)
    print(
        f"\nRL selection ∩ heuristic selection: {len(overlap)} endpoints. "
        f"The static analysis names the *candidates*; which subset actually "
        f"pays off depends on contention between endpoints (shared launch "
        f"slack, attention-window displacement, data-path budget flow) — "
        f"the global interactions the trained agent optimizes and a "
        f"per-endpoint classification cannot."
    )


if __name__ == "__main__":
    main()
