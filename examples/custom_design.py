#!/usr/bin/env python
"""Bring your own netlist: build a circuit by hand and inspect CCD behaviour.

Shows the substrate layers directly, without the RL agent:

* construct a small pipelined datapath with :class:`NetlistBuilder`;
* run STA and read per-endpoint slack;
* apply useful skew by hand and watch slack move between stages;
* run the data-path optimizer and see which cells it resized.

Run:  python examples/custom_design.py
"""

from __future__ import annotations

from repro import ClockModel, TimingAnalyzer, get_library, summarize
from repro.ccd.datapath_opt import DatapathConfig, optimize_datapath
from repro.ccd.useful_skew import optimize_useful_skew
from repro.netlist import NetlistBuilder
from repro.timing import trace_critical_path


def build_pipeline():
    """Two-stage pipeline with a deliberately slow first stage."""
    lib = get_library("tech7")
    b = NetlistBuilder("custom", lib)
    a = b.add_input("a")
    c = b.add_input("c")
    d = b.add_input("d")

    # Stage 1: a deep cone into ff1 (will violate).
    g1 = b.add_gate("NAND2", "g1", [a, c])
    g2 = b.add_gate("XOR2", "g2", [g1, d])
    g3 = b.add_gate("OAI21", "g3", [g2, g1, c])
    g4 = b.add_gate("INV", "g4", [g3])
    g5 = b.add_gate("NOR2", "g5", [g4, g2])
    ff1 = b.add_flop("ff1", g5, skew_bound=0.15)

    # Stage 2: shallow logic into ff2 (plenty of slack to donate).
    h1 = b.add_gate("INV", "h1", [ff1])
    ff2 = b.add_flop("ff2", h1, skew_bound=0.15)

    out = b.add_gate("BUF", "g_out", [ff2])
    b.add_output("y", out)
    netlist = b.build()
    for i, cell in enumerate(netlist.cells):  # simple manual placement
        cell.x, cell.y = 12.0 * i, 8.0
    return netlist


def main() -> None:
    netlist = build_pipeline()
    analyzer = TimingAnalyzer(netlist)
    period = 0.22  # tight on purpose: stage 1 violates
    clock = ClockModel.for_netlist(netlist, period)

    report = analyzer.analyze(clock)
    print(f"design {netlist.name}: {summarize(report)}")
    for e in report.endpoints:
        cell = netlist.cells[int(e)]
        print(f"  endpoint {cell.name:>4}: slack {report.endpoint_slack(int(e)):+.4f}")

    worst = int(report.endpoints[report.slack.argmin()])
    path = trace_critical_path(analyzer.compiled, report, worst)
    names = [netlist.cells[c].name for c in path.cells]
    print(f"critical path into {netlist.cells[worst].name}: {' -> '.join(names)}")

    # --- clock-path optimization: useful skew --------------------------- #
    skew_result = optimize_useful_skew(analyzer, clock)
    report = analyzer.analyze(clock)
    print(f"\nafter useful skew ({skew_result.commits} commits): {summarize(report)}")
    for f, adj in sorted(clock.adjustments().items()):
        print(f"  {netlist.cells[f].name}: clock arrival {adj:+.4f} ns")

    # --- data-path optimization ------------------------------------------ #
    sizes_before = {c.name: c.size.code for c in netlist.cells}
    dp_result = optimize_datapath(
        analyzer, clock, config=DatapathConfig(effort_per_violation=4.0)
    )
    report = analyzer.analyze(clock)
    print(
        f"\nafter data-path opt ({dp_result.sizing_moves} sizings, "
        f"{dp_result.buffer_moves} buffers): {summarize(report)}"
    )
    for cell in netlist.cells:
        before = sizes_before.get(cell.name)
        if before is None:
            print(f"  inserted buffer {cell.name} ({cell.size.code})")
        elif before != cell.size.code:
            print(f"  resized {cell.name}: {before} -> {cell.size.code}")


if __name__ == "__main__":
    main()
