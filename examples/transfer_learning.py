#!/usr/bin/env python
"""Transfer learning across designs (paper §IV-B / Fig. 6).

Pre-trains the EP-GNN on two source designs, then trains on an unseen
target twice — once from scratch, once with the transferred EP-GNN — and
prints both convergence curves.  The transferred agent should reach
comparable TNS in fewer episodes ("GNN netlist encoding should be
universal", §IV-B).

Run:  python examples/transfer_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ClockModel,
    EndpointSelectionEnv,
    FlowConfig,
    NUM_FEATURES,
    PlacementConfig,
    RLCCDPolicy,
    TimingAnalyzer,
    TrainConfig,
    choose_clock_period,
    place_design,
    quick_design,
    train_rlccd,
)
from repro.agent.transfer import pretrain_on_designs, transfer_epgnn


def make_env(name: str, seed: int, n_cells: int = 500):
    netlist = quick_design(name=name, n_cells=n_cells, seed=seed)
    place_design(netlist, PlacementConfig(seed=seed))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, 0.35)
    return EndpointSelectionEnv(netlist, period), FlowConfig(clock_period=period)


def main() -> None:
    train_config = TrainConfig(max_episodes=10, plateau_patience=3, seed=0)

    # --- pre-train one shared EP-GNN on two source designs -------------- #
    print("pre-training EP-GNN on source designs...")
    tasks = [make_env("source_a", seed=31), make_env("source_b", seed=32)]
    pretrained, pretrain_results = pretrain_on_designs(
        tasks, NUM_FEATURES, train_config, rng=0
    )
    for (env, _), res in zip(tasks, pretrain_results):
        print(
            f"  {env.netlist.name}: best TNS {res.best_tns:.3f} "
            f"in {res.episodes_run} episodes"
        )

    # --- unseen target: scratch vs transfer ----------------------------- #
    env, flow_config = make_env("unseen_target", seed=33, n_cells=600)
    print(f"\ntarget design: {env.netlist.name} ({env.num_endpoints} violating EPs)")

    scratch_policy = RLCCDPolicy(NUM_FEATURES, rng=0)
    scratch = train_rlccd(scratch_policy, env, flow_config, train_config)

    transfer_policy = RLCCDPolicy(NUM_FEATURES, rng=0)
    transfer_epgnn(pretrained, transfer_policy)
    transfer = train_rlccd(transfer_policy, env, flow_config, train_config)

    print("\nbest-so-far TNS per episode (higher is better):")
    print(f"{'episode':>8} | {'scratch':>9} | {'transfer':>9}")
    n = max(len(scratch.best_so_far_curve), len(transfer.best_so_far_curve))
    for i in range(n):
        s = scratch.best_so_far_curve[i] if i < len(scratch.best_so_far_curve) else np.nan
        t = transfer.best_so_far_curve[i] if i < len(transfer.best_so_far_curve) else np.nan
        print(f"{i + 1:>8} | {s:>9.3f} | {t:>9.3f}")
    print(
        f"\nscratch best {scratch.best_tns:.3f} ({scratch.episodes_run} eps), "
        f"transfer best {transfer.best_tns:.3f} ({transfer.episodes_run} eps)"
    )


if __name__ == "__main__":
    main()
