"""RL-CCD: Concurrent Clock and Data Optimization using Attention-Based
Self-Supervised Reinforcement Learning (Lu et al., DAC 2023) — reproduction.

The package is organized as the paper's system plus every substrate it
depends on:

===================  ========================================================
subpackage           role
===================  ========================================================
``repro.nn``         from-scratch numpy autograd + NN stack (no torch)
``repro.netlist``    cell libraries, netlist model, synthetic design generator
``repro.placement``  synthetic global placement
``repro.timing``     vectorized STA (arrival/required/slack, TNS/WNS/NVE)
``repro.power``      first-order power models
``repro.ccd``        CCD engine: useful skew + data-path opt + placement flow
``repro.features``   Table-I features, fan-in cones, overlap masking
``repro.gnn``        EP-GNN endpoint encoder (Eq. 2–3)
``repro.agent``      selection env, policy (Fig. 4), REINFORCE (Algorithm 1)
``repro.benchsuite`` the 19 blocks + Table-II / Fig-5 / Fig-6 / ablations
===================  ========================================================

Quickstart::

    from repro import (
        quick_design, place_design, EndpointSelectionEnv, RLCCDPolicy,
        FlowConfig, TrainConfig, train_rlccd, run_flow, NUM_FEATURES,
    )

    netlist = quick_design(n_cells=600, seed=7)
    place_design(netlist)
    env = EndpointSelectionEnv(netlist, clock_period=0.4)
    policy = RLCCDPolicy(NUM_FEATURES, rng=0)
    result = train_rlccd(policy, env, FlowConfig(clock_period=0.4))
    print(result.best_tns, result.best_selection)
"""

from repro.agent import (
    EndpointSelectionEnv,
    RLCCDPolicy,
    TrainConfig,
    TrainingResult,
    Trajectory,
    select_greedy_overlap,
    select_none,
    select_random,
    select_worst_slack,
    train_rlccd,
)
from repro.ccd import (
    DatapathConfig,
    FlowConfig,
    FlowResult,
    UsefulSkewConfig,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.features import NUM_FEATURES, ConeIndex, FeatureExtractor, fanin_cone
from repro.gnn import EPGNN
from repro.netlist import (
    GeneratorConfig,
    Netlist,
    NetlistBuilder,
    generate_design,
    get_library,
    quick_design,
)
from repro.placement import PlacementConfig, place_design
from repro.power import report_power
from repro.timing import (
    ClockModel,
    TimingAnalyzer,
    choose_clock_period,
    summarize,
    violating_endpoints,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # netlist
    "Netlist",
    "NetlistBuilder",
    "GeneratorConfig",
    "generate_design",
    "quick_design",
    "get_library",
    # placement / timing / power
    "PlacementConfig",
    "place_design",
    "ClockModel",
    "TimingAnalyzer",
    "summarize",
    "violating_endpoints",
    "choose_clock_period",
    "report_power",
    # ccd
    "FlowConfig",
    "FlowResult",
    "run_flow",
    "UsefulSkewConfig",
    "DatapathConfig",
    "snapshot_netlist_state",
    "restore_netlist_state",
    # features / gnn
    "NUM_FEATURES",
    "FeatureExtractor",
    "ConeIndex",
    "fanin_cone",
    "EPGNN",
    # agent
    "EndpointSelectionEnv",
    "RLCCDPolicy",
    "Trajectory",
    "TrainConfig",
    "TrainingResult",
    "train_rlccd",
    "select_none",
    "select_worst_slack",
    "select_random",
    "select_greedy_overlap",
]
