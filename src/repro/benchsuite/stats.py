"""Robustness statistics: multi-seed sweeps and summary intervals.

The paper reports single-seed results ("we use the same seed in each run to
completely remove non-deterministic run-to-run variation").  For a
reproduction on synthetic designs it is worth quantifying how sensitive the
headline claim (RL-CCD ≥ default flow) is to the *training* seed, which
controls parameter init and trajectory sampling while the design and flow
stay fixed.  :func:`seed_sweep` runs one block across several seeds and
:func:`summarize_sweep` reports mean / std / a normal-approximation
confidence interval of the TNS improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.benchsuite.designs import DesignSpec, build_design, get_block
from repro.benchsuite.table2 import Table2Config, Table2Row, run_table2_row


@dataclass
class SweepResult:
    """Per-seed rows plus the sweep's identity."""

    design: str
    seeds: List[int]
    rows: List[Table2Row]

    def improvements(self) -> np.ndarray:
        return np.array([r.tns_improvement_pct for r in self.rows])


@dataclass
class SweepSummary:
    """Aggregate statistics of a seed sweep."""

    design: str
    num_seeds: int
    mean_improvement_pct: float
    std_improvement_pct: float
    ci95_low: float
    ci95_high: float
    fraction_improved: float
    worst_improvement_pct: float

    def __str__(self) -> str:
        return (
            f"{self.design}: TNS improvement {self.mean_improvement_pct:+.1f}% "
            f"± {self.std_improvement_pct:.1f}% "
            f"(95% CI [{self.ci95_low:+.1f}%, {self.ci95_high:+.1f}%], "
            f"improved {self.fraction_improved:.0%} of {self.num_seeds} seeds, "
            f"worst {self.worst_improvement_pct:+.1f}%)"
        )


def seed_sweep(
    spec_or_name,
    seeds: Sequence[int] = (0, 1, 2),
    config: Table2Config = Table2Config(),
) -> SweepResult:
    """Run one block's Table-II row under several training seeds.

    The design (generator seed, placement, clock) is identical across runs;
    only the agent's initialization/sampling seed varies.
    """
    spec: DesignSpec = (
        get_block(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    )
    if not seeds:
        raise ValueError("seed_sweep needs at least one seed")
    prepared = build_design(spec)
    rows: List[Table2Row] = []
    for seed in seeds:
        seeded = Table2Config(
            rho=config.rho,
            max_episodes=config.max_episodes,
            episodes_per_update=config.episodes_per_update,
            learning_rate=config.learning_rate,
            plateau_patience=config.plateau_patience,
            datapath_effort=config.datapath_effort,
            seed=int(seed),
            fallback_to_default=config.fallback_to_default,
        )
        rows.append(run_table2_row(spec, seeded, prepared=prepared))
    return SweepResult(design=spec.name, seeds=list(seeds), rows=rows)


def summarize_sweep(sweep: SweepResult) -> SweepSummary:
    """Mean / std / 95% CI of TNS improvement across seeds."""
    imps = sweep.improvements()
    n = imps.size
    mean = float(imps.mean())
    std = float(imps.std(ddof=1)) if n > 1 else 0.0
    if n > 1 and std > 0:
        sem = std / np.sqrt(n)
        t_crit = float(scipy_stats.t.ppf(0.975, df=n - 1))
        lo, hi = mean - t_crit * sem, mean + t_crit * sem
    else:
        lo = hi = mean
    return SweepSummary(
        design=sweep.design,
        num_seeds=n,
        mean_improvement_pct=mean,
        std_improvement_pct=std,
        ci95_low=float(lo),
        ci95_high=float(hi),
        fraction_improved=float((imps > 0).mean()),
        worst_improvement_pct=float(imps.min()),
    )
