"""Persist benchmark results to JSON and compare runs.

Lets users archive a Table-II sweep (`save_rows`), reload it later
(`load_rows`, returning plain dictionaries — the heavyweight flow objects
are summarized, not pickled), and diff two runs for regressions
(`compare_runs`) — the workflow a team tracking optimizer quality over
code changes actually needs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence

from repro.benchsuite.table2 import Table2Row

RESULTS_FORMAT = "repro-table2-results"
RESULTS_VERSION = 1


def row_to_dict(row: Table2Row) -> Dict[str, Any]:
    """Flatten one Table-II row to JSON-ready primitives."""
    return {
        "design": row.design,
        "num_cells": row.num_cells,
        "begin": {
            "wns": row.begin.wns,
            "tns": row.begin.tns,
            "nve": row.begin.nve,
            "power": row.begin_power.total,
        },
        "default": {
            "wns": row.default.final.wns,
            "tns": row.default.final.tns,
            "nve": row.default.final.nve,
            "power": row.default.final_power.total,
            "runtime_s": row.default_runtime,
        },
        "rlccd": {
            "wns": row.rlccd.final.wns,
            "tns": row.rlccd.final.tns,
            "nve": row.rlccd.final.nve,
            "power": row.rlccd.final_power.total,
            "runtime_s": row.rlccd_runtime,
            "selected": row.rlccd_selected,
            "episodes": row.training.episodes_run,
        },
        "tns_improvement_pct": row.tns_improvement_pct,
        "nve_improvement_pct": row.nve_improvement_pct,
        "power_change_pct": row.power_change_pct,
    }


def save_rows(rows: Sequence[Table2Row], path: str) -> None:
    """Write a sweep's rows to ``path`` (parent dirs created)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {
        "format": RESULTS_FORMAT,
        "version": RESULTS_VERSION,
        "rows": [row_to_dict(r) for r in rows],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def load_rows(path: str) -> List[Dict[str, Any]]:
    """Load a results file written by :func:`save_rows`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != RESULTS_FORMAT:
        raise ValueError(f"not a {RESULTS_FORMAT} file: {path!r}")
    if payload.get("version") != RESULTS_VERSION:
        raise ValueError(f"unsupported results version {payload.get('version')!r}")
    return payload["rows"]


def compare_runs(
    baseline: List[Dict[str, Any]],
    candidate: List[Dict[str, Any]],
    tolerance_pct: float = 1.0,
) -> Dict[str, Any]:
    """Diff two result sets on the headline metric (RL-CCD final TNS).

    Returns per-design deltas and the lists of regressed/improved designs
    (beyond ``tolerance_pct`` relative change).
    """
    if tolerance_pct < 0:
        raise ValueError("tolerance_pct must be non-negative")
    base_by_design = {r["design"]: r for r in baseline}
    deltas: Dict[str, float] = {}
    regressed: List[str] = []
    improved: List[str] = []
    for row in candidate:
        name = row["design"]
        if name not in base_by_design:
            continue
        base_tns = base_by_design[name]["rlccd"]["tns"]
        cand_tns = row["rlccd"]["tns"]
        deltas[name] = cand_tns - base_tns
        scale = max(abs(base_tns), 1e-9)
        change_pct = 100.0 * (cand_tns - base_tns) / scale
        if change_pct < -tolerance_pct:
            regressed.append(name)
        elif change_pct > tolerance_pct:
            improved.append(name)
    return {
        "common_designs": len(deltas),
        "deltas": deltas,
        "regressed": sorted(regressed),
        "improved": sorted(improved),
    }
