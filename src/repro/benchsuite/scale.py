"""Vectorized synthetic-design generator for the 10K–200K-cell scale path.

The cone-growing generator in :mod:`repro.netlist.generator` builds rich
per-endpoint structure but does it one pin at a time through Python
``deque``/``dict`` bookkeeping — tens of seconds at 10K cells, minutes at
200K.  The scale sweep (``python -m repro bench --scale-sweep``) needs
designs at paper-adjacent sizes in *seconds*, so this module synthesizes a
netlist almost entirely in NumPy:

* cells are laid out index-contiguously (inports, flops, comb sorted by
  topological level, outports), so every "driver from a strictly lower
  level" draw is a single vectorized integer sample against a prefix of the
  index space — acyclicity by construction, like the slow generator;
* comb input pins pick their driver from the previous level with a locality
  coin (keeping realistic logic depth) and uniformly from all earlier cells
  otherwise (cone overlap); endpoint pins sample the deepest ~40% of levels
  so endpoint paths exercise the full depth;
* a fanout-coverage fixup then rewires a pin onto each driverless comb cell
  (stealing only from drivers that keep ≥ 1 sink, walking levels top-down),
  because a comb cell that drives nothing would fail
  :func:`~repro.netlist.validate.validate_netlist`;
* placement is inlined (boundary ports, uniform scatter at the same
  ``area_per_cell`` as :class:`~repro.placement.PlacementConfig`) — the
  force-directed refinement sweeps are Python-loop-bound and contribute
  nothing the STA scale measurements care about.

Construction bypasses the per-call ``add_cell``/``connect`` mutators (each
bumps ``mutation_version`` and re-validates bounds) and builds the
``Cell``/``Net`` objects directly, restoring every invariant the mutators
maintain — names unique and indexed, ``fanin_nets``/``fanout_net``/sink
lists consistent — and bumping ``mutation_version`` once at the end.

Everything is drawn from one seeded ``default_rng``: the same config always
yields the identical netlist, which the scale tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.core import Cell, Net, Netlist
from repro.netlist.generator import _TYPE_WEIGHTS, GeneratorConfig
from repro.netlist.library import get_library
from repro.netlist.validate import validate_netlist

#: Above this cell count ``fast_design`` skips :func:`validate_netlist`
#: (an O(cells·pins) Python DFS): construction is acyclic and fully
#: connected by layout, and the 10K-scale tests validate the same code path.
VALIDATE_MAX_CELLS = 20_000

#: Probability a comb pin samples its driver from the previous level
#: (vs. uniformly from all earlier cells).
LOCALITY_P = 0.7

#: Endpoint pins (flop D, output ports) draw their driver from the deepest
#: ``1 − ENDPOINT_LEVEL_FRACTION`` share of comb levels.
ENDPOINT_LEVEL_FRACTION = 0.6


def fast_design(config: GeneratorConfig, validate: bool | None = None) -> Netlist:
    """Vectorized, seed-stable stand-in for :func:`generate_design`.

    Honors the shared :class:`GeneratorConfig` knobs that shape timing at
    scale (cell/port/flop counts, depth, skew-bound diversity, library);
    cone-overlap and cluster-headroom shaping are approximated by the
    uniform earlier-cell draws and a per-cluster size bias.  Cells are
    placed inline; returns a design ready for :class:`TimingAnalyzer`.
    """
    rng = np.random.default_rng(config.seed)
    library = get_library(config.library)
    depth = max(2, int(round(config.mean_depth)))

    n_in = config.n_inputs
    n_out = config.n_outputs
    n_flops = max(2, int(round(config.flop_fraction * config.n_cells)))
    n_comb = max(depth, config.n_cells - n_in - n_out - n_flops)
    n_start = n_in + n_flops  # startpoints occupy [0, n_start)
    comb0 = n_start  # comb cells occupy [comb0, comb0 + n_comb)
    out0 = comb0 + n_comb
    n = out0 + n_out

    # --- comb levels and types (level-sorted layout ⇒ acyclic draws) ---- #
    levels = np.sort(rng.integers(1, depth + 1, size=n_comb))
    # lv_start[l] = absolute index of the first comb cell at level l.
    lv_start = comb0 + np.searchsorted(levels, np.arange(1, depth + 2))
    type_names = [name for name, _ in _TYPE_WEIGHTS]
    weights = np.array([w for _, w in _TYPE_WEIGHTS])
    type_idx = rng.choice(len(type_names), size=n_comb, p=weights / weights.sum())
    comb_types = [library.cell_type(name) for name in type_names]
    pins_of_type = np.array([t.num_inputs for t in comb_types])
    max_size_of_type = np.array([t.max_size_index for t in comb_types])
    n_pins = pins_of_type[type_idx]

    # --- sample comb pin drivers, level by level ------------------------ #
    pin_driver_chunks = []
    pin_sink_chunks = []
    pin_pos_chunks = []
    for level in range(1, depth + 1):
        lo, hi = int(lv_start[level - 1]), int(lv_start[level])
        if lo == hi:
            continue
        counts = n_pins[lo - comb0 : hi - comb0]
        total = int(counts.sum())
        sinks = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
        pos = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        prev_lo, prev_hi = (
            (0, n_start) if level == 1 else (int(lv_start[level - 2]), lo)
        )
        if prev_hi == prev_lo:  # empty previous level: fall back to startpoints
            prev_lo, prev_hi = 0, n_start
        local = prev_lo + (
            rng.random(total) * (prev_hi - prev_lo)
        ).astype(np.int64)
        # Global draws span startpoints plus every comb cell below `level`
        # (index-contiguous thanks to the level-sorted layout).
        glob = (rng.random(total) * lo).astype(np.int64)
        drivers = np.where(rng.random(total) < LOCALITY_P, local, glob)
        pin_driver_chunks.append(drivers)
        pin_sink_chunks.append(sinks)
        pin_pos_chunks.append(pos)

    # --- endpoint pins (flop D, outports) from the deepest levels ------- #
    ep_min_level = max(1, int(round(depth * ENDPOINT_LEVEL_FRACTION)))
    ep_lo = int(lv_start[ep_min_level - 1])
    if ep_lo >= out0:
        ep_lo = comb0
    ep_sinks = np.concatenate(
        [
            np.arange(n_in, n_start, dtype=np.int64),  # flop D pins
            np.arange(out0, n, dtype=np.int64),  # output ports
        ]
    )
    ep_drivers = ep_lo + (
        rng.random(ep_sinks.size) * (out0 - ep_lo)
    ).astype(np.int64)
    pin_driver_chunks.append(ep_drivers)
    pin_sink_chunks.append(ep_sinks)
    pin_pos_chunks.append(np.zeros(ep_sinks.size, dtype=np.int64))

    pin_driver = np.concatenate(pin_driver_chunks)
    pin_sink = np.concatenate(pin_sink_chunks)
    pin_pos = np.concatenate(pin_pos_chunks)
    # Sink level: comb cells carry their own level, endpoint pins sit past
    # the deepest level so any comb cell may steal them in the fixup.
    sink_level = np.full(pin_sink.size, depth + 1, dtype=np.int64)
    comb_pin = (pin_sink >= comb0) & (pin_sink < out0)
    sink_level[comb_pin] = levels[pin_sink[comb_pin] - comb0]

    _fix_driverless(rng, pin_driver, sink_level, levels, comb0, n)

    # --- materialize the netlist --------------------------------------- #
    netlist = Netlist(config.name, library)
    inport = library.cell_type("INPORT")
    outport = library.cell_type("OUTPORT")
    dff = library.cell_type("DFF")

    side = float(np.sqrt(max(1, n) * 4.0))  # PlacementConfig.area_per_cell
    xs = rng.uniform(0.0, side, size=n)
    ys = rng.uniform(0.0, side, size=n)
    toggles = rng.beta(2.0, 5.0, size=n)
    clusters = rng.integers(0, config.n_clusters, size=n)
    comb_sizes = np.minimum(
        max_size_of_type[type_idx], rng.integers(0, 4, size=n_comb)
    )
    flop_sizes = rng.integers(0, 2, size=n_flops)
    flex = rng.random(n_flops) < config.flex_flop_fraction
    period = library.default_clock_period
    flo, fhi = config.flexible_skew_range
    rlo, rhi = config.rigid_skew_range
    bounds = np.where(
        flex,
        rng.uniform(flo, fhi, size=n_flops),
        rng.uniform(rlo, rhi, size=n_flops),
    ) * period

    cells = netlist.cells
    for i in range(n_in):
        cell = Cell(index=i, name=f"in{i}", cell_type=inport)
        cell.x, cell.y = 0.0, side * (i + 0.5) / n_in
        cell.toggle_rate = float(toggles[i])
        cell.cluster = int(clusters[i])
        cells.append(cell)
    for j in range(n_flops):
        i = n_in + j
        cell = Cell(
            index=i, name=f"ff{j}", cell_type=dff, size_index=int(flop_sizes[j])
        )
        cell.x, cell.y = float(xs[i]), float(ys[i])
        cell.toggle_rate = float(toggles[i])
        cell.cluster = int(clusters[i])
        cells.append(cell)
        netlist.skew_bounds[i] = float(bounds[j])
    for j in range(n_comb):
        i = comb0 + j
        cell = Cell(
            index=i,
            name=f"g{j}",
            cell_type=comb_types[type_idx[j]],
            size_index=int(comb_sizes[j]),
        )
        cell.x, cell.y = float(xs[i]), float(ys[i])
        cell.toggle_rate = float(toggles[i])
        cell.cluster = int(clusters[i])
        cells.append(cell)
    for j in range(n_out):
        i = out0 + j
        cell = Cell(index=i, name=f"out{j}", cell_type=outport)
        cell.x, cell.y = side, side * (j + 0.5) / n_out
        cell.toggle_rate = float(toggles[i])
        cell.cluster = int(clusters[i])
        cells.append(cell)
    netlist._name_to_cell = {cell.name: cell.index for cell in cells}

    # Nets: one per driver with ≥ 1 sink, sinks grouped via a stable sort.
    order = np.argsort(pin_driver, kind="stable")
    d_sorted = pin_driver[order].tolist()
    s_sorted = pin_sink[order].tolist()
    p_sorted = pin_pos[order].tolist()
    nets = netlist.nets
    current_net: Net | None = None
    current_driver = -1
    for d, s, p in zip(d_sorted, s_sorted, p_sorted):
        if d != current_driver:
            current_net = Net(index=len(nets), name=f"n{d}", driver=d)
            nets.append(current_net)
            cells[d].fanout_net = current_net.index
            current_driver = d
        current_net.sinks.append((s, p))
        cells[s].fanin_nets[p] = current_net.index
    netlist.mutation_version += 1

    if validate is None:
        validate = n <= VALIDATE_MAX_CELLS
    if validate:
        validate_netlist(netlist)
    return netlist


def _fix_driverless(
    rng: np.random.Generator,
    pin_driver: np.ndarray,
    sink_level: np.ndarray,
    levels: np.ndarray,
    comb0: int,
    n: int,
) -> None:
    """Rewire one pin onto each comb cell the random draws left driverless.

    Walks levels deepest-first; a level-``l`` cell may only steal pins whose
    sink sits at a strictly deeper level (acyclicity), and only from drivers
    left with ≥ 1 sink (so the fixup never creates a new driverless cell).
    A shuffled pin order keeps the rewiring unbiased and seed-stable.
    """
    fanout = np.bincount(pin_driver, minlength=n)
    depth_max = int(levels[-1]) if levels.size else 0
    perm = rng.permutation(pin_driver.size)
    perm_levels = sink_level[perm]
    for level in range(depth_max, 0, -1):
        block = np.arange(comb0, comb0 + levels.size, dtype=np.int64)[
            levels == level
        ]
        unused = block[fanout[block] == 0]
        if unused.size == 0:
            continue
        candidates = perm[perm_levels > level]
        cursor = 0
        for c in unused.tolist():
            while cursor < candidates.size:
                j = int(candidates[cursor])
                cursor += 1
                old = int(pin_driver[j])
                if old != c and fanout[old] >= 2:
                    pin_driver[j] = c
                    fanout[old] -= 1
                    fanout[c] = 1
                    break
            # Candidate exhaustion is statistically unreachable (mean comb
            # fanout ≈ 2); if it ever happened the cell stays driverless and
            # validation at ≤ 20K cells reports it.
