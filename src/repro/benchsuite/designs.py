"""The 19 benchmark designs (paper Table II), synthesized stand-ins.

The paper evaluates on 19 confidential industrial blocks, 84K–1.3M cells,
in 5/7/12 nm technologies.  Our stand-ins preserve:

* the **relative size ordering** — each block's cell count is the paper's
  count divided by ``REPRO_BENCH_SCALE`` (default 400, overridable via the
  environment variable of the same name so CI can run smaller and a
  workstation larger);
* a **5/7/12 nm split** across the suite;
* per-design **diversity** in logic depth, cone overlap, clock flexibility,
  sizing headroom and violation pressure — the knobs that spread the
  per-design RL-CCD improvements across the wide range Table II reports
  (−3.6% to −64.4%).

Every spec is fully seeded: ``build_design`` is deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netlist.core import Netlist
from repro.netlist.generator import GeneratorConfig, generate_design
from repro.placement.global_place import PlacementConfig, place_design
from repro.timing.clock import ClockModel
from repro.timing.metrics import choose_clock_period
from repro.timing.sta import TimingAnalyzer

DEFAULT_SCALE = 400

# Above this cell count the O(n^2)-ish generate+place pipeline is replaced by
# the vectorized scale-path generator (benchsuite.scale.fast_design), which
# places inline.  The default BLOCKS at DEFAULT_SCALE stay well below it, so
# the smoke bench is byte-identical to the historical pipeline.
FAST_PATH_MIN_CELLS = 5_000


def bench_scale() -> int:
    """Cell-count divisor: paper cells / scale = our cells (env-overridable)."""
    value = int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    if value < 1:
        raise ValueError(f"REPRO_BENCH_SCALE must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class DesignSpec:
    """One Table-II block: identity plus generator/constraint knobs."""

    name: str
    paper_cells: int  # the industrial block's cell count
    library: str
    seed: int
    violating_fraction: float  # endpoint fraction violating at begin
    mean_depth: float = 9.0
    reuse_probability: float = 0.35
    flex_flop_fraction: float = 0.45
    low_headroom_cluster_fraction: float = 0.4
    n_clusters: int = 4

    def n_cells(self) -> int:
        return max(200, self.paper_cells // bench_scale())

    def generator_config(self) -> GeneratorConfig:
        n = self.n_cells()
        return GeneratorConfig(
            name=self.name,
            library=self.library,
            n_cells=n,
            n_inputs=max(8, n // 40),
            n_outputs=max(6, n // 60),
            n_clusters=self.n_clusters,
            mean_depth=self.mean_depth,
            reuse_probability=self.reuse_probability,
            flex_flop_fraction=self.flex_flop_fraction,
            low_headroom_cluster_fraction=self.low_headroom_cluster_fraction,
            seed=self.seed,
        )


# Paper cell counts from Table II; technology split and behavioural knobs
# chosen to spread design character (documented substitution — see DESIGN.md).
BLOCKS: Tuple[DesignSpec, ...] = (
    DesignSpec("block1", 577_000, "tech5", 101, 0.42, mean_depth=10, flex_flop_fraction=0.35),
    DesignSpec("block2", 1_300_000, "tech5", 102, 0.35, mean_depth=8, reuse_probability=0.30),
    DesignSpec("block3", 353_000, "tech5", 103, 0.45, mean_depth=11, low_headroom_cluster_fraction=0.6),
    DesignSpec("block4", 370_000, "tech5", 104, 0.45, mean_depth=11, flex_flop_fraction=0.60, low_headroom_cluster_fraction=0.6),
    DesignSpec("block5", 194_000, "tech5", 105, 0.45, flex_flop_fraction=0.55, low_headroom_cluster_fraction=0.5),
    DesignSpec("block6", 195_000, "tech5", 106, 0.40, mean_depth=9, reuse_probability=0.45),
    DesignSpec("block7", 416_000, "tech5", 107, 0.35, mean_depth=8, flex_flop_fraction=0.25),
    DesignSpec("block8", 135_000, "tech7", 108, 0.45, mean_depth=10, reuse_probability=0.40),
    DesignSpec("block9", 162_000, "tech7", 109, 0.28, mean_depth=7, flex_flop_fraction=0.55),
    DesignSpec("block10", 84_000, "tech7", 110, 0.50, mean_depth=12, flex_flop_fraction=0.20, low_headroom_cluster_fraction=0.7),
    DesignSpec("block11", 180_000, "tech7", 111, 0.40, flex_flop_fraction=0.50),
    DesignSpec("block12", 243_000, "tech7", 112, 0.45, mean_depth=10, low_headroom_cluster_fraction=0.5),
    DesignSpec("block13", 507_000, "tech7", 113, 0.38, mean_depth=8, reuse_probability=0.25),
    DesignSpec("block14", 816_000, "tech12", 114, 0.35, mean_depth=9, flex_flop_fraction=0.30),
    DesignSpec("block15", 821_000, "tech12", 115, 0.35, mean_depth=8),
    DesignSpec("block16", 432_000, "tech12", 116, 0.42, mean_depth=9, flex_flop_fraction=0.50, low_headroom_cluster_fraction=0.5),
    DesignSpec("block17", 507_000, "tech12", 117, 0.35, mean_depth=8, reuse_probability=0.40),
    DesignSpec("block18", 412_000, "tech12", 118, 0.45, mean_depth=11, flex_flop_fraction=0.25),
    DesignSpec("block19", 922_000, "tech12", 119, 0.32, mean_depth=8, flex_flop_fraction=0.45),
)

BLOCKS_BY_NAME: Dict[str, DesignSpec] = {spec.name: spec for spec in BLOCKS}


def get_block(name: str) -> DesignSpec:
    """Fetch a Table-II block spec by name."""
    try:
        return BLOCKS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown block {name!r}; available: {sorted(BLOCKS_BY_NAME)}"
        ) from None


@dataclass
class PreparedDesign:
    """A generated, placed design with its chosen clock constraint."""

    spec: DesignSpec
    netlist: Netlist
    clock_period: float


def build_design(spec: DesignSpec) -> PreparedDesign:
    """Generate, place and constrain one block (deterministic per spec).

    The clock period is chosen so that ``spec.violating_fraction`` of the
    endpoints violate at the post-global-placement begin state, putting the
    design in the regime the paper's Table II "begin" columns describe.
    """
    if spec.n_cells() >= FAST_PATH_MIN_CELLS:
        from repro.benchsuite.scale import fast_design

        netlist = fast_design(spec.generator_config())
    else:
        netlist = generate_design(spec.generator_config())
        place_design(netlist, PlacementConfig(seed=spec.seed))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, spec.violating_fraction)
    return PreparedDesign(spec=spec, netlist=netlist, clock_period=period)
