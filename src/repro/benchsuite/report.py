"""Plain-text rendering of benchmark results (Table-II style).

The benches print through these helpers so ``pytest benchmarks/`` output can
be compared side by side with the paper's tables and figures.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.benchsuite.ablations import AblationPoint
from repro.benchsuite.figures import Fig5Result, Fig6Result
from repro.benchsuite.table2 import Table2Row, summarize_improvements


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table-II rows (begin / default / RL-CCD column groups)."""
    header = (
        f"{'design':>10} {'cells':>6} | "
        f"{'WNS':>7} {'TNS':>9} {'#vio':>5} {'power':>8} | "
        f"{'WNS':>7} {'TNS':>9} {'#vio':>5} {'power':>8} {'rt':>5} | "
        f"{'WNS':>7} {'TNS':>9} {'(goal)':>9} {'#vio':>5} {'power':>8} {'rt':>5}"
    )
    group = (
        f"{'':>10} {'':>6} | {'begin (post global place)':^40} | "
        f"{'default tool flow':^38} | {'RL-CCD enhanced (ours)':^48}"
    )
    lines = [group, header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.design:>10} {r.num_cells:>6} | "
            f"{r.begin.wns:>7.3f} {r.begin.tns:>9.2f} {r.begin.nve:>5} "
            f"{r.begin_power.total:>8.2f} | "
            f"{r.default.final.wns:>7.3f} {r.default.final.tns:>9.2f} "
            f"{r.default.final.nve:>5} {r.default.final_power.total:>8.2f} "
            f"{1.0:>5.2f} | "
            f"{r.rlccd.final.wns:>7.3f} {r.rlccd.final.tns:>9.2f} "
            f"({r.tns_improvement_pct:>+6.1f}%) {r.rlccd.final.nve:>5} "
            f"{r.rlccd.final_power.total:>8.2f} {r.runtime_ratio:>5.1f}"
        )
    if rows:
        s = summarize_improvements(list(rows))
        lines.append("-" * len(header))
        lines.append(
            f"{'summary':>10}: avg TNS {s['avg_tns_improvement_pct']:+.1f}% "
            f"(max {s['max_tns_improvement_pct']:+.1f}%), "
            f"avg NVE {s['avg_nve_improvement_pct']:+.1f}%, "
            f"avg power {s['avg_power_change_pct']:+.2f}%, "
            f"improved {s['designs_improved']}/{s['num_designs']} designs"
        )
    return "\n".join(lines)


def format_fig5(result: Fig5Result) -> str:
    """Render the Fig.-5 histogram as juxtaposed text bars."""
    lines = [
        f"Fig.5 — clock arrival adjustments on {result.design} "
        f"(RL-CCD prioritized {result.num_prioritized} endpoints)",
        f"{'bin (ns)':>22} | {'default':>8} {'RL-CCD':>8}",
    ]
    peak = max(1, int(result.default_counts.max()), int(result.rlccd_counts.max()))
    for i in range(len(result.default_counts)):
        lo, hi = result.bin_edges[i], result.bin_edges[i + 1]
        d, r = int(result.default_counts[i]), int(result.rlccd_counts[i])
        bar_d = "#" * int(round(20 * d / peak))
        bar_r = "*" * int(round(20 * r / peak))
        lines.append(
            f"[{lo:>+8.3f},{hi:>+8.3f}) | {d:>8} {r:>8}   {bar_d:<20} {bar_r}"
        )
    lines.append(
        f"total |skew|: default {result.default_total_skew:.3f} ns, "
        f"RL-CCD {result.rlccd_total_skew:.3f} ns"
    )
    return "\n".join(lines)


def format_fig6(result: Fig6Result) -> str:
    """Render the Fig.-6 convergence comparison."""
    lines = [
        f"Fig.6 — transfer learning on {result.design} "
        f"(EP-GNN pre-trained on {', '.join(result.pretrain_designs)})",
        f"{'episode':>8} | {'scratch best TNS':>17} | {'transfer best TNS':>18}",
    ]
    n = max(len(result.scratch_curve), len(result.transfer_curve))
    for i in range(n):
        s = result.scratch_curve[i] if i < len(result.scratch_curve) else np.nan
        t = result.transfer_curve[i] if i < len(result.transfer_curve) else np.nan
        lines.append(f"{i + 1:>8} | {s:>17.3f} | {t:>18.3f}")
    lines.append(
        f"episodes to best: scratch {result.scratch_episodes_to_best}, "
        f"transfer {result.transfer_episodes_to_best}"
    )
    s_eps, t_eps = result.episodes_to_reach(result.scratch_final_best)
    lines.append(
        f"episodes to reach scratch-final quality "
        f"({result.scratch_final_best:.3f}): scratch {s_eps}, "
        f"transfer {t_eps or 'never'}"
    )
    return "\n".join(lines)


def format_ablation(title: str, points: Iterable[AblationPoint]) -> str:
    """Render one ablation table."""
    lines = [
        title,
        f"{'configuration':>28} | {'TNS':>9} {'WNS':>8} {'NVE':>5} {'#sel':>5}",
    ]
    for p in points:
        lines.append(
            f"{p.label:>28} | {p.tns:>9.3f} {p.wns:>8.3f} {p.nve:>5} "
            f"{p.num_selected:>5}"
        )
    return "\n".join(lines)


def format_phase_table(
    phases: Mapping[str, Mapping[str, float]], title: str = "phase timings"
) -> str:
    """Render an aggregated :mod:`repro.obs` phase table, busiest first.

    ``phases`` is the ``BENCH_*.json`` ``phases`` mapping (or the output of
    :func:`repro.obs.bench.aggregate_phases`): per phase name a dict with
    ``count`` / ``total_s`` / ``median_s`` / ``p90_s`` / ``max_s``.
    """
    lines = [
        title,
        f"{'phase':>28} | {'count':>7} {'total':>9} {'median':>9} "
        f"{'p90':>9} {'max':>9}",
    ]
    ordered = sorted(phases.items(), key=lambda kv: -float(kv[1]["total_s"]))
    for name, stats in ordered:
        lines.append(
            f"{name:>28} | {int(stats['count']):>7} "
            f"{float(stats['total_s']):>8.3f}s "
            f"{1e3 * float(stats['median_s']):>7.2f}ms "
            f"{1e3 * float(stats['p90_s']):>7.2f}ms "
            f"{1e3 * float(stats['max_s']):>7.2f}ms"
        )
    if not phases:
        lines.append("(no phases recorded — is the obs recorder enabled?)")
    return "\n".join(lines)


def format_bench(payload: Mapping) -> str:
    """Render a full BENCH payload: headline metrics plus the phase table."""
    metrics = payload.get("metrics", {})
    design = payload.get("design", {})
    lines = [
        f"bench {payload.get('git_sha', '?')} — design "
        f"{design.get('name', '?')} ({design.get('cells', '?')} cells, "
        f"{design.get('endpoints', '?')} endpoints), seed "
        f"{payload.get('seed', '?')}, total {payload.get('total_seconds', 0.0):.2f}s",
        f"  default flow TNS {metrics.get('default_tns', float('nan')):.3f} "
        f"(begin {metrics.get('begin_tns', float('nan')):.3f}), "
        f"RL best TNS {metrics.get('rlccd_best_tns', float('nan')):.3f} "
        f"over {metrics.get('episodes_run', '?')} episodes",
    ]
    sta = payload.get("sta") or {}
    sta_speedup = sta.get("sta_speedup")
    datapath_speedup = sta.get("datapath_speedup")
    if sta_speedup is not None and datapath_speedup is not None:
        lines.append(
            f"  incremental STA vs full engine: {sta_speedup:.2f}x on sta.* "
            f"phases, {datapath_speedup:.2f}x on the datapath phase"
        )
    rollout = payload.get("rollout") or {}
    pooled = rollout.get("pooled") or {}
    cached = rollout.get("cached_replay") or {}
    if pooled.get("speedup") is not None:
        lines.append(
            f"  rollout pool ({rollout.get('workers', '?')} workers, "
            f"{rollout.get('start_method', '?')}): "
            f"{pooled['speedup']:.2f}x vs sequential over "
            f"{rollout.get('tasks', '?')} tasks, cached replay "
            f"{cached.get('speedup', 0.0):.0f}x"
        )
    policy = payload.get("policy") or {}
    if policy.get("incremental_speedup") is not None:
        combined = policy.get("combined_speedup")
        combined_note = (
            f"{combined:.2f}x" if combined is not None else "n/a"
        )
        lines.append(
            f"  policy evaluation vs pre-optimization loop: {combined_note} "
            f"per-step median over {policy.get('steps', '?')} greedy steps "
            f"({policy.get('endpoints', '?')} endpoints) — incremental "
            f"EP-GNN vs full re-encode "
            f"{policy['incremental_speedup']:.2f}x, CSR cone pooling vs "
            f"loop {policy.get('pooling_speedup', 0.0):.2f}x"
        )
    distributed = payload.get("distributed") or {}
    dist_engine = distributed.get("distributed") or {}
    if dist_engine.get("speedup") is not None:
        service = distributed.get("cache_service") or {}
        replay = distributed.get("shared_cache_replay") or {}
        lines.append(
            f"  distributed actor–learner ({distributed.get('actors', '?')} "
            f"actors, {distributed.get('start_method', '?')}): "
            f"{dist_engine['speedup']:.2f}x vs sequential over "
            f"{distributed.get('tasks', '?')} tasks, shared-cache replay "
            f"{replay.get('speedup', 0.0):.0f}x "
            f"(service {service.get('hits', 0)}h/{service.get('misses', 0)}m)"
        )
    batch = payload.get("batch") or {}
    if batch.get("speedup") is not None:
        full = batch.get("full") or {}
        incr = batch.get("incremental") or {}
        incr_speedup = incr.get("speedup")
        incr_note = (
            f"{incr_speedup:.2f}x" if incr_speedup is not None else "n/a"
        )
        lines.append(
            f"  batched rollout (B={batch.get('batch_episodes', '?')}): "
            f"{batch['speedup']:.2f}x per-episode vs B=1 on the full "
            f"policy path "
            f"({1e3 * (full.get('batched') or {}).get('per_episode_s', 0.0):.2f} ms/ep "
            f"vs {1e3 * (full.get('single') or {}).get('per_episode_s', 0.0):.2f} ms/ep), "
            f"incremental path {incr_note}"
        )
    lines.append(format_phase_table(payload.get("phases", {})))
    return "\n".join(lines)


def format_ppa(title: str, points) -> str:
    """Render an A4/A5 PPA table (timing + power + area)."""
    lines = [
        title,
        f"{'configuration':>28} | {'TNS':>9} {'WNS':>8} {'NVE':>5} "
        f"{'#sel':>5} {'power':>9} {'area':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.label:>28} | {p.tns:>9.3f} {p.wns:>8.3f} {p.nve:>5} "
            f"{p.num_selected:>5} {p.power:>9.3f} {p.area:>9.1f}"
        )
    return "\n".join(lines)
