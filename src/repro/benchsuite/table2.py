"""Table-II harness: default tool flow vs. RL-CCD on each block.

For one block this runs, from the identical post-global-placement state:

1. the **begin** analysis (left-most Table-II columns: WNS/TNS/#vio/power);
2. the **default tool flow** (middle columns) — the CCD placement flow with
   no endpoint prioritization;
3. **RL-CCD training** (Algorithm 1) and the flow under the best selection
   found (right columns), reporting the TNS improvement percentage the
   paper quotes in parentheses, plus runtime normalized to the default flow.

All three share the same seed and the same optimization recipe, matching
the paper's apples-to-apples protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainConfig, TrainingResult, train_rlccd
from repro.benchsuite.designs import BLOCKS, DesignSpec, PreparedDesign, build_design
from repro.ccd.datapath_opt import DatapathConfig
from repro.ccd.flow import (
    FlowConfig,
    FlowResult,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.features.table1 import NUM_FEATURES
from repro.power.models import PowerReport
from repro.timing.metrics import TimingSummary


@dataclass(frozen=True)
class Table2Config:
    """Harness knobs: how hard to train per block."""

    rho: float = 0.3
    max_episodes: int = 24
    episodes_per_update: int = 2
    learning_rate: float = 2e-3
    plateau_patience: int = 3
    datapath_effort: float = 1.5
    seed: int = 0
    # Deployment guard: if no trained selection beat the default flow, ship
    # the empty prioritization (which IS the native flow — "note that V' is
    # an empty set in the native implementation", §III).  The paper's
    # integration would equally never apply a selection its own training
    # showed to be harmful.  Rows that fall back report 0% improvement.
    fallback_to_default: bool = True

    def flow_config(self, clock_period: float) -> FlowConfig:
        return FlowConfig(
            clock_period=clock_period,
            datapath=DatapathConfig(effort_per_violation=self.datapath_effort),
        )

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            max_episodes=self.max_episodes,
            episodes_per_update=self.episodes_per_update,
            learning_rate=self.learning_rate,
            plateau_patience=self.plateau_patience,
            seed=self.seed,
        )


@dataclass
class Table2Row:
    """One design's row: begin / default / RL-CCD column groups."""

    design: str
    num_cells: int
    begin: TimingSummary
    begin_power: PowerReport
    default: FlowResult
    rlccd: FlowResult
    rlccd_selected: int
    training: TrainingResult
    default_runtime: float
    rlccd_runtime: float  # training + final flow, wall seconds

    @property
    def tns_improvement_pct(self) -> float:
        """Paper's parenthesized metric: TNS reduction vs default flow (%)."""
        if self.default.final.tns == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.rlccd.final.tns / self.default.final.tns)

    @property
    def nve_improvement_pct(self) -> float:
        if self.default.final.nve == 0:
            return 0.0
        return 100.0 * (1.0 - self.rlccd.final.nve / self.default.final.nve)

    @property
    def power_change_pct(self) -> float:
        base = self.default.final_power.total
        if base == 0.0:
            return 0.0
        return 100.0 * (self.rlccd.final_power.total / base - 1.0)

    @property
    def runtime_ratio(self) -> float:
        """RL-CCD wall time normalized by the default flow (paper: 7–47×)."""
        if self.default_runtime <= 0:
            return float("inf")
        return self.rlccd_runtime / self.default_runtime


def run_table2_row(
    spec: DesignSpec,
    config: Table2Config = Table2Config(),
    prepared: Optional[PreparedDesign] = None,
) -> Table2Row:
    """Produce one Table-II row for ``spec`` (deterministic per config)."""
    design = prepared if prepared is not None else build_design(spec)
    netlist = design.netlist
    flow_config = config.flow_config(design.clock_period)

    env = EndpointSelectionEnv(netlist, design.clock_period, rho=config.rho)
    snapshot = snapshot_netlist_state(
        netlist, verify_clock_period=design.clock_period
    )

    # Default tool flow.
    t0 = time.perf_counter()
    default_result = run_flow(netlist, flow_config)
    default_runtime = time.perf_counter() - t0
    restore_netlist_state(netlist, snapshot)

    # RL-CCD: train, then report the flow under the best selection found.
    policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    t0 = time.perf_counter()
    training = train_rlccd(policy, env, flow_config, config.train_config())
    rlccd_runtime = time.perf_counter() - t0

    selection = training.best_selection
    if config.fallback_to_default and training.best_tns < default_result.final.tns:
        selection = []  # the native flow's (empty) prioritization

    restore_netlist_state(netlist, snapshot)
    rlccd_result = run_flow(netlist, flow_config, prioritized_endpoints=selection)
    restore_netlist_state(netlist, snapshot)

    return Table2Row(
        design=spec.name,
        num_cells=netlist.num_cells,
        begin=default_result.begin,
        begin_power=default_result.begin_power,
        default=default_result,
        rlccd=rlccd_result,
        rlccd_selected=len(selection),
        training=training,
        default_runtime=default_runtime,
        rlccd_runtime=rlccd_runtime,
    )


def run_table2(
    specs: Iterable[DesignSpec] = BLOCKS,
    config: Table2Config = Table2Config(),
) -> List[Table2Row]:
    """The full Table-II sweep (all 19 blocks by default)."""
    return [run_table2_row(spec, config) for spec in specs]


def summarize_improvements(rows: List[Table2Row]) -> dict:
    """Suite-level averages the paper quotes (avg −24% TNS, −19% NVE, ~0.2% power)."""
    tns = np.array([r.tns_improvement_pct for r in rows])
    nve = np.array([r.nve_improvement_pct for r in rows])
    power = np.array([r.power_change_pct for r in rows])
    return {
        "avg_tns_improvement_pct": float(tns.mean()),
        "max_tns_improvement_pct": float(tns.max()),
        "avg_nve_improvement_pct": float(nve.mean()),
        "max_nve_improvement_pct": float(nve.max()),
        "avg_power_change_pct": float(power.mean()),
        "designs_improved": int((tns > 0).sum()),
        "num_designs": len(rows),
    }
