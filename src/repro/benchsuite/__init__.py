"""Benchmark suite: the 19 blocks plus Table-II / Fig-5 / Fig-6 / ablation harnesses."""

from repro.benchsuite.ablations import (
    AblationPoint,
    PpaPoint,
    full_flow_comparison,
    masking_strategies,
    overfix_vs_underfix,
    rho_sweep,
    selection_baselines,
)
from repro.benchsuite.designs import (
    BLOCKS,
    BLOCKS_BY_NAME,
    DesignSpec,
    PreparedDesign,
    bench_scale,
    build_design,
    get_block,
)
from repro.benchsuite.figures import (
    Fig5Result,
    Fig6Result,
    fig5_arrival_histogram,
    fig6_transfer,
)
from repro.benchsuite.persistence import (
    compare_runs,
    load_rows,
    row_to_dict,
    save_rows,
)
from repro.benchsuite.report import (
    format_ablation,
    format_fig5,
    format_fig6,
    format_ppa,
    format_table2,
)
from repro.benchsuite.stats import (
    SweepResult,
    SweepSummary,
    seed_sweep,
    summarize_sweep,
)
from repro.benchsuite.table2 import (
    Table2Config,
    Table2Row,
    run_table2,
    run_table2_row,
    summarize_improvements,
)

__all__ = [
    "BLOCKS",
    "BLOCKS_BY_NAME",
    "DesignSpec",
    "PreparedDesign",
    "bench_scale",
    "build_design",
    "get_block",
    "Table2Config",
    "Table2Row",
    "run_table2",
    "run_table2_row",
    "summarize_improvements",
    "Fig5Result",
    "Fig6Result",
    "fig5_arrival_histogram",
    "fig6_transfer",
    "AblationPoint",
    "PpaPoint",
    "overfix_vs_underfix",
    "rho_sweep",
    "selection_baselines",
    "masking_strategies",
    "full_flow_comparison",
    "format_table2",
    "format_fig5",
    "format_fig6",
    "format_ablation",
    "format_ppa",
    "SweepResult",
    "SweepSummary",
    "seed_sweep",
    "summarize_sweep",
    "save_rows",
    "load_rows",
    "row_to_dict",
    "compare_runs",
]
