"""Figure harnesses: Fig. 5 (arrival-adjustment histogram) and Fig. 6
(transfer-learning convergence).

Fig. 5 — on block11, compare the distribution of per-flop clock arrival
adjustments produced by the default flow against the RL-enhanced flow,
bucketed into the same bins for both ("each pair of juxtaposed color bars
has the same range of arrival values"), alongside the number of endpoints
RL-CCD prioritized.

Fig. 6 — on block19, train RL-CCD from scratch vs. with a pre-trained
EP-GNN (transferred from the other same-technology blocks) and record the
best-so-far TNS per training iteration, demonstrating faster convergence
under transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import TrainingResult, train_rlccd
from repro.agent.transfer import pretrain_on_designs, transfer_epgnn
from repro.benchsuite.designs import BLOCKS, DesignSpec, build_design, get_block
from repro.benchsuite.table2 import Table2Config
from repro.ccd.flow import restore_netlist_state, run_flow, snapshot_netlist_state
from repro.features.table1 import NUM_FEATURES


@dataclass
class Fig5Result:
    """Histogram data for the Fig.-5 comparison."""

    design: str
    bin_edges: np.ndarray  # shared bins (ns)
    default_counts: np.ndarray
    rlccd_counts: np.ndarray
    num_prioritized: int
    default_total_skew: float
    rlccd_total_skew: float


def fig5_arrival_histogram(
    spec: Optional[DesignSpec] = None,
    config: Table2Config = Table2Config(),
    num_bins: int = 12,
) -> Fig5Result:
    """Regenerate Fig. 5 (default spec: block11, as in the paper)."""
    spec = spec if spec is not None else get_block("block11")
    design = build_design(spec)
    netlist = design.netlist
    flow_config = config.flow_config(design.clock_period)
    env = EndpointSelectionEnv(netlist, design.clock_period, rho=config.rho)
    snapshot = snapshot_netlist_state(netlist)

    default_result = run_flow(netlist, flow_config)
    restore_netlist_state(netlist, snapshot)

    policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    training = train_rlccd(policy, env, flow_config, config.train_config())
    restore_netlist_state(netlist, snapshot)
    rlccd_result = run_flow(
        netlist, flow_config, prioritized_endpoints=training.best_selection
    )
    restore_netlist_state(netlist, snapshot)

    default_adj = np.array(list(default_result.arrival_adjustments.values()))
    rlccd_adj = np.array(list(rlccd_result.arrival_adjustments.values()))
    all_adj = np.concatenate([default_adj, rlccd_adj]) if (default_adj.size or rlccd_adj.size) else np.zeros(1)
    lo, hi = float(all_adj.min()), float(all_adj.max())
    if lo == hi:
        lo, hi = lo - 1e-3, hi + 1e-3
    edges = np.linspace(lo, hi, num_bins + 1)
    return Fig5Result(
        design=spec.name,
        bin_edges=edges,
        default_counts=np.histogram(default_adj, bins=edges)[0],
        rlccd_counts=np.histogram(rlccd_adj, bins=edges)[0],
        num_prioritized=len(training.best_selection),
        default_total_skew=float(np.abs(default_adj).sum()) if default_adj.size else 0.0,
        rlccd_total_skew=float(np.abs(rlccd_adj).sum()) if rlccd_adj.size else 0.0,
    )


@dataclass
class Fig6Result:
    """Convergence curves for the Fig.-6 comparison."""

    design: str
    scratch_curve: np.ndarray  # best-so-far TNS per episode
    transfer_curve: np.ndarray
    scratch_episodes_to_best: int
    transfer_episodes_to_best: int
    pretrain_designs: List[str]

    @property
    def scratch_final_best(self) -> float:
        return float(self.scratch_curve[-1]) if self.scratch_curve.size else -np.inf

    def episodes_to_reach(self, target_tns: float) -> Tuple[int, int]:
        """Episodes each curve needs to reach ``target_tns`` (0 = never).

        The paper's Fig.-6 claim is exactly this with the scratch agent's
        final quality as the target: the transferred agent converges "to
        comparable optimization results ... in a much faster convergence
        rate".
        """

        def first_at(curve: np.ndarray) -> int:
            hits = np.nonzero(curve >= target_tns - 1e-9)[0]
            return int(hits[0]) + 1 if hits.size else 0

        return first_at(self.scratch_curve), first_at(self.transfer_curve)


def fig6_transfer(
    target: Optional[DesignSpec] = None,
    pretrain_specs: Optional[List[DesignSpec]] = None,
    config: Table2Config = Table2Config(),
) -> Fig6Result:
    """Regenerate Fig. 6 (default: block19, pre-trained on other tech12 blocks).

    The pre-training stage reuses one EP-GNN across the source designs (each
    with a fresh encoder/decoder), then the transferred agent and a
    from-scratch agent train on the unseen target under identical seeds.
    """
    target = target if target is not None else get_block("block19")
    if pretrain_specs is None:
        pretrain_specs = [
            s for s in BLOCKS if s.library == target.library and s.name != target.name
        ][:2]
    if not pretrain_specs:
        raise ValueError("fig6_transfer needs at least one pre-training design")

    # --- pre-train a shared EP-GNN on the source designs --------------- #
    tasks = []
    for spec in pretrain_specs:
        design = build_design(spec)
        env = EndpointSelectionEnv(design.netlist, design.clock_period, rho=config.rho)
        tasks.append((env, config.flow_config(design.clock_period)))
    pretrained, _ = pretrain_on_designs(
        tasks, NUM_FEATURES, config.train_config(), rng=config.seed
    )

    # --- target design: scratch vs transfer ---------------------------- #
    design = build_design(target)
    flow_config = config.flow_config(design.clock_period)

    env = EndpointSelectionEnv(design.netlist, design.clock_period, rho=config.rho)
    scratch_policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    scratch = train_rlccd(scratch_policy, env, flow_config, config.train_config())

    transfer_policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    transfer_epgnn(pretrained, transfer_policy)
    transfer = train_rlccd(transfer_policy, env, flow_config, config.train_config())

    return Fig6Result(
        design=target.name,
        scratch_curve=scratch.best_so_far_curve,
        transfer_curve=transfer.best_so_far_curve,
        scratch_episodes_to_best=_episodes_to_best(scratch),
        transfer_episodes_to_best=_episodes_to_best(transfer),
        pretrain_designs=[s.name for s in pretrain_specs],
    )


def _episodes_to_best(result: TrainingResult) -> int:
    """First episode index (1-based) at which the best TNS was reached."""
    curve = result.tns_curve
    if curve.size == 0:
        return 0
    return int(np.argmax(curve >= result.best_tns - 1e-12)) + 1
