"""Ablation harnesses for the paper's design choices.

* **A1 — over-fix vs under-fix** (§III-A: "we empirically observe that the
  proposed method (useful skew over-fix) works significantly better"):
  compare margining the selected endpoints to WNS (over-fix) against giving
  them a negative margin (under-fix: their apparent slack improves, so the
  skew engine de-prioritizes them and the data-path engine must carry them).
* **A2 — overlap threshold ρ** (§III-C / §IV-C): sweep ρ and report the
  selection sizes and achieved TNS; ρ = 1.0 disables masking entirely.
* **A3 — selection baselines** (§IV-A context): RL-CCD against no
  selection, worst-slack top-K, random-K, and greedy-overlap selection.
* **A4 — masking strategies with PPA quantification** (§V future work):
  fixed-ρ vs size-adaptive vs decaying masking, reporting timing, power
  *and area* of the resulting flows.
* **A5 — full-flow optimization** (§V future work): native multi-stage
  flow vs per-stage re-prioritization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.agent.baselines import (
    select_greedy_overlap,
    select_random,
    select_worst_slack,
)
from repro.agent.env import EndpointSelectionEnv
from repro.agent.policy import RLCCDPolicy
from repro.agent.reinforce import train_rlccd
from repro.benchsuite.designs import DesignSpec, build_design, get_block
from repro.benchsuite.table2 import Table2Config
from repro.ccd.flow import (
    FlowConfig,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.features.table1 import NUM_FEATURES


@dataclass
class AblationPoint:
    """One configuration's outcome."""

    label: str
    tns: float
    wns: float
    nve: int
    num_selected: int


def overfix_vs_underfix(
    spec: Optional[DesignSpec] = None,
    config: Table2Config = Table2Config(),
    underfix_margin: float = -0.05,
) -> List[AblationPoint]:
    """A1: same RL-trained selection, opposite margin directions.

    Defaults to block17, a design with a strong prioritization response,
    so the over-fix/under-fix contrast is visible above training noise.
    """
    spec = spec if spec is not None else get_block("block17")
    design = build_design(spec)
    netlist = design.netlist
    env = EndpointSelectionEnv(netlist, design.clock_period, rho=config.rho)
    snapshot = snapshot_netlist_state(netlist)

    policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    base_flow = config.flow_config(design.clock_period)
    training = train_rlccd(policy, env, base_flow, config.train_config())
    selection = training.best_selection

    points: List[AblationPoint] = []
    for label, margin_mode in (
        ("default (no selection)", None),
        ("over-fix (margin to WNS)", "wns"),
        (f"under-fix (margin {underfix_margin})", underfix_margin),
    ):
        restore_netlist_state(netlist, snapshot)
        flow_cfg = FlowConfig(
            clock_period=design.clock_period,
            datapath=base_flow.datapath,
            margin_mode=margin_mode if margin_mode is not None else "wns",
        )
        selected = [] if margin_mode is None else selection
        result = run_flow(netlist, flow_cfg, prioritized_endpoints=selected)
        points.append(
            AblationPoint(
                label=label,
                tns=result.final.tns,
                wns=result.final.wns,
                nve=result.final.nve,
                num_selected=len(selected),
            )
        )
    restore_netlist_state(netlist, snapshot)
    return points


def rho_sweep(
    spec: Optional[DesignSpec] = None,
    rhos: Sequence[float] = (0.1, 0.3, 0.6, 0.9, 1.0),
    config: Table2Config = Table2Config(),
) -> List[AblationPoint]:
    """A2: how the overlap threshold shapes selection size and quality.

    Uses the greedy-overlap selector (the agent's loop with a worst-first
    policy) so the sweep isolates the masking mechanism from RL noise.
    """
    spec = spec if spec is not None else get_block("block5")
    design = build_design(spec)
    netlist = design.netlist
    snapshot = snapshot_netlist_state(netlist)
    flow_cfg = config.flow_config(design.clock_period)

    points: List[AblationPoint] = []
    for rho in rhos:
        env = EndpointSelectionEnv(netlist, design.clock_period, rho=rho)
        selection = select_greedy_overlap(env)
        restore_netlist_state(netlist, snapshot)
        result = run_flow(netlist, flow_cfg, prioritized_endpoints=selection)
        points.append(
            AblationPoint(
                label=f"rho={rho}",
                tns=result.final.tns,
                wns=result.final.wns,
                nve=result.final.nve,
                num_selected=len(selection),
            )
        )
        restore_netlist_state(netlist, snapshot)
    return points


def selection_baselines(
    spec: Optional[DesignSpec] = None,
    config: Table2Config = Table2Config(),
) -> List[AblationPoint]:
    """A3: RL-CCD vs the non-learning selection heuristics."""
    spec = spec if spec is not None else get_block("block5")
    design = build_design(spec)
    netlist = design.netlist
    env = EndpointSelectionEnv(netlist, design.clock_period, rho=config.rho)
    snapshot = snapshot_netlist_state(netlist)
    flow_cfg = config.flow_config(design.clock_period)

    policy = RLCCDPolicy(NUM_FEATURES, rng=config.seed)
    training = train_rlccd(policy, env, flow_cfg, config.train_config())
    restore_netlist_state(netlist, snapshot)

    # Same deployment guard as the Table-II harness: if training found no
    # selection beating the native flow, RL-CCD ships the empty selection.
    default_tns = run_flow(netlist, flow_cfg).final.tns
    restore_netlist_state(netlist, snapshot)
    rl_selection = training.best_selection
    if config.fallback_to_default and training.best_tns < default_tns:
        rl_selection = []

    k = max(1, len(training.best_selection))
    selections = {
        "default (none)": [],
        f"worst-slack top-{k}": select_worst_slack(env, k),
        f"random-{k}": select_random(env, k, rng=config.seed),
        "greedy-overlap": select_greedy_overlap(env),
        "RL-CCD": rl_selection,
    }
    points: List[AblationPoint] = []
    for label, selection in selections.items():
        restore_netlist_state(netlist, snapshot)
        result = run_flow(netlist, flow_cfg, prioritized_endpoints=selection)
        points.append(
            AblationPoint(
                label=label,
                tns=result.final.tns,
                wns=result.final.wns,
                nve=result.final.nve,
                num_selected=len(selection),
            )
        )
    restore_netlist_state(netlist, snapshot)
    return points


@dataclass
class PpaPoint:
    """One configuration's full PPA outcome (A4/A5)."""

    label: str
    tns: float
    wns: float
    nve: int
    num_selected: int
    power: float
    area: float


def masking_strategies(
    spec: Optional[DesignSpec] = None,
    config: Table2Config = Table2Config(),
) -> List[PpaPoint]:
    """A4: quantify the PPA impact of overlap-masking variants.

    Uses the greedy-overlap selector under each strategy so differences are
    attributable to the masking rule, not to RL noise.  The paper's fixed
    ρ = 0.3 is the reference; size-adaptive and decaying thresholds are the
    future-work variants from :mod:`repro.features.adaptive_masking`.
    """
    from repro.features.adaptive_masking import DecayingRho, FixedRho, SizeAdaptiveRho
    from repro.power.models import report_power

    spec = spec if spec is not None else get_block("block5")
    design = build_design(spec)
    netlist = design.netlist
    snapshot = snapshot_netlist_state(netlist)
    flow_cfg = config.flow_config(design.clock_period)

    strategies = (
        FixedRho(config.rho),
        SizeAdaptiveRho(base_rho=config.rho),
        DecayingRho(),
    )
    points: List[PpaPoint] = []
    for strategy in strategies:
        env = EndpointSelectionEnv(
            netlist, design.clock_period, masking=strategy
        )
        selection = select_greedy_overlap(env)
        restore_netlist_state(netlist, snapshot)
        result = run_flow(netlist, flow_cfg, prioritized_endpoints=selection)
        points.append(
            PpaPoint(
                label=strategy.describe(),
                tns=result.final.tns,
                wns=result.final.wns,
                nve=result.final.nve,
                num_selected=len(selection),
                power=result.final_power.total,
                area=netlist.total_cell_area(),
            )
        )
        restore_netlist_state(netlist, snapshot)
    return points


def full_flow_comparison(
    spec: Optional[DesignSpec] = None,
    config: Table2Config = Table2Config(),
) -> List[PpaPoint]:
    """A5: native multi-stage flow vs per-stage re-prioritization."""
    from repro.agent.baselines import select_worst_slack
    from repro.ccd.fullflow import default_stages, run_full_flow
    from repro.power.models import report_power

    spec = spec if spec is not None else get_block("block5")
    design = build_design(spec)
    netlist = design.netlist
    snapshot = snapshot_netlist_state(netlist)
    stages = default_stages(design.clock_period)

    selectors = {
        "native full flow": None,
        "worst-slack each stage": lambda env: select_worst_slack(env, 8),
        "greedy-overlap each stage": select_greedy_overlap,
    }
    points: List[PpaPoint] = []
    for label, selector in selectors.items():
        result = run_full_flow(netlist, stages, selector)
        final_clock = result.stage_results[-1].clock
        power = report_power(netlist, final_clock)
        points.append(
            PpaPoint(
                label=label,
                tns=result.final.tns,
                wns=result.final.wns,
                nve=result.final.nve,
                num_selected=sum(result.selection_counts()),
                power=power.total,
                area=netlist.total_cell_area(),
            )
        )
        restore_netlist_state(netlist, snapshot)
    return points
