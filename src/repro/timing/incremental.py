"""Incremental STA: dirty-set–driven re-propagation inside ``analyze()``.

The full engine in :mod:`repro.timing.sta` recomputes every level on every
call even when a single cell was resized or a single flop's clock arrival
moved — and the CCD inner loops (:mod:`repro.ccd.datapath_opt` probes,
:mod:`repro.ccd.useful_skew` commit batches) call ``analyze()`` thousands of
times per flow run.  This module keeps the *last* analysis alive as an
:class:`IncrementalState` and re-propagates only what changed:

* **dirty cells** arrive from :meth:`TimingAnalyzer.notify_resize` (delay
  coefficients / load caps patched), :meth:`TimingAnalyzer.notify_skew`
  (clock arrivals moved) and — as a safety net — from diffing the clock
  model's per-flop arrivals against the cached vector, so an un-notified
  skew edit can never be read stale;
* the **forward pass** seeds a frontier from the dirty cells and walks the
  topological levels in order, recomputing only frontier cells and pruning
  any cell whose ``(arrival, slew)`` pair is unchanged within
  :data:`PRUNE_TOL`;
* the **backward pass** is symmetric: endpoints whose required time or
  margin changed, cells whose slew changed and the fan-in of re-coefficiented
  cells seed a reverse frontier that walks the levels backwards with the
  same pruning rule;
* **margins stay a view**: they only reseed the margin-aware backward pass
  (``required_eff``); arrivals, slews and true required times are never
  dirtied by applying or removing margins (that is why
  :meth:`TimingAnalyzer.notify_margins` is a documented no-op).

Every recomputation mirrors the full pass' arithmetic *expression by
expression*, so a recomputed value from unchanged inputs is bitwise equal
and prunes exactly; differences against a from-scratch run can only come
from pruned sub-:data:`PRUNE_TOL` residues.  The hot path runs on
Python-native scalars and adjacency lists rather than numpy: the typical
frontier is a handful of cells per level, far below the array size where
vectorization pays for its per-call overhead (the *full* engine owns the
opposite regime).  IEEE-754 double arithmetic is identical either way, so
the mirror stays bitwise.

Fallback rules (handled by :class:`~repro.timing.sta.TimingAnalyzer`):
structural edits (``invalidate()`` or an unnotified netlist mutation caught
by the mutation-version guard), a clock-period change, the first analysis of
a corner, and ``include_hold=True`` all run the full engine and refresh the
cached state.

Shadow-check mode (``REPRO_STA_CHECK=1``) re-runs the full engine after
every incremental analysis and asserts the two reports agree within
:data:`CHECK_ATOL` — the differential harness CI runs the fuzz suite under.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.timing.clock import ClockModel
from repro.timing.sta import (
    _NO_DRIVER,
    CompiledTiming,
    TimingReport,
    _backward_required,
    analyze,
)

#: A frontier cell whose recomputed arrival *and* slew both moved by no more
#: than this is pruned: its cached values are kept and its fanout is not
#: re-propagated.  The same tolerance prunes the backward pass.
PRUNE_TOL = 1e-12

#: Shadow-check agreement tolerance (absolute).  Looser than the pruning
#: tolerance because pruned residues may accumulate along deep paths.
CHECK_ATOL = 1e-9

#: Default-on switch for the incremental engine; set to a falsy value
#: (``0``/``false``/``no``/``off``) to force every analysis down the full
#: path.  Per-analyzer and per-flow overrides beat this global.
ENV_INCREMENTAL = "REPRO_STA_INCREMENTAL"

#: Truthy value turns on differential shadow checking of every incremental
#: analysis (expensive: each one also pays a full analysis).
ENV_CHECK = "REPRO_STA_CHECK"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")

_incremental: bool = (
    os.environ.get(ENV_INCREMENTAL, "").strip().lower() not in _FALSY
)
_check: bool = os.environ.get(ENV_CHECK, "").strip().lower() in _TRUTHY

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def incremental_enabled() -> bool:
    """Whether the incremental engine is globally enabled (default: yes)."""
    return _incremental


def set_incremental(value: bool) -> bool:
    """Set the global incremental switch; returns the previous value."""
    global _incremental
    previous = _incremental
    _incremental = bool(value)
    return previous


def check_enabled() -> bool:
    """Whether shadow-check mode is on (``REPRO_STA_CHECK=1``)."""
    return _check


def set_check(value: bool) -> bool:
    """Set shadow-check mode; returns the previous value."""
    global _check
    previous = _check
    _check = bool(value)
    return previous


@dataclass
class IncrementalState:
    """One corner's cached analysis plus Python-native propagation mirrors.

    Topology and the cached analysis live as plain lists/floats (see the
    module docstring for why); the delay-coefficient mirrors are refreshed
    from the compiled arrays for exactly the cells ``notify_resize`` patched
    — which are, by construction, the cells it put in :attr:`pending`.
    Reports are assembled as fresh numpy arrays, so a caller-held
    :class:`TimingReport` never changes retroactively.
    """

    compiled: CompiledTiming
    period: float
    num_levels: int
    level: List[int]  # topological level per cell
    fanin: List[List[Tuple[int, float]]]  # (driver, wire_delay) per valid pin
    fanout: List[List[Tuple[int, float]]]  # (sink, wire_delay at its pin)
    is_flop: List[bool]
    is_src: List[bool]  # flop or input port (launch points)
    is_comb: List[bool]  # propagates required upstream
    is_outport: List[bool]
    is_ep: List[bool]  # flop or output port (capture points)
    ep_pos: List[int]  # endpoint position per cell, -1 elsewhere
    eps: List[int]  # endpoint cell index per position
    flop_cells: List[int]
    clk_to_q: List[float]
    setup: List[float]
    # Per-cell delay coefficients (refreshed for pending cells on analyze):
    intrinsic: List[float]
    slew_sens: List[float]
    drive_res: List[float]
    load_cap: List[float]
    slew_intr: List[float]
    slew_load: List[float]
    # Cached analysis state (the "last report", unpacked):
    clock_arrival: List[float]
    arrival: List[float]  # cell output arrival
    slew: List[float]  # cell output slew
    ep_arrival: List[float]  # endpoint data arrival
    ep_required: List[float]  # endpoint required time
    margin_vec: List[float]  # last applied margins
    required_true: List[float]  # true backward required
    #: Margin-aware required view; ``None`` while margins are all zero (the
    #: full engine aliases the true view then, and so do we).
    required_eff: Optional[List[float]]
    #: Cells dirtied by notify_* since the last analysis of this corner.
    pending: Set[int] = field(default_factory=set)


def build_state(
    compiled: CompiledTiming,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
    include_hold: bool = False,
) -> Tuple[TimingReport, IncrementalState]:
    """Run the full engine once and capture its state for future increments."""
    report = analyze(compiled, clock, margins, include_hold=include_hold)
    n = compiled.fanin_idx.shape[0]

    level = [0] * n
    for k, level_cells in enumerate(compiled.levels):
        for c in level_cells.tolist():
            level[c] = k

    fanin_rows = compiled.fanin_idx.tolist()
    wire_rows = compiled.fanin_wire_delay.tolist()
    fanin: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    fanout: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    for c in range(n):
        drivers = fanin_rows[c]
        wires = wire_rows[c]
        for p in range(len(drivers)):
            u = drivers[p]
            if u == _NO_DRIVER:
                continue
            fanin[c].append((u, wires[p]))
            fanout[u].append((c, wires[p]))

    is_flop = compiled.is_flop.tolist()
    is_inport = compiled.is_inport.tolist()
    is_outport = compiled.is_outport.tolist()
    is_src = [f or i for f, i in zip(is_flop, is_inport)]
    is_comb = [not (s or o) for s, o in zip(is_src, is_outport)]
    is_ep = [f or o for f, o in zip(is_flop, is_outport)]

    eps = compiled.endpoint_cells.tolist()
    ep_pos = [-1] * n
    for pos, e in enumerate(eps):
        ep_pos[e] = pos
    flop_cells = [c for c in range(n) if is_flop[c]]

    clock_arrival = [0.0] * n
    for f in flop_cells:
        clock_arrival[f] = clock.arrival(f)

    margin_vec = report.margins.tolist()
    if report.margins.any():
        # Recompute the margin-aware backward view with the exact same
        # function and inputs the full engine used, so the cached values are
        # bitwise identical to what the report's margined view was built
        # from (it is not recoverable from the report where it is +inf).
        required_eff: Optional[List[float]] = _backward_required(
            compiled, report.cell_slew, report.required - report.margins
        ).tolist()
    else:
        required_eff = None

    state = IncrementalState(
        compiled=compiled,
        period=clock.period,
        num_levels=len(compiled.levels),
        level=level,
        fanin=fanin,
        fanout=fanout,
        is_flop=is_flop,
        is_src=is_src,
        is_comb=is_comb,
        is_outport=is_outport,
        is_ep=is_ep,
        ep_pos=ep_pos,
        eps=eps,
        flop_cells=flop_cells,
        clk_to_q=compiled.clk_to_q.tolist(),
        setup=compiled.setup.tolist(),
        intrinsic=compiled.intrinsic.tolist(),
        slew_sens=compiled.slew_sens.tolist(),
        drive_res=compiled.drive_res.tolist(),
        load_cap=compiled.load_cap.tolist(),
        slew_intr=compiled.slew_intr.tolist(),
        slew_load=compiled.slew_load.tolist(),
        clock_arrival=clock_arrival,
        arrival=report.cell_arrival.tolist(),
        slew=report.cell_slew.tolist(),
        ep_arrival=report.arrival.tolist(),
        ep_required=report.required.tolist(),
        margin_vec=margin_vec,
        required_true=report.cell_required.tolist(),
        required_eff=required_eff,
    )
    return report, state


def incremental_analyze(
    state: IncrementalState,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
) -> Tuple[TimingReport, int]:
    """Re-propagate from the dirty set; returns ``(report, frontier_cells)``.

    The caller (:class:`~repro.timing.sta.TimingAnalyzer`) guarantees the
    compiled view is current (mutation-version guard) and the clock period
    matches the cached one; everything else — pending dirty cells, moved
    clock arrivals, changed margins — is discovered and handled here.
    """
    compiled = state.compiled
    num_levels = state.num_levels
    level = state.level
    fanin = state.fanin
    fanout = state.fanout
    is_flop = state.is_flop
    is_src = state.is_src
    is_outport = state.is_outport
    is_ep = state.is_ep
    ep_pos = state.ep_pos
    eps = state.eps
    intrinsic = state.intrinsic
    slew_sens = state.slew_sens
    drive_res = state.drive_res
    load_cap = state.load_cap
    slew_intr = state.slew_intr
    slew_load = state.slew_load
    arrival = state.arrival
    slew = state.slew
    ca = state.clock_arrival

    dirty = state.pending
    state.pending = set()

    # Refresh the coefficient mirrors for cells whose compiled entries
    # notify_resize patched — exactly the cells it marked dirty.
    for c in dirty:
        intrinsic[c] = float(compiled.intrinsic[c])
        slew_sens[c] = float(compiled.slew_sens[c])
        drive_res[c] = float(compiled.drive_res[c])
        load_cap[c] = float(compiled.load_cap[c])
        slew_intr[c] = float(compiled.slew_intr[c])
        slew_load[c] = float(compiled.slew_load[c])

    # Frontier cells are bucketed by topological level; the sweep touches
    # only levels that hold work and each cell is recomputed at most once.
    in_frontier = set(dirty)
    buckets: List[List[int]] = [[] for _ in range(num_levels)]
    for c in dirty:
        buckets[level[c]].append(c)
    ep_arr_dirty: Set[int] = set()
    ep_req_dirty: List[int] = []

    # ---- clock diff: the stale-skew safety net ----------------------- #
    # notify_skew() marks moved flops eagerly, but analyze() never trusts
    # it alone — a flop whose arrival differs from the cached vector is
    # dirtied regardless of whether anyone notified.
    for f in state.flop_cells:
        value = clock.arrival(f)
        if value != ca[f]:
            ca[f] = value
            ep_req_dirty.append(ep_pos[f])
            if f not in in_frontier:
                in_frontier.add(f)
                buckets[level[f]].append(f)

    # ---- forward re-propagation -------------------------------------- #
    slew_changed: List[int] = []
    frontier_cells = 0

    def commit(c: int, new_arr: float, new_slew: float) -> None:
        da = new_arr - arrival[c]
        ds = new_slew - slew[c]
        arr_moved = da > PRUNE_TOL or da < -PRUNE_TOL
        slew_moved = ds > PRUNE_TOL or ds < -PRUNE_TOL
        if not (arr_moved or slew_moved):
            return
        arrival[c] = new_arr
        slew[c] = new_slew
        if slew_moved:
            slew_changed.append(c)
        for s, _wire in fanout[c]:
            if is_ep[s]:
                ep_arr_dirty.add(ep_pos[s])
            # Flop sinks capture only (their Q arrival never depends on D);
            # every other sink — comb cells and output ports — re-propagates.
            if not is_flop[s] and s not in in_frontier:
                in_frontier.add(s)
                buckets[level[s]].append(s)

    for k in range(num_levels):
        cells = buckets[k]
        if not cells:
            continue
        buckets[k] = []
        # Sources first: a dirty flop/inport may feed comb cells of the
        # *same* level (levelization puts source-only-fed cells at level 0);
        # their pushes land in this level's freshly emptied bucket.
        combs = [c for c in cells if not is_src[c]]
        for c in cells:
            if not is_src[c]:
                continue
            frontier_cells += 1
            self_delay = drive_res[c] * load_cap[c]
            if is_flop[c]:
                new_arr = ca[c] + state.clk_to_q[c] + self_delay
            else:
                new_arr = self_delay
            commit(c, new_arr, slew_intr[c] + slew_load[c] * load_cap[c])
        if buckets[k]:
            combs.extend(buckets[k])
            buckets[k] = []
        for c in combs:
            frontier_cells += 1
            best = _NEG_INF
            if is_outport[c]:
                for u, wire in fanin[c]:
                    v = arrival[u] + wire
                    if v > best:
                        best = v
                new_arr = best + 0.0
            else:
                ic = intrinsic[c]
                ss = slew_sens[c]
                for u, wire in fanin[c]:
                    v = (arrival[u] + wire) + (ic + ss * slew[u])
                    if v > best:
                        best = v
                new_arr = best + drive_res[c] * load_cap[c]
            commit(c, new_arr, slew_intr[c] + slew_load[c] * load_cap[c])

    # ---- endpoint checks --------------------------------------------- #
    ep_arrival = state.ep_arrival
    ep_required = state.ep_required
    for pos in ep_arr_dirty:
        pins = fanin[eps[pos]]
        if pins:
            best = _NEG_INF
            for u, wire in pins:
                v = arrival[u] + wire
                if v > best:
                    best = v
            ep_arrival[pos] = best
        else:
            ep_arrival[pos] = 0.0

    ep_req_changed: List[int] = []
    period = state.period
    for pos in ep_req_dirty:
        e = eps[pos]
        if is_flop[e]:
            new_req = period + ca[e] - state.setup[e]
        else:
            new_req = period
        if new_req != ep_required[pos]:
            ep_req_changed.append(pos)
            ep_required[pos] = new_req

    # ---- margins diff (a view: reseeds only the eff backward pass) ---- #
    margin_vec = state.margin_vec
    margin_changed: List[int] = []
    if margins:
        for pos, e in enumerate(eps):
            m = float(margins.get(e, 0.0))
            if m != margin_vec[pos]:
                margin_changed.append(pos)
                margin_vec[pos] = m
        any_margin = any(margin_vec)
    else:
        any_margin = False
        for pos, m in enumerate(margin_vec):
            if m != 0.0:
                margin_changed.append(pos)
                margin_vec[pos] = 0.0

    # ---- backward re-propagation ------------------------------------- #
    # Seeds: any cell whose slew changed (its own gate-delay contribution
    # to its required time moved), the fan-in of re-coefficiented cells
    # (their gate delay as seen from upstream moved), and the fan-in of
    # endpoints whose required seed moved.
    cell_seeds = list(slew_changed)
    for c in dirty:
        for u, _wire in fanin[c]:
            cell_seeds.append(u)

    frontier_cells += _backward_incremental(
        state, state.required_true, ep_required, cell_seeds, ep_req_changed
    )

    if not any_margin:
        state.required_eff = None
    else:
        ep_eff_dirty = ep_req_changed + margin_changed
        if state.required_eff is None:
            # Margins just appeared: the eff view currently equals the true
            # view (which the pass above already brought up to date), so
            # only the freshly margined endpoints need re-seeding.
            state.required_eff = list(state.required_true)
            eff_seeds: List[int] = []
        else:
            eff_seeds = cell_seeds
        ep_seed_eff = [r - m for r, m in zip(ep_required, margin_vec)]
        frontier_cells += _backward_incremental(
            state, state.required_eff, ep_seed_eff, eff_seeds, ep_eff_dirty
        )

    # ---- assemble the report (fresh arrays: the cache keeps mutating) - #
    arr = np.array(arrival)
    required_true = np.array(state.required_true)
    worst_true = np.where(
        np.isfinite(required_true), required_true - arr, np.inf
    )
    if state.required_eff is None:
        worst_eff = worst_true.copy()
    else:
        required_eff = np.array(state.required_eff)
        worst_eff = np.where(
            np.isfinite(required_eff), required_eff - arr, np.inf
        )
    ep_arr = np.array(ep_arrival)
    ep_req = np.array(ep_required)
    report = TimingReport(
        endpoints=compiled.endpoint_cells,
        arrival=ep_arr,
        required=ep_req,
        slack=ep_req - ep_arr,
        margins=np.array(margin_vec),
        cell_arrival=arr,
        cell_slew=np.array(slew),
        cell_required=required_true,
        cell_worst_slack=worst_true,
        cell_worst_slack_margined=worst_eff,
    )
    return report, frontier_cells


def _backward_incremental(
    state: IncrementalState,
    required: List[float],
    ep_seed: Sequence[float],
    cell_seeds: List[int],
    ep_dirty_pos: List[int],
) -> int:
    """Pruned reverse-level sweep updating ``required`` in place.

    ``ep_seed`` is the per-endpoint required seed of this view (true:
    ``ep_required``; margin-aware: ``ep_required − margins``);
    ``cell_seeds`` are cells to recompute up front (duplicates fine) and
    ``ep_dirty_pos`` endpoint positions whose seed moved (their fan-in
    joins the frontier).  Returns the number of cells recomputed.
    """
    fanin = state.fanin
    fanout = state.fanout
    is_src = state.is_src
    is_comb = state.is_comb
    is_ep = state.is_ep
    ep_pos = state.ep_pos
    level = state.level
    slew = state.slew
    intrinsic = state.intrinsic
    slew_sens = state.slew_sens
    drive_res = state.drive_res
    load_cap = state.load_cap

    in_frontier: Set[int] = set()
    buckets: List[List[int]] = [[] for _ in range(state.num_levels)]
    # Sources (flops/inports) sit at level 0 alongside the comb cells they
    # drive, so a same-level push would arrive mid-sweep; since sources
    # never push further, they are batched after the sweep instead (mirror
    # of the forward pass' two-phase level 0).
    src_batch: List[int] = []

    def push(u: int) -> None:
        if u in in_frontier:
            return
        in_frontier.add(u)
        if is_src[u]:
            src_batch.append(u)
        else:
            buckets[level[u]].append(u)

    for u in cell_seeds:
        push(u)
    for pos in ep_dirty_pos:
        for u, _wire in fanin[state.eps[pos]]:
            push(u)

    def recompute(u: int) -> float:
        best = _POS_INF
        su = slew[u]
        for s, wire in fanout[u]:
            if is_ep[s]:
                contrib = ep_seed[ep_pos[s]] - wire
            else:
                contrib = (
                    required[s]
                    - (intrinsic[s] + slew_sens[s] * su + drive_res[s] * load_cap[s])
                    - wire
                )
            if contrib < best:
                best = contrib
        return best

    recomputed = 0
    for k in range(state.num_levels - 1, -1, -1):
        cells = buckets[k]
        if not cells:
            continue
        # Pushes land strictly below level k (or in src_batch), never
        # behind the sweep — the bucket can be iterated as-is.
        for u in cells:
            recomputed += 1
            new_req = recompute(u)
            old = required[u]
            if new_req == old:
                continue
            d = new_req - old
            if -PRUNE_TOL <= d <= PRUNE_TOL:
                continue
            required[u] = new_req
            # Only combinational cells propagate required times upstream; a
            # changed flop/port required is terminal (the full pass masks
            # them out of the reverse sweep the same way).
            if is_comb[u]:
                for v, _wire in fanin[u]:
                    push(v)

    for u in src_batch:
        recomputed += 1
        required[u] = recompute(u)
    return recomputed


# ---------------------------------------------------------------------- #
# Differential shadow check (REPRO_STA_CHECK=1)
# ---------------------------------------------------------------------- #
_COMPARED_FIELDS = (
    "arrival",
    "required",
    "slack",
    "margins",
    "cell_arrival",
    "cell_slew",
    "cell_required",
    "cell_worst_slack",
    "cell_worst_slack_margined",
)


def assert_reports_equal(
    incremental: TimingReport,
    full: TimingReport,
    atol: float = CHECK_ATOL,
) -> None:
    """Raise ``RuntimeError`` if the two reports disagree beyond ``atol``."""
    if not np.array_equal(incremental.endpoints, full.endpoints):
        raise RuntimeError(
            "incremental STA drift: endpoint ordering differs from the "
            "full engine's canonical order"
        )
    mismatches: List[str] = []
    for name in _COMPARED_FIELDS:
        a = getattr(incremental, name)
        b = getattr(full, name)
        if not np.allclose(a, b, rtol=0.0, atol=atol):
            finite = np.isfinite(a) & np.isfinite(b)
            worst = float(np.abs(a[finite] - b[finite]).max()) if finite.any() else np.inf
            if np.any(np.isfinite(a) != np.isfinite(b)):
                worst = np.inf
            mismatches.append(f"{name} (max |Δ|={worst:.3e})")
    if mismatches:
        raise RuntimeError(
            "incremental STA drift beyond "
            f"{atol:g} in: {', '.join(mismatches)} — a dirty-set "
            "notification is missing or the pruning rule is unsound"
        )


__all__ = [
    "CHECK_ATOL",
    "ENV_CHECK",
    "ENV_INCREMENTAL",
    "PRUNE_TOL",
    "IncrementalState",
    "assert_reports_equal",
    "build_state",
    "check_enabled",
    "incremental_analyze",
    "incremental_enabled",
    "set_check",
    "set_incremental",
]
