"""Incremental STA: dirty-set–driven re-propagation inside ``analyze()``.

The full engine in :mod:`repro.timing.sta` recomputes every level on every
call even when a single cell was resized or a single flop's clock arrival
moved — and the CCD inner loops (:mod:`repro.ccd.datapath_opt` probes,
:mod:`repro.ccd.useful_skew` commit batches) call ``analyze()`` thousands of
times per flow run.  This module keeps the *last* analysis alive as an
:class:`IncrementalState` and re-propagates only what changed:

* **dirty cells** arrive from :meth:`TimingAnalyzer.notify_resize` (delay
  coefficients / load caps patched), :meth:`TimingAnalyzer.notify_skew`
  (clock arrivals moved) and — as a safety net — from diffing the clock
  model's per-flop arrivals against the cached vector, so an un-notified
  skew edit can never be read stale;
* the **forward pass** seeds a frontier from the dirty cells and walks the
  topological levels in order, recomputing only frontier cells and pruning
  any cell whose ``(arrival, slew)`` pair is unchanged within
  :data:`PRUNE_TOL`;
* the **backward pass** is symmetric: endpoints whose required time or
  margin changed, cells whose slew changed and the fan-in of re-coefficiented
  cells seed a reverse frontier that walks the levels backwards with the
  same pruning rule;
* **margins stay a view**: they only reseed the margin-aware backward pass
  (``required_eff``); arrivals, slews and true required times are never
  dirtied by applying or removing them (that is why
  :meth:`TimingAnalyzer.notify_margins` is a documented no-op).

Every recomputation mirrors the full pass' arithmetic *expression by
expression*, so a recomputed value from unchanged inputs is bitwise equal
and prunes exactly; differences against a from-scratch run can only come
from pruned sub-:data:`PRUNE_TOL` residues.

**Two kernels per level, one arithmetic.**  The frontier is bucketed by
topological level; each level-slice runs either a Python-scalar loop (below
:func:`vector_threshold` cells — the typical smoke-scale frontier of a
handful of cells, where numpy's per-call overhead dominates) or a vectorized
NumPy kernel (one gather over the dense ``fanin_idx`` rows / the CSR fanout
slices of :class:`~repro.timing.sta.CompiledTiming`, a batched max/min
reduction, a vectorized ``|Δ| > ε`` prune and a CSR frontier expansion).
Both paths evaluate the *same* IEEE-754 expression trees — max/min
reductions over non-NaN doubles are exact and order-independent — so the
switch is bitwise invisible, which the differential fuzz suite asserts
byte-for-byte.  Scratch (the seen mask, level buckets) is preallocated in
the state and reset in O(frontier), so repeated ``analyze()`` calls allocate
O(frontier), not O(n).

Fallback rules (handled by :class:`~repro.timing.sta.TimingAnalyzer`):
structural edits (``invalidate()`` or an unnotified netlist mutation caught
by the mutation-version guard), a clock-period change, the first analysis of
a corner, and ``include_hold=True`` all run the full engine and refresh the
cached state.

Shadow-check mode (``REPRO_STA_CHECK=1``) re-runs the full engine after
every incremental analysis and asserts the two reports agree within
:data:`CHECK_ATOL` — the differential harness CI runs the fuzz suite under.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.timing.clock import ClockModel
from repro.timing.sta import (
    _NO_DRIVER,
    CompiledTiming,
    TimingReport,
    _backward_required,
    analyze,
    csr_edge_indices,
)

#: A frontier cell whose recomputed arrival *and* slew both moved by no more
#: than this is pruned: its cached values are kept and its fanout is not
#: re-propagated.  The same tolerance prunes the backward pass.
PRUNE_TOL = 1e-12

#: Shadow-check agreement tolerance (absolute).  Looser than the pruning
#: tolerance because pruned residues may accumulate along deep paths.
CHECK_ATOL = 1e-9

#: Default-on switch for the incremental engine; set to a falsy value
#: (``0``/``false``/``no``/``off``) to force every analysis down the full
#: path.  Per-analyzer and per-flow overrides beat this global.
ENV_INCREMENTAL = "REPRO_STA_INCREMENTAL"

#: Truthy value turns on differential shadow checking of every incremental
#: analysis (expensive: each one also pays a full analysis).
ENV_CHECK = "REPRO_STA_CHECK"

#: Density switch: a frontier level-slice with at least this many cells runs
#: the vectorized kernel, smaller slices the scalar loop.  ``0`` forces the
#: kernel path everywhere, a huge value forces the scalar path (both used by
#: the differential fuzz suite to pin byte-equality of the two paths).
ENV_VEC_THRESHOLD = "REPRO_STA_VEC_THRESHOLD"

#: Default frontier-size threshold for the vectorized kernels.  Measured
#: crossover on the smoke designs is a few dozen cells per level; below it
#: numpy's per-call overhead loses to the scalar loop.
DEFAULT_VEC_THRESHOLD = 64

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")

_incremental: bool = (
    os.environ.get(ENV_INCREMENTAL, "").strip().lower() not in _FALSY
)
_check: bool = os.environ.get(ENV_CHECK, "").strip().lower() in _TRUTHY


def _env_threshold() -> int:
    raw = os.environ.get(ENV_VEC_THRESHOLD, "").strip()
    if not raw:
        return DEFAULT_VEC_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_VEC_THRESHOLD


_vec_threshold: int = _env_threshold()

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def incremental_enabled() -> bool:
    """Whether the incremental engine is globally enabled (default: yes)."""
    return _incremental


def set_incremental(value: bool) -> bool:
    """Set the global incremental switch; returns the previous value."""
    global _incremental
    previous = _incremental
    _incremental = bool(value)
    return previous


def check_enabled() -> bool:
    """Whether shadow-check mode is on (``REPRO_STA_CHECK=1``)."""
    return _check


def set_check(value: bool) -> bool:
    """Set shadow-check mode; returns the previous value."""
    global _check
    previous = _check
    _check = bool(value)
    return previous


def vector_threshold() -> int:
    """Current frontier-size threshold for the vectorized level kernels."""
    return _vec_threshold


def set_vector_threshold(value: int) -> int:
    """Set the density-switch threshold; returns the previous value.

    ``0`` forces every level-slice down the vectorized kernel; a huge value
    forces the scalar loop.  The differential fuzz suite toggles this to
    assert both paths produce byte-identical reports.
    """
    global _vec_threshold
    previous = _vec_threshold
    _vec_threshold = max(0, int(value))
    return previous


class _Frontier:
    """Preallocated frontier scratch: seen mask + per-level buckets.

    Buckets hold a mix of Python ints (scalar pushes) and int64 arrays
    (vectorized pushes); :func:`_batch_array` / :func:`_batch_list`
    materialize a level's batch in whichever form its kernel wants.
    ``reset()`` clears only what was touched, so the per-analysis cost is
    O(frontier) even though the mask is O(n).
    """

    __slots__ = ("seen", "buckets", "src_batch", "touched")

    def __init__(self, num_levels: int, n: int) -> None:
        self.seen = np.zeros(n, dtype=bool)
        self.buckets: List[List[Any]] = [[] for _ in range(max(num_levels, 1))]
        self.src_batch: List[Any] = []
        self.touched: List[Any] = []

    def reset(self) -> None:
        seen = self.seen
        for item in self.touched:
            seen[item] = False
        self.touched.clear()
        self.src_batch.clear()
        for bucket in self.buckets:
            if bucket:
                del bucket[:]


def _batch_size(items: Sequence[Any]) -> int:
    total = 0
    for item in items:
        total += item.size if isinstance(item, np.ndarray) else 1
    return total


def _batch_list(items: Sequence[Any]) -> List[int]:
    out: List[int] = []
    for item in items:
        if isinstance(item, np.ndarray):
            out.extend(item.tolist())
        else:
            out.append(item)
    return out


def _batch_array(items: Sequence[Any]) -> np.ndarray:
    arrays: List[np.ndarray] = []
    ints: List[int] = []
    for item in items:
        if isinstance(item, np.ndarray):
            arrays.append(item)
        else:
            ints.append(item)
    if ints:
        arrays.append(np.asarray(ints, dtype=np.int64))
    if len(arrays) == 1:
        return arrays[0]
    return np.concatenate(arrays)


@dataclass
class IncrementalState:
    """One corner's cached analysis in array form.

    The cached timing vectors are the canonical state both kernel paths
    read and write in place; topology, levels and delay coefficients are
    *not* mirrored — both paths index the compiled arrays directly, so a
    ``notify_resize`` coefficient patch is immediately visible.  Reports
    are assembled as fresh copies, so a caller-held
    :class:`~repro.timing.sta.TimingReport` never changes retroactively.
    """

    compiled: CompiledTiming
    period: float
    num_levels: int
    # Cached analysis state (the "last report", unpacked):
    clock_arrival: np.ndarray  # cached per-cell clock arrival
    arrival: np.ndarray  # cell output arrival
    slew: np.ndarray  # cell output slew
    ep_arrival: np.ndarray  # endpoint data arrival
    ep_required: np.ndarray  # endpoint required time
    margin_vec: np.ndarray  # last applied margins per endpoint position
    required_true: np.ndarray  # true backward required
    #: Margin-aware required view; ``None`` while margins are all zero (the
    #: full engine aliases the true view then, and so do we).
    required_eff: Optional[np.ndarray]
    #: Flops with a non-zero cached clock arrival (keeps the clock diff
    #: O(#skewed) instead of O(#flops)).
    skewed_flops: Set[int] = field(default_factory=set)
    #: Endpoint positions with a non-zero cached margin (keeps the margin
    #: diff O(#margined)).
    margined: Set[int] = field(default_factory=set)
    #: Cells dirtied by notify_* since the last analysis of this corner.
    pending: Set[int] = field(default_factory=set)
    #: Preallocated frontier scratch, shared by the forward and backward
    #: sweeps of one analysis (reset between passes).
    scratch: Optional[_Frontier] = None


def build_state(
    compiled: CompiledTiming,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
    include_hold: bool = False,
) -> Tuple[TimingReport, IncrementalState]:
    """Run the full engine once and capture its state for future increments."""
    report = analyze(compiled, clock, margins, include_hold=include_hold)
    n = compiled.fanin_idx.shape[0]

    clock_arrival = np.zeros(n)
    skewed: Set[int] = set()
    for f, value in clock.arrivals.items():
        f = int(f)
        if 0 <= f < n and compiled.is_flop[f]:
            clock_arrival[f] = value
            if value != 0.0:
                skewed.add(f)

    margin_vec = report.margins.copy()
    if report.margins.any():
        # Recompute the margin-aware backward view with the exact same
        # function and inputs the full engine used, so the cached values are
        # bitwise identical to what the report's margined view was built
        # from (it is not recoverable from the report where it is +inf).
        required_eff: Optional[np.ndarray] = _backward_required(
            compiled, report.cell_slew, report.required - report.margins
        )
    else:
        required_eff = None

    state = IncrementalState(
        compiled=compiled,
        period=clock.period,
        num_levels=len(compiled.levels),
        clock_arrival=clock_arrival,
        arrival=report.cell_arrival.copy(),
        slew=report.cell_slew.copy(),
        ep_arrival=report.arrival.copy(),
        ep_required=report.required.copy(),
        margin_vec=margin_vec,
        required_true=report.cell_required.copy(),
        required_eff=required_eff,
        skewed_flops=skewed,
        margined=set(np.nonzero(margin_vec)[0].tolist()),
    )
    return report, state


class _Counters:
    """Per-analysis kernel-dispatch tally (flushed once into obs counters)."""

    __slots__ = ("vectorized", "scalar", "frontier")

    def __init__(self) -> None:
        self.vectorized = 0
        self.scalar = 0
        self.frontier = 0


def incremental_analyze(
    state: IncrementalState,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
) -> Tuple[TimingReport, int]:
    """Re-propagate from the dirty set; returns ``(report, frontier_cells)``.

    The caller (:class:`~repro.timing.sta.TimingAnalyzer`) guarantees the
    compiled view is current (mutation-version guard) and the clock period
    matches the cached one; everything else — pending dirty cells, moved
    clock arrivals, changed margins — is discovered and handled here.
    """
    compiled = state.compiled
    is_flop = compiled.is_flop
    level_of = compiled.level_of
    ep_pos = compiled.ep_pos
    eps = compiled.endpoint_cells
    arrival = state.arrival
    ca = state.clock_arrival

    dirty = state.pending
    state.pending = set()

    fr = state.scratch
    if fr is None:
        fr = state.scratch = _Frontier(state.num_levels, arrival.shape[0])
    else:
        fr.reset()  # clear the previous analysis' backward-pass residue
    counters = _Counters()

    # Frontier cells are bucketed by topological level; the sweep touches
    # only levels that hold work and each cell is recomputed at most once.
    seen = fr.seen
    buckets = fr.buckets
    touched = fr.touched
    for c in dirty:
        if not seen[c]:
            seen[c] = True
            touched.append(c)
            buckets[level_of[c]].append(c)
    ep_arr_dirty: Set[int] = set()
    ep_req_dirty: List[int] = []

    # ---- clock diff: the stale-skew safety net ----------------------- #
    # notify_skew() marks moved flops eagerly, but analyze() never trusts
    # it alone — a flop whose arrival differs from the cached vector is
    # dirtied regardless of whether anyone notified.  Only flops present in
    # the clock's (sparse) arrival dict or with a non-zero cached value can
    # differ, so the diff is O(#skewed), not O(#flops).
    skewed = state.skewed_flops
    candidates = set(clock.arrivals)
    candidates.update(skewed)
    for f in candidates:
        if not is_flop[f]:
            continue
        value = clock.arrivals.get(f, 0.0)
        if value != ca[f]:
            ca[f] = value
            ep_req_dirty.append(int(ep_pos[f]))
            if not seen[f]:
                seen[f] = True
                touched.append(f)
                buckets[level_of[f]].append(f)
        if value != 0.0:
            skewed.add(f)
        else:
            skewed.discard(f)

    # ---- forward re-propagation -------------------------------------- #
    slew_changed: List[Any] = []
    _forward_sweep(state, fr, counters, slew_changed, ep_arr_dirty)

    # ---- endpoint checks --------------------------------------------- #
    ep_arrival = state.ep_arrival
    ep_required = state.ep_required
    if ep_arr_dirty:
        _recompute_ep_arrival(state, sorted(ep_arr_dirty))

    ep_req_changed: List[int] = []
    period = state.period
    setup = compiled.setup
    for pos in ep_req_dirty:
        e = eps[pos]
        if is_flop[e]:
            new_req = period + ca[e] - setup[e]
        else:
            new_req = period
        if new_req != ep_required[pos]:
            ep_req_changed.append(pos)
            ep_required[pos] = new_req

    # ---- margins diff (a view: reseeds only the eff backward pass) ---- #
    # Only endpoints named in the mapping or carrying a cached non-zero
    # margin can differ, so this too is O(#margined) rather than O(#eps).
    margin_vec = state.margin_vec
    margined = state.margined
    margin_changed: List[int] = []
    if margins:
        positions = {int(ep_pos[e]) for e in margins if ep_pos[e] >= 0}
        positions.update(margined)
        for pos in positions:
            m = float(margins.get(int(eps[pos]), 0.0))
            if m != margin_vec[pos]:
                margin_changed.append(pos)
                margin_vec[pos] = m
            if m != 0.0:
                margined.add(pos)
            else:
                margined.discard(pos)
        any_margin = bool(margined)
    else:
        any_margin = False
        for pos in sorted(margined):
            margin_changed.append(pos)
            margin_vec[pos] = 0.0
        margined.clear()

    # ---- backward re-propagation ------------------------------------- #
    # Seeds: any cell whose slew changed (its own gate-delay contribution
    # to its required time moved), the fan-in of re-coefficiented cells
    # (their gate delay as seen from upstream moved), and the fan-in of
    # endpoints whose required seed moved.
    cell_seeds: List[Any] = list(slew_changed)
    if dirty:
        rows = compiled.fanin_idx[
            np.fromiter(dirty, dtype=np.int64, count=len(dirty))
        ]
        drivers = rows[rows != _NO_DRIVER]
        if drivers.size:
            cell_seeds.append(drivers)

    _backward_incremental(
        state, fr, counters, state.required_true, ep_required, cell_seeds,
        ep_req_changed,
    )

    if not any_margin:
        state.required_eff = None
    else:
        ep_eff_dirty = ep_req_changed + margin_changed
        if state.required_eff is None:
            # Margins just appeared: the eff view currently equals the true
            # view (which the pass above already brought up to date), so
            # only the freshly margined endpoints need re-seeding.
            state.required_eff = state.required_true.copy()
            eff_seeds: List[Any] = []
        else:
            eff_seeds = cell_seeds
        ep_seed_eff = ep_required - margin_vec
        _backward_incremental(
            state, fr, counters, state.required_eff, ep_seed_eff, eff_seeds,
            ep_eff_dirty,
        )

    if counters.vectorized:
        obs.incr("sta.vectorized_levels", counters.vectorized)
    if counters.scalar:
        obs.incr("sta.scalar_levels", counters.scalar)

    # ---- assemble the report (fresh arrays: the cache keeps mutating) - #
    arr = arrival.copy()
    required_true = state.required_true.copy()
    worst_true = np.where(
        np.isfinite(required_true), required_true - arr, np.inf
    )
    if state.required_eff is None:
        worst_eff = worst_true.copy()
    else:
        required_eff = state.required_eff.copy()
        worst_eff = np.where(
            np.isfinite(required_eff), required_eff - arr, np.inf
        )
    ep_arr = ep_arrival.copy()
    ep_req = ep_required.copy()
    report = TimingReport(
        endpoints=compiled.endpoint_cells,
        arrival=ep_arr,
        required=ep_req,
        slack=ep_req - ep_arr,
        margins=margin_vec.copy(),
        cell_arrival=arr,
        cell_slew=state.slew.copy(),
        cell_required=required_true,
        cell_worst_slack=worst_true,
        cell_worst_slack_margined=worst_eff,
    )
    return report, counters.frontier


# ---------------------------------------------------------------------- #
# Forward sweep: scalar loop + vectorized kernel per level-slice
# ---------------------------------------------------------------------- #
def _forward_sweep(
    state: IncrementalState,
    fr: _Frontier,
    counters: _Counters,
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    """Level-ordered forward re-propagation of the seeded frontier."""
    buckets = fr.buckets
    for k in range(state.num_levels):
        items = buckets[k]
        if not items:
            continue
        buckets[k] = []
        threshold = _vec_threshold
        size = _batch_size(items)
        if size >= threshold:
            cells = _batch_array(items)
            src_mask = state.compiled.is_src[cells]
            if src_mask.any():
                srcs = cells[src_mask]
                counters.vectorized += 1
                counters.frontier += int(srcs.size)
                _forward_src_vec(state, fr, srcs, slew_changed, ep_arr_dirty)
                combs = cells[~src_mask]
                # Source commits may push comb cells of this same level
                # (levelization puts source-only-fed cells at level 0);
                # fold the freshly landed bucket into this batch.
                extra = buckets[k]
                if extra:
                    buckets[k] = []
                    combs = np.concatenate([combs, _batch_array(extra)])
            else:
                combs = cells
            if combs.size:
                counters.vectorized += 1
                counters.frontier += int(combs.size)
                _forward_comb_vec(state, fr, combs, slew_changed, ep_arr_dirty)
        else:
            cells_list = _batch_list(items)
            is_src = state.compiled.is_src
            srcs = [c for c in cells_list if is_src[c]]
            combs_list = [c for c in cells_list if not is_src[c]]
            if srcs:
                counters.scalar += 1
                counters.frontier += len(srcs)
                _forward_src_scalar(state, fr, srcs, slew_changed, ep_arr_dirty)
                extra = buckets[k]
                if extra:
                    buckets[k] = []
                    combs_list.extend(_batch_list(extra))
            if combs_list:
                counters.scalar += 1
                counters.frontier += len(combs_list)
                _forward_comb_scalar(
                    state, fr, combs_list, slew_changed, ep_arr_dirty
                )


def _forward_push_scalar(
    state: IncrementalState,
    fr: _Frontier,
    c: int,
    ep_arr_dirty: Set[int],
) -> None:
    """Scalar fanout expansion of one changed cell (CSR slice walk)."""
    compiled = state.compiled
    indptr = compiled.fanout_indptr
    sinks = compiled.fanout_indices
    is_flop = compiled.is_flop
    is_ep = compiled.is_ep
    ep_pos = compiled.ep_pos
    level_of = compiled.level_of
    seen = fr.seen
    buckets = fr.buckets
    touched = fr.touched
    for j in range(indptr[c], indptr[c + 1]):
        s = int(sinks[j])
        if is_ep[s]:
            ep_arr_dirty.add(int(ep_pos[s]))
        # Flop sinks capture only (their Q arrival never depends on D);
        # every other sink — comb cells and output ports — re-propagates.
        if not is_flop[s] and not seen[s]:
            seen[s] = True
            touched.append(s)
            buckets[level_of[s]].append(s)


def _forward_push_vec(
    state: IncrementalState,
    fr: _Frontier,
    changed: np.ndarray,
    ep_arr_dirty: Set[int],
) -> None:
    """Vectorized fanout expansion: gather CSR slices of all changed cells."""
    compiled = state.compiled
    edges = csr_edge_indices(compiled.fanout_indptr, changed)
    if edges.size == 0:
        return
    sinks = compiled.fanout_indices[edges]
    ep_sinks = sinks[compiled.is_ep[sinks]]
    if ep_sinks.size:
        ep_arr_dirty.update(compiled.ep_pos[ep_sinks].tolist())
    push = sinks[~compiled.is_flop[sinks]]
    if push.size == 0:
        return
    fresh = push[~fr.seen[push]]
    if fresh.size == 0:
        return
    fresh = np.unique(fresh)
    fr.seen[fresh] = True
    fr.touched.append(fresh)
    levels = compiled.level_of[fresh]
    order = np.argsort(levels, kind="stable")
    fresh = fresh[order]
    levels = levels[order]
    uniq, starts = np.unique(levels, return_index=True)
    bounds = np.append(starts, fresh.size)
    buckets = fr.buckets
    for i, lv in enumerate(uniq.tolist()):
        buckets[lv].append(fresh[bounds[i] : bounds[i + 1]])


def _forward_src_scalar(
    state: IncrementalState,
    fr: _Frontier,
    srcs: List[int],
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    compiled = state.compiled
    arrival = state.arrival
    slew = state.slew
    ca = state.clock_arrival
    is_flop = compiled.is_flop
    drive_res = compiled.drive_res
    load_cap = compiled.load_cap
    clk_to_q = compiled.clk_to_q
    slew_intr = compiled.slew_intr
    slew_load = compiled.slew_load
    for c in srcs:
        self_delay = drive_res[c] * load_cap[c]
        if is_flop[c]:
            new_arr = ca[c] + clk_to_q[c] + self_delay
        else:
            new_arr = self_delay
        new_slew = slew_intr[c] + slew_load[c] * load_cap[c]
        da = new_arr - arrival[c]
        ds = new_slew - slew[c]
        arr_moved = da > PRUNE_TOL or da < -PRUNE_TOL
        slew_moved = ds > PRUNE_TOL or ds < -PRUNE_TOL
        if not (arr_moved or slew_moved):
            continue
        arrival[c] = new_arr
        slew[c] = new_slew
        if slew_moved:
            slew_changed.append(c)
        _forward_push_scalar(state, fr, c, ep_arr_dirty)


def _forward_comb_scalar(
    state: IncrementalState,
    fr: _Frontier,
    combs: List[int],
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    compiled = state.compiled
    arrival = state.arrival
    slew = state.slew
    fanin_idx = compiled.fanin_idx
    fanin_wire = compiled.fanin_wire_delay
    max_pins = fanin_idx.shape[1]
    is_outport = compiled.is_outport
    intrinsic = compiled.intrinsic
    slew_sens = compiled.slew_sens
    drive_res = compiled.drive_res
    load_cap = compiled.load_cap
    slew_intr = compiled.slew_intr
    slew_load = compiled.slew_load
    for c in combs:
        best = _NEG_INF
        if is_outport[c]:
            for p in range(max_pins):
                u = fanin_idx[c, p]
                if u == _NO_DRIVER:
                    continue
                v = arrival[u] + fanin_wire[c, p]
                if v > best:
                    best = v
            new_arr = best + 0.0
        else:
            ic = intrinsic[c]
            ss = slew_sens[c]
            for p in range(max_pins):
                u = fanin_idx[c, p]
                if u == _NO_DRIVER:
                    continue
                v = (arrival[u] + fanin_wire[c, p]) + (ic + ss * slew[u])
                if v > best:
                    best = v
            new_arr = best + drive_res[c] * load_cap[c]
        new_slew = slew_intr[c] + slew_load[c] * load_cap[c]
        da = new_arr - arrival[c]
        ds = new_slew - slew[c]
        arr_moved = da > PRUNE_TOL or da < -PRUNE_TOL
        slew_moved = ds > PRUNE_TOL or ds < -PRUNE_TOL
        if not (arr_moved or slew_moved):
            continue
        arrival[c] = new_arr
        slew[c] = new_slew
        if slew_moved:
            slew_changed.append(c)
        _forward_push_scalar(state, fr, c, ep_arr_dirty)


def _forward_src_vec(
    state: IncrementalState,
    fr: _Frontier,
    srcs: np.ndarray,
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    compiled = state.compiled
    self_delay = compiled.drive_res[srcs] * compiled.load_cap[srcs]
    new_arr = np.where(
        compiled.is_flop[srcs],
        state.clock_arrival[srcs] + compiled.clk_to_q[srcs] + self_delay,
        self_delay,
    )
    new_slew = (
        compiled.slew_intr[srcs] + compiled.slew_load[srcs] * compiled.load_cap[srcs]
    )
    _forward_commit_vec(state, fr, srcs, new_arr, new_slew, slew_changed, ep_arr_dirty)


def _forward_comb_vec(
    state: IncrementalState,
    fr: _Frontier,
    combs: np.ndarray,
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    compiled = state.compiled
    arrival = state.arrival
    slew = state.slew
    drivers = compiled.fanin_idx[combs]  # (m, pins)
    valid = drivers != _NO_DRIVER
    drv = np.where(valid, drivers, 0)
    wire = compiled.fanin_wire_delay[combs]
    in_arr = arrival[drv] + wire
    outport = compiled.is_outport[combs]
    gate = (
        compiled.intrinsic[combs][:, None]
        + compiled.slew_sens[combs][:, None] * slew[drv]
    )
    per_pin = np.where(
        valid, np.where(outport[:, None], in_arr, in_arr + gate), -np.inf
    )
    best = per_pin.max(axis=1)
    new_arr = best + np.where(
        outport, 0.0, compiled.drive_res[combs] * compiled.load_cap[combs]
    )
    new_slew = (
        compiled.slew_intr[combs]
        + compiled.slew_load[combs] * compiled.load_cap[combs]
    )
    _forward_commit_vec(
        state, fr, combs, new_arr, new_slew, slew_changed, ep_arr_dirty
    )


def _forward_commit_vec(
    state: IncrementalState,
    fr: _Frontier,
    cells: np.ndarray,
    new_arr: np.ndarray,
    new_slew: np.ndarray,
    slew_changed: List[Any],
    ep_arr_dirty: Set[int],
) -> None:
    arrival = state.arrival
    slew = state.slew
    da = new_arr - arrival[cells]
    ds = new_slew - slew[cells]
    arr_moved = (da > PRUNE_TOL) | (da < -PRUNE_TOL)
    slew_moved = (ds > PRUNE_TOL) | (ds < -PRUNE_TOL)
    moved = arr_moved | slew_moved
    if not moved.any():
        return
    changed = cells[moved]
    arrival[changed] = new_arr[moved]
    slew[changed] = new_slew[moved]
    slewed = cells[slew_moved]
    if slewed.size:
        slew_changed.append(slewed)
    _forward_push_vec(state, fr, changed, ep_arr_dirty)


def _recompute_ep_arrival(
    state: IncrementalState, positions: Sequence[int]
) -> None:
    """Recompute endpoint data arrivals for the given positions."""
    compiled = state.compiled
    arrival = state.arrival
    ep_arrival = state.ep_arrival
    eps = compiled.endpoint_cells
    fanin_idx = compiled.fanin_idx
    fanin_wire = compiled.fanin_wire_delay
    if len(positions) >= max(_vec_threshold, 1):
        pos = np.asarray(positions, dtype=np.int64)
        e = eps[pos]
        rows = fanin_idx[e]
        valid = rows != _NO_DRIVER
        drv = np.where(valid, rows, 0)
        pin_arr = np.where(valid, arrival[drv] + fanin_wire[e], -np.inf)
        best = pin_arr.max(axis=1)
        best[~valid.any(axis=1)] = 0.0
        ep_arrival[pos] = best
        return
    max_pins = fanin_idx.shape[1]
    for pos in positions:
        e = eps[pos]
        best = _NEG_INF
        hit = False
        for p in range(max_pins):
            u = fanin_idx[e, p]
            if u == _NO_DRIVER:
                continue
            hit = True
            v = arrival[u] + fanin_wire[e, p]
            if v > best:
                best = v
        ep_arrival[pos] = best if hit else 0.0


# ---------------------------------------------------------------------- #
# Backward sweep: scalar loop + vectorized kernel per level-slice
# ---------------------------------------------------------------------- #
def _backward_incremental(
    state: IncrementalState,
    fr: _Frontier,
    counters: _Counters,
    required: np.ndarray,
    ep_seed: np.ndarray,
    cell_seeds: List[Any],
    ep_dirty_pos: Iterable[int],
) -> None:
    """Pruned reverse-level sweep updating ``required`` in place.

    ``ep_seed`` is the per-endpoint required seed of this view (true:
    ``ep_required``; margin-aware: ``ep_required − margins``);
    ``cell_seeds`` are cells to recompute up front (ints or int64 chunks,
    duplicates fine) and ``ep_dirty_pos`` endpoint positions whose seed
    moved (their fan-in joins the frontier).
    """
    compiled = state.compiled
    fr.reset()
    seen = fr.seen
    buckets = fr.buckets
    touched = fr.touched
    src_batch = fr.src_batch
    is_src = compiled.is_src
    level_of = compiled.level_of

    # Sources (flops/inports) sit at level 0 alongside the comb cells they
    # drive, so a same-level push would arrive mid-sweep; since sources
    # never push further, they are batched after the sweep instead (mirror
    # of the forward pass' two-phase level 0).
    def push_chunk(cells: np.ndarray) -> None:
        fresh = cells[~seen[cells]]
        if fresh.size == 0:
            return
        fresh = np.unique(fresh)
        seen[fresh] = True
        touched.append(fresh)
        src_mask = is_src[fresh]
        if src_mask.any():
            src_batch.append(fresh[src_mask])
            fresh = fresh[~src_mask]
            if fresh.size == 0:
                return
        levels = level_of[fresh]
        order = np.argsort(levels, kind="stable")
        fresh = fresh[order]
        levels = levels[order]
        uniq, starts = np.unique(levels, return_index=True)
        bounds = np.append(starts, fresh.size)
        for i, lv in enumerate(uniq.tolist()):
            buckets[lv].append(fresh[bounds[i] : bounds[i + 1]])

    for item in cell_seeds:
        if isinstance(item, np.ndarray):
            push_chunk(item)
        elif not seen[item]:
            seen[item] = True
            touched.append(item)
            if is_src[item]:
                src_batch.append(item)
            else:
                buckets[level_of[item]].append(item)

    ep_dirty = list(ep_dirty_pos)
    if ep_dirty:
        rows = compiled.fanin_idx[
            compiled.endpoint_cells[np.asarray(ep_dirty, dtype=np.int64)]
        ]
        drivers = rows[rows != _NO_DRIVER]
        if drivers.size:
            push_chunk(drivers)

    for k in range(state.num_levels - 1, -1, -1):
        items = buckets[k]
        if not items:
            continue
        buckets[k] = []
        # Pushes land strictly below level k (or in src_batch), never
        # behind the sweep — the bucket can be drained as-is.
        size = _batch_size(items)
        if size >= _vec_threshold:
            counters.vectorized += 1
            counters.frontier += size
            _backward_level_vec(
                state, required, ep_seed, _batch_array(items), push_chunk
            )
        else:
            counters.scalar += 1
            counters.frontier += size
            _backward_level_scalar(
                state, fr, required, ep_seed, _batch_list(items)
            )

    srcs = fr.src_batch
    if srcs:
        fr.src_batch = []
        size = _batch_size(srcs)
        counters.frontier += size
        if size >= _vec_threshold:
            counters.vectorized += 1
            src_arr = _batch_array(srcs)
            best = _backward_recompute_vec(state, required, ep_seed, src_arr)
            required[src_arr] = best
        else:
            counters.scalar += 1
            for u in _batch_list(srcs):
                required[u] = _backward_recompute_scalar(
                    state, required, ep_seed, u
                )


def _backward_recompute_scalar(
    state: IncrementalState,
    required: np.ndarray,
    ep_seed: np.ndarray,
    u: int,
) -> float:
    compiled = state.compiled
    indptr = compiled.fanout_indptr
    sinks = compiled.fanout_indices
    wires = compiled.fanout_wire_delay
    is_ep = compiled.is_ep
    ep_pos = compiled.ep_pos
    intrinsic = compiled.intrinsic
    slew_sens = compiled.slew_sens
    drive_res = compiled.drive_res
    load_cap = compiled.load_cap
    best = _POS_INF
    su = state.slew[u]
    for j in range(indptr[u], indptr[u + 1]):
        s = sinks[j]
        wire = wires[j]
        if is_ep[s]:
            contrib = ep_seed[ep_pos[s]] - wire
        else:
            contrib = (
                required[s]
                - (intrinsic[s] + slew_sens[s] * su + drive_res[s] * load_cap[s])
                - wire
            )
        if contrib < best:
            best = contrib
    return best


def _backward_level_scalar(
    state: IncrementalState,
    fr: _Frontier,
    required: np.ndarray,
    ep_seed: np.ndarray,
    cells: List[int],
) -> None:
    compiled = state.compiled
    is_comb = compiled.is_comb
    is_src = compiled.is_src
    level_of = compiled.level_of
    fanin_idx = compiled.fanin_idx
    max_pins = fanin_idx.shape[1]
    seen = fr.seen
    buckets = fr.buckets
    touched = fr.touched
    src_batch = fr.src_batch
    for u in cells:
        new_req = _backward_recompute_scalar(state, required, ep_seed, u)
        old = required[u]
        if new_req == old:
            continue
        d = new_req - old
        if -PRUNE_TOL <= d <= PRUNE_TOL:
            continue
        required[u] = new_req
        # Only combinational cells propagate required times upstream; a
        # changed flop/port required is terminal (the full pass masks
        # them out of the reverse sweep the same way).
        if is_comb[u]:
            for p in range(max_pins):
                v = fanin_idx[u, p]
                if v == _NO_DRIVER or seen[v]:
                    continue
                seen[v] = True
                touched.append(v)
                if is_src[v]:
                    src_batch.append(int(v))
                else:
                    buckets[level_of[v]].append(int(v))


def _backward_recompute_vec(
    state: IncrementalState,
    required: np.ndarray,
    ep_seed: np.ndarray,
    cells: np.ndarray,
) -> np.ndarray:
    """Batched min-over-fanout recompute (CSR gather + segment reduction)."""
    compiled = state.compiled
    indptr = compiled.fanout_indptr
    counts = indptr[cells + 1] - indptr[cells]
    best = np.full(cells.size, np.inf)
    edges = csr_edge_indices(indptr, cells)
    if edges.size == 0:
        return best
    sinks = compiled.fanout_indices[edges]
    wire = compiled.fanout_wire_delay[edges]
    su = np.repeat(state.slew[cells], counts)
    ep_mask = compiled.is_ep[sinks]
    gate = (
        compiled.intrinsic[sinks]
        + compiled.slew_sens[sinks] * su
        + compiled.drive_res[sinks] * compiled.load_cap[sinks]
    )
    # required[s] of a non-endpoint sink is always finite (every comb cell
    # reaches an endpoint in a validated netlist), so no inf−inf here; the
    # endpoint branch is selected before it could matter anyway.
    normal = required[sinks] - gate - wire
    ep_contrib = ep_seed[np.where(ep_mask, compiled.ep_pos[sinks], 0)] - wire
    contrib = np.where(ep_mask, ep_contrib, normal)
    nz = counts > 0
    seg_starts = np.cumsum(counts) - counts
    best[nz] = np.minimum.reduceat(contrib, seg_starts[nz])
    return best


def _backward_level_vec(
    state: IncrementalState,
    required: np.ndarray,
    ep_seed: np.ndarray,
    cells: np.ndarray,
    push_chunk,
) -> None:
    compiled = state.compiled
    best = _backward_recompute_vec(state, required, ep_seed, cells)
    old = required[cells]
    # Equality first (mirrors the scalar prune order): both-infinite
    # entries compare equal and never reach the subtraction, so no
    # inf − inf NaN can arise in the delta.
    neq_idx = np.nonzero(best != old)[0]
    if neq_idx.size == 0:
        return
    d = best[neq_idx] - old[neq_idx]
    keep = (d > PRUNE_TOL) | (d < -PRUNE_TOL)
    if not keep.any():
        return
    changed = cells[neq_idx[keep]]
    required[changed] = best[neq_idx[keep]]
    comb_changed = changed[compiled.is_comb[changed]]
    if comb_changed.size == 0:
        return
    rows = compiled.fanin_idx[comb_changed]
    drivers = rows[rows != _NO_DRIVER]
    if drivers.size:
        push_chunk(drivers)


# ---------------------------------------------------------------------- #
# Differential shadow check (REPRO_STA_CHECK=1)
# ---------------------------------------------------------------------- #
_COMPARED_FIELDS = (
    "arrival",
    "required",
    "slack",
    "margins",
    "cell_arrival",
    "cell_slew",
    "cell_required",
    "cell_worst_slack",
    "cell_worst_slack_margined",
)


def assert_reports_equal(
    incremental: TimingReport,
    full: TimingReport,
    atol: float = CHECK_ATOL,
) -> None:
    """Raise ``RuntimeError`` if the two reports disagree beyond ``atol``."""
    if not np.array_equal(incremental.endpoints, full.endpoints):
        raise RuntimeError(
            "incremental STA drift: endpoint ordering differs from the "
            "full engine's canonical order"
        )
    mismatches: List[str] = []
    for name in _COMPARED_FIELDS:
        a = getattr(incremental, name)
        b = getattr(full, name)
        if not np.allclose(a, b, rtol=0.0, atol=atol):
            finite = np.isfinite(a) & np.isfinite(b)
            worst = float(np.abs(a[finite] - b[finite]).max()) if finite.any() else np.inf
            if np.any(np.isfinite(a) != np.isfinite(b)):
                worst = np.inf
            mismatches.append(f"{name} (max |Δ|={worst:.3e})")
    if mismatches:
        raise RuntimeError(
            "incremental STA drift beyond "
            f"{atol:g} in: {', '.join(mismatches)} — a dirty-set "
            "notification is missing or the pruning rule is unsound"
        )


__all__ = [
    "CHECK_ATOL",
    "DEFAULT_VEC_THRESHOLD",
    "ENV_CHECK",
    "ENV_INCREMENTAL",
    "ENV_VEC_THRESHOLD",
    "PRUNE_TOL",
    "IncrementalState",
    "assert_reports_equal",
    "build_state",
    "check_enabled",
    "incremental_analyze",
    "incremental_enabled",
    "set_check",
    "set_incremental",
    "set_vector_threshold",
    "vector_threshold",
]
