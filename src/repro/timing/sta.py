"""Vectorized graph-based static timing analysis.

The analyzer follows standard STA semantics on the cell-level graph:

* **forward pass** — output arrival time ``A(v)`` and output slew ``S(v)``
  propagate in topological (level) order; combinational delay follows the
  library's linear NLDM-style model (intrinsic + drive·load + k·input-slew),
  wire delay is Manhattan-distance based;
* **launch** — input ports launch at t = 0; flop Q pins launch at
  ``clock_arrival(f) + clk_to_q``;
* **capture** — setup checks at flop D pins against
  ``period + clock_arrival(f) − setup`` and at output ports against
  ``period``;
* **backward pass** — required times propagate backwards, giving the
  per-cell "worst slack of paths through cell" used by Table-I features.

Endpoint **margins** (the mechanism of Algorithm 1 line 14) are handled as a
view: ``slack_with_margins = slack − margin`` so that downstream engines see
artificially worsened endpoints while the true timing state is untouched —
exactly how the paper applies and later removes margins.

Designs here are a few thousand cells, so a full (re)compile + analysis is a
few milliseconds; the CCD engines simply re-run STA after each move batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, TYPE_CHECKING

import numpy as np

from repro import obs
from repro.netlist.core import Netlist
from repro.timing.clock import ClockModel

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.timing.incremental import IncrementalState

_NO_DRIVER = -1


def csr_edge_indices(indptr: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Flattened CSR edge indices of ``cells`` (their row slices, in order).

    The standard repeat/cumsum gather: for each cell the slice
    ``indptr[c]:indptr[c+1]``, concatenated, without a Python loop.  Shared
    by levelization and the vectorized frontier kernels.
    """
    counts = indptr[cells + 1] - indptr[cells]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    return np.repeat(indptr[cells] - offsets, counts) + np.arange(
        total, dtype=np.int64
    )


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (0.0 if unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are close
    enough for the coarse ``sta.peak_mb`` capacity gauges (the scale-sweep
    CI bound allows a wide margin).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


@dataclass
class CompiledTiming:
    """Array form of the netlist's timing graph (rebuilt after mutations).

    Besides the dense ``(n, max_pins)`` fanin layout (pin counts are bounded
    by the library, so the pad is small), the compile also emits a CSR
    fanout adjacency (``fanout_indptr``/``fanout_indices``/
    ``fanout_wire_delay``, the PR-5 cone-CSR pattern) plus per-cell level
    and endpoint-position maps — the layout the vectorized frontier kernels
    in :mod:`repro.timing.incremental` gather over.  Resizes never change
    topology or wire lengths, so :meth:`TimingAnalyzer.notify_resize` leaves
    all of these untouched.
    """

    netlist: Netlist
    levels: List[np.ndarray]  # cells per topological level
    fanin_idx: np.ndarray  # (n, max_pins) driver cell per pin, -1 pad
    fanin_wire_delay: np.ndarray  # (n, max_pins)
    load_cap: np.ndarray  # (n,)
    intrinsic: np.ndarray
    drive_res: np.ndarray
    slew_sens: np.ndarray
    slew_intr: np.ndarray
    slew_load: np.ndarray
    is_flop: np.ndarray
    is_inport: np.ndarray
    is_outport: np.ndarray
    is_src: np.ndarray  # flop or input port (launch points)
    is_comb: np.ndarray  # propagates required upstream
    is_ep: np.ndarray  # flop or output port (capture points)
    clk_to_q: np.ndarray
    setup: np.ndarray
    hold: np.ndarray
    endpoint_cells: np.ndarray  # endpoint cell indices, canonical order
    level_of: np.ndarray  # (n,) topological level per cell
    ep_pos: np.ndarray  # (n,) endpoint position per cell, -1 elsewhere
    fanout_indptr: np.ndarray  # (n+1,) CSR row pointers over fanout edges
    fanout_indices: np.ndarray  # (E,) sink cell per fanout edge
    fanout_wire_delay: np.ndarray  # (E,) wire delay at the sink's pin
    derate: float = 1.0


@dataclass
class TimingReport:
    """Result of one STA run.

    ``slack``/``arrival``/``required`` are per *endpoint* in the canonical
    order of ``endpoints``; cell-level quantities are full-length arrays.
    """

    endpoints: np.ndarray  # endpoint cell indices
    arrival: np.ndarray  # data arrival at each endpoint (ns)
    required: np.ndarray  # required time at each endpoint (ns)
    slack: np.ndarray  # true slack, margins NOT subtracted
    margins: np.ndarray  # margin per endpoint (0 where none)
    cell_arrival: np.ndarray  # output arrival per cell
    cell_slew: np.ndarray  # output slew per cell
    cell_required: np.ndarray  # true output required per cell (+inf if unconstrained)
    cell_worst_slack: np.ndarray  # true worst slack of paths through each cell
    cell_worst_slack_margined: np.ndarray  # margin-aware worst slack view
    # Hold (min-delay) results; populated only when analyze(..., include_hold=True):
    hold_slack: Optional[np.ndarray] = None  # per endpoint (+inf at ports)
    cell_min_arrival: Optional[np.ndarray] = None  # earliest output arrival

    @property
    def slack_with_margins(self) -> np.ndarray:
        """Apparent slack seen by margin-aware engines (Algorithm 1 l.14)."""
        return self.slack - self.margins

    def endpoint_slack(self, cell_index: int) -> float:
        """True slack of one endpoint cell."""
        pos = np.nonzero(self.endpoints == cell_index)[0]
        if pos.size == 0:
            raise KeyError(f"cell {cell_index} is not an endpoint")
        return float(self.slack[pos[0]])


#: Default corner derates: typical, pessimistic-late (setup signoff) and
#: optimistic-early (hold signoff).
DEFAULT_CORNERS: Dict[str, float] = {"typ": 1.0, "slow": 1.08, "fast": 0.92}


class TimingAnalyzer:
    """STA facade bound to a netlist; recompile after netlist mutations.

    Supports multi-corner analysis: ``analyze(..., corner="slow")`` runs on
    a compiled view whose delays are scaled by the corner's derate
    (:data:`DEFAULT_CORNERS` by default; override via ``corners``).
    Compiled views are cached per corner and updated together on
    :meth:`notify_resize`.

    ``analyze()`` is incremental by default (see
    :mod:`repro.timing.incremental`): dirty cells accumulated from
    :meth:`notify_resize` / :meth:`notify_skew` seed a pruned
    re-propagation instead of a full sweep.  ``incremental=False`` (or the
    ``REPRO_STA_INCREMENTAL=0`` environment switch) forces the full engine;
    structural edits, clock-period changes, hold analysis and the first
    analysis of a corner always take the full path.  A netlist mutated
    without notification is caught by the mutation-version guard and
    triggers ``invalidate()`` — a stale read without re-analysis is
    impossible.
    """

    def __init__(
        self,
        netlist: Netlist,
        corners: Optional[Dict[str, float]] = None,
        incremental: Optional[bool] = None,
    ):
        self.netlist = netlist
        self.corners: Dict[str, float] = dict(corners or DEFAULT_CORNERS)
        if "typ" not in self.corners:
            self.corners["typ"] = 1.0
        #: Per-analyzer override of the global incremental switch
        #: (``None`` = follow :func:`repro.timing.incremental.incremental_enabled`).
        self.incremental = incremental
        self._compiled: Dict[str, CompiledTiming] = {}
        self._states: Dict[str, "IncrementalState"] = {}
        self._expected_version: int = netlist.mutation_version

    def invalidate(self) -> None:
        """Drop all compiled views (call after structural mutations)."""
        self._compiled = {}
        self._states = {}
        self._expected_version = self.netlist.mutation_version

    def notify_resize(self, cell_index: int) -> None:
        """Incrementally update every cached corner after one resize.

        A size change touches only (a) the cell's own delay/slew
        coefficients and (b) the load capacitance of every driver feeding
        it (its input pin capacitance changed).  Topology, levels and
        endpoints are untouched, so a full recompile — a Python pass over
        every cell — is wasted work the data-path optimizer would otherwise
        pay on every probe move.
        """
        obs.incr("sta.incremental_update")
        netlist = self.netlist
        cell = netlist.cells[cell_index]
        size = cell.size
        i = cell_index
        dirty = {i}
        for net_index in cell.fanin_nets:
            if net_index is None:
                continue
            dirty.add(netlist.nets[net_index].driver)
        for compiled in self._compiled.values():
            d = compiled.derate
            compiled.intrinsic[i] = d * size.intrinsic_delay
            compiled.drive_res[i] = d * size.drive_resistance
            compiled.slew_sens[i] = size.slew_sensitivity
            compiled.slew_intr[i] = d * size.slew_intrinsic
            compiled.slew_load[i] = d * size.slew_load_factor
            for net_index in cell.fanin_nets:
                if net_index is None:
                    continue
                driver = netlist.nets[net_index].driver
                compiled.load_cap[driver] = netlist.net_load_cap(net_index)
        # The resize is now fully reflected in the compiled views: mark the
        # touched cells timing-stale so the next analyze() re-propagates
        # them, and acknowledge the netlist mutation so the version guard
        # does not force a needless recompile.
        for state in self._states.values():
            state.pending.update(dirty)
        self._expected_version = netlist.mutation_version

    def notify_skew(self, flop_indices: Iterable[int]) -> None:
        """Mark flops whose clock arrival moved as timing-stale.

        An eager hint for the useful-skew commit loop: the next
        ``analyze()`` seeds its frontier from these flops instead of
        discovering them via the clock-arrival diff (which still runs, so
        an *unnotified* skew edit is caught regardless — this hook is a
        fast path, not a correctness requirement).
        """
        flops = [int(f) for f in flop_indices]
        for state in self._states.values():
            state.pending.update(flops)

    def notify_margins(self) -> None:
        """Documented no-op: margins are a view and must not dirty timing.

        Endpoint margins only reseed the margin-aware backward pass
        (``slack_with_margins``/``cell_worst_slack_margined``); arrivals,
        slews and true required times are untouched by applying or removing
        them.  ``analyze()`` diffs the margin mapping itself, so there is
        nothing to record here — the hook exists so call sites can state
        intent (and so a future margin model that *does* perturb timing has
        a seam to hook into).
        """

    @property
    def compiled(self) -> CompiledTiming:
        return self.compiled_for("typ")

    def compiled_for(self, corner: str) -> CompiledTiming:
        """The (cached) compiled timing graph of one corner."""
        if corner not in self.corners:
            raise KeyError(
                f"unknown corner {corner!r}; available: {sorted(self.corners)}"
            )
        if corner not in self._compiled:
            with obs.span("sta.compile"):
                self._compiled[corner] = compile_timing(
                    self.netlist, derate=self.corners[corner]
                )
            obs.gauge("sta.peak_mb.compile", peak_rss_mb())
        return self._compiled[corner]

    def analyze(
        self,
        clock: ClockModel,
        margins: Optional[Mapping[int, float]] = None,
        include_hold: bool = False,
        corner: str = "typ",
    ) -> TimingReport:
        """Run STA under ``clock``; see :class:`TimingReport`.

        Dispatches to the incremental engine when enabled and a cached
        :class:`~repro.timing.incremental.IncrementalState` for the corner
        is still valid; otherwise runs the full engine (and, when
        incremental mode is on, captures its state for future increments).

        ``include_hold=True`` additionally runs the min-delay pass and fills
        ``hold_slack`` / ``cell_min_arrival`` (conventionally run at the
        ``"fast"`` corner, where races are worst); hold analysis always
        takes the full path.
        """
        from repro.timing import incremental as inc

        if self.netlist.mutation_version != self._expected_version:
            # The netlist mutated without notify_resize()/invalidate():
            # every cached view is untrustworthy.  Recompiling here makes a
            # stale read without re-analysis impossible.
            self.invalidate()

        use_inc = (
            self.incremental
            if self.incremental is not None
            else inc.incremental_enabled()
        )
        compiled = self.compiled_for(corner)
        state = self._states.get(corner)

        if include_hold or not use_inc:
            # Hold (min-delay) results are not cached incrementally; a
            # plain full run leaves any cached state untouched — its
            # pending set and the clock/margin diffs still cover whatever
            # happens before the next incremental call.
            with obs.span("sta.full_update"):
                obs.incr("sta.full_analyze")
                report = analyze(compiled, clock, margins, include_hold=include_hold)
            obs.gauge("sta.peak_mb.analyze", peak_rss_mb())
            return report

        if (
            state is None
            or state.compiled is not compiled
            or clock.period != state.period
        ):
            with obs.span("sta.full_update"):
                obs.incr("sta.full_analyze")
                report, state = inc.build_state(compiled, clock, margins)
                self._states[corner] = state
            obs.gauge("sta.peak_mb.analyze", peak_rss_mb())
            return report

        with obs.span("sta.incremental_analyze"):
            obs.incr("sta.incremental_analyze")
            report, frontier = inc.incremental_analyze(state, clock, margins)
            obs.incr("sta.frontier_cells", frontier)
        if obs.enabled():
            obs.gauge("sta.peak_mb.analyze", peak_rss_mb())
            # Running high-water mark of the incremental frontier (gauges
            # are last-value-wins, so keep the max explicitly).
            peak = obs.get_recorder().gauges.get("sta.frontier_peak")
            if peak is None or frontier > peak:
                obs.gauge("sta.frontier_peak", frontier)
        if inc.check_enabled():
            with obs.span("sta.shadow_check"):
                obs.incr("sta.shadow_checks")
                full = analyze(compiled, clock, margins)
                inc.assert_reports_equal(report, full)
        return report


def compile_timing(netlist: Netlist, derate: float = 1.0) -> CompiledTiming:
    """Build the array representation of the current netlist state.

    ``derate`` scales every delay-producing coefficient (intrinsic, drive,
    slew factors, wire delay) — the standard corner model: a *slow* corner
    derates late (>1), a *fast* corner derates early (<1).  Capacitances
    and sequential setup/hold constraints are corner-independent here.
    """
    if derate <= 0:
        raise ValueError(f"derate must be positive, got {derate}")
    n = netlist.num_cells
    max_pins = max((c.cell_type.num_inputs for c in netlist.cells), default=1)
    max_pins = max(max_pins, 1)

    fanin_idx = np.full((n, max_pins), _NO_DRIVER, dtype=np.int64)
    fanin_wire = np.zeros((n, max_pins), dtype=np.float64)
    load_cap = np.zeros(n, dtype=np.float64)
    intrinsic = np.zeros(n)
    drive_res = np.zeros(n)
    slew_sens = np.zeros(n)
    slew_intr = np.zeros(n)
    slew_load = np.zeros(n)
    is_flop = np.zeros(n, dtype=bool)
    is_inport = np.zeros(n, dtype=bool)
    is_outport = np.zeros(n, dtype=bool)
    clk_to_q = np.zeros(n)
    setup = np.zeros(n)
    hold = np.zeros(n)

    wire_coeff = (
        derate * netlist.parasitic_scale * netlist.library.wire_res_delay_per_um
    )

    for cell in netlist.cells:
        size = cell.size
        intrinsic[cell.index] = derate * size.intrinsic_delay
        drive_res[cell.index] = derate * size.drive_resistance
        slew_sens[cell.index] = size.slew_sensitivity
        slew_intr[cell.index] = derate * size.slew_intrinsic
        slew_load[cell.index] = derate * size.slew_load_factor
        is_flop[cell.index] = cell.is_sequential
        is_inport[cell.index] = cell.is_input_port
        is_outport[cell.index] = cell.is_output_port
        if cell.is_sequential:
            # Clock-to-Q is a real delay and derates with the corner;
            # setup/hold are constraint values and stay corner-independent.
            clk_to_q[cell.index] = derate * cell.cell_type.clk_to_q
            setup[cell.index] = cell.cell_type.setup_time
            hold[cell.index] = cell.cell_type.hold_time
        for pin, net_index in enumerate(cell.fanin_nets):
            if net_index is None:
                continue
            driver = netlist.nets[net_index].driver
            fanin_idx[cell.index, pin] = driver
            driver_cell = netlist.cells[driver]
            dist = abs(driver_cell.x - cell.x) + abs(driver_cell.y - cell.y)
            fanin_wire[cell.index, pin] = wire_coeff * dist
        if cell.fanout_net is not None:
            load_cap[cell.index] = netlist.net_load_cap(cell.fanout_net)

    # CSR fanout adjacency from the dense fanin layout: one edge per valid
    # (sink, pin), grouped by driver via a stable argsort so each driver's
    # edge slice preserves (sink, pin) order deterministically.
    sink_rows, sink_pins = np.nonzero(fanin_idx != _NO_DRIVER)
    edge_drivers = fanin_idx[sink_rows, sink_pins]
    order = np.argsort(edge_drivers, kind="stable")
    fanout_indices = sink_rows[order].astype(np.int64, copy=False)
    fanout_wire = fanin_wire[sink_rows, sink_pins][order]
    fanout_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(edge_drivers, minlength=n), out=fanout_indptr[1:])

    levels = _levelize(n, sink_rows, edge_drivers, is_flop, is_inport)
    level_of = np.zeros(n, dtype=np.int64)
    for k, level_cells in enumerate(levels):
        level_of[level_cells] = k

    endpoint_cells = np.array(netlist.endpoints(), dtype=np.int64)
    ep_pos = np.full(n, -1, dtype=np.int64)
    ep_pos[endpoint_cells] = np.arange(endpoint_cells.size, dtype=np.int64)

    is_src = is_flop | is_inport
    return CompiledTiming(
        netlist=netlist,
        levels=levels,
        fanin_idx=fanin_idx,
        fanin_wire_delay=fanin_wire,
        load_cap=load_cap,
        intrinsic=intrinsic,
        drive_res=drive_res,
        slew_sens=slew_sens,
        slew_intr=slew_intr,
        slew_load=slew_load,
        is_flop=is_flop,
        is_inport=is_inport,
        is_outport=is_outport,
        is_src=is_src,
        is_comb=~(is_src | is_outport),
        is_ep=is_flop | is_outport,
        clk_to_q=clk_to_q,
        setup=setup,
        hold=hold,
        endpoint_cells=endpoint_cells,
        level_of=level_of,
        ep_pos=ep_pos,
        fanout_indptr=fanout_indptr,
        fanout_indices=fanout_indices,
        fanout_wire_delay=fanout_wire,
        derate=derate,
    )


def _levelize(
    n: int,
    edge_sinks: np.ndarray,
    edge_drivers: np.ndarray,
    is_flop: np.ndarray,
    is_inport: np.ndarray,
) -> List[np.ndarray]:
    """Topological levels over *data* edges (flop outputs are sources).

    Level 0 holds all launch points (flops, input ports); a combinational
    cell's level is 1 + max of its drivers' levels (flop drivers count as 0).

    Wave-synchronous Kahn, fully vectorized: each wave releases every cell
    whose last dependency just resolved, so a cell's wave number equals its
    longest dependency-path length — identical to the scalar
    ``level[v] = max(level[v], level[u] + 1)`` relaxation this replaces.
    """
    # Dependency edges: cell v depends on driver u unless u is sequential or
    # an input port (those are timing sources).  Flops themselves are also
    # sources — their *output* arrival depends only on the clock, never on
    # their D input (the D-side setup check reads the driver arrivals
    # directly) — so no dependency edges point INTO a flop.
    dep = ~is_flop[edge_sinks] & ~(is_flop[edge_drivers] | is_inport[edge_drivers])
    dep_sinks = edge_sinks[dep]
    dep_drivers = edge_drivers[dep]
    indegree = np.bincount(dep_sinks, minlength=n)
    order = np.argsort(dep_drivers, kind="stable")
    dep_sinks = dep_sinks[order].astype(np.int64, copy=False)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dep_drivers, minlength=n), out=indptr[1:])

    levels: List[np.ndarray] = []
    current = np.nonzero(indegree == 0)[0]
    seen = 0
    while current.size:
        levels.append(current)
        seen += current.size
        released = dep_sinks[csr_edge_indices(indptr, current)]
        if released.size == 0:
            break
        dec = np.bincount(released, minlength=n)
        indegree -= dec
        current = np.nonzero((indegree == 0) & (dec > 0))[0]
    if seen != n:
        raise ValueError(
            "timing graph contains a combinational cycle; run validate_netlist"
        )
    if not levels:
        levels.append(np.zeros(0, dtype=np.int64))
    return levels


def analyze(
    compiled: CompiledTiming,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
    include_hold: bool = False,
) -> TimingReport:
    """Forward + backward STA under ``clock`` (see module docstring).

    Setup (max-delay) analysis always runs; ``include_hold=True`` adds the
    min-delay pass: earliest arrivals propagate with ``min`` instead of
    ``max`` and each flop's hold check is
    ``hold_slack = min_arrival(D) − (clock_arrival + t_hold)`` — data must
    not race through and corrupt the *same-edge* capture.  Delaying a flop's
    clock (positive useful skew) therefore erodes its hold slack one-for-one,
    which is the guard :class:`repro.ccd.useful_skew.UsefulSkewConfig`
    ``respect_hold`` enforces."""
    n = compiled.fanin_idx.shape[0]
    arrival = np.zeros(n)
    slew = np.zeros(n)
    margins = dict(margins or {})

    # Clock arrivals are sparse (only skewed flops carry an offset), so fill
    # from the clock model's dict instead of probing all n cells.
    clock_arrival = np.zeros(n)
    for f, value in clock.arrivals.items():
        if compiled.is_flop[f]:
            clock_arrival[f] = value

    # ---------------- forward propagation ---------------------------- #
    # Sources: input ports launch at 0, flops at clock + clk_to_q; both then
    # see their own drive delay onto the net.
    src_driver_delay = compiled.drive_res * compiled.load_cap

    for level_cells in compiled.levels:
        if level_cells.size == 0:
            continue
        lc = level_cells
        flop_mask = compiled.is_flop[lc]
        inport_mask = compiled.is_inport[lc]
        comb_mask = ~(flop_mask | inport_mask)

        # Launch points.
        if flop_mask.any():
            f = lc[flop_mask]
            arrival[f] = clock_arrival[f] + compiled.clk_to_q[f] + src_driver_delay[f]
            slew[f] = compiled.slew_intr[f] + compiled.slew_load[f] * compiled.load_cap[f]
        if inport_mask.any():
            p = lc[inport_mask]
            arrival[p] = src_driver_delay[p]
            slew[p] = compiled.slew_intr[p] + compiled.slew_load[p] * compiled.load_cap[p]

        # Combinational cells (and output ports, which get pin arrival only).
        if comb_mask.any():
            c = lc[comb_mask]
            drivers = compiled.fanin_idx[c]  # (m, pins)
            valid = drivers != _NO_DRIVER
            drv = np.where(valid, drivers, 0)
            in_arr = np.where(valid, arrival[drv] + compiled.fanin_wire_delay[c], -np.inf)
            in_slew = np.where(valid, slew[drv], 0.0)
            gate_delay = (
                compiled.intrinsic[c][:, None]
                + compiled.slew_sens[c][:, None] * in_slew
            )
            # Output ports consume only: no gate delay, no drive.
            outport = compiled.is_outport[c]
            per_pin = in_arr + np.where(outport[:, None], 0.0, gate_delay)
            a = per_pin.max(axis=1)
            # Load-dependent drive delay added once at the output.
            a = a + np.where(outport, 0.0, compiled.drive_res[c] * compiled.load_cap[c])
            arrival[c] = a
            slew[c] = compiled.slew_intr[c] + compiled.slew_load[c] * compiled.load_cap[c]

    # ---------------- endpoint checks --------------------------------- #
    eps = compiled.endpoint_cells
    if eps.size:
        ep_drivers = compiled.fanin_idx[eps]  # (m, pins)
        valid = ep_drivers != _NO_DRIVER
        drv = np.where(valid, ep_drivers, 0)
        pin_arr = np.where(
            valid, arrival[drv] + compiled.fanin_wire_delay[eps], -np.inf
        )
        ep_arrival = pin_arr.max(axis=1)
        ep_arrival[~valid.any(axis=1)] = 0.0  # unconnected endpoint
        # Flops capture at period + skew − setup; output ports against a
        # virtual capture clock at period.
        ep_required = np.where(
            compiled.is_flop[eps],
            clock.period + clock_arrival[eps] - compiled.setup[eps],
            clock.period,
        )
    else:
        ep_arrival = np.zeros(0)
        ep_required = np.zeros(0)
    ep_slack = ep_required - ep_arrival
    if margins:
        ep_margin = np.array([float(margins.get(int(e), 0.0)) for e in eps])
    else:
        ep_margin = np.zeros(eps.size)

    # ---------------- backward required propagation ------------------- #
    # Two views: *true* required times (real timing state) and, when margins
    # are present, a *margin-aware* view whose endpoint seeds are worsened by
    # the margins.  The CCD engines use the true view to bound how much slack
    # they may steal and the margin-aware view to prioritize/protect the
    # selected endpoints.
    required_true = _backward_required(compiled, slew, ep_required)
    if ep_margin.any():
        required_eff = _backward_required(compiled, slew, ep_required - ep_margin)
    else:
        required_eff = required_true

    worst_slack_true = np.where(
        np.isfinite(required_true), required_true - arrival, np.inf
    )
    worst_slack_eff = np.where(
        np.isfinite(required_eff), required_eff - arrival, np.inf
    )

    # ---------------- optional hold (min-delay) pass ------------------- #
    hold_slack = None
    min_arrival = None
    if include_hold:
        min_arrival = _forward_min_arrival(compiled, slew, clock_arrival)
        hold_slack = np.full(eps.size, np.inf)
        for k, e in enumerate(eps):
            if not compiled.is_flop[e]:
                continue  # ports have no same-edge race check
            pins = [
                min_arrival[d] + compiled.fanin_wire_delay[e, p]
                for p, d in enumerate(compiled.fanin_idx[e])
                if d != _NO_DRIVER
            ]
            earliest = min(pins) if pins else np.inf
            hold_slack[k] = earliest - (clock_arrival[e] + compiled.hold[e])

    return TimingReport(
        endpoints=eps,
        arrival=ep_arrival,
        required=ep_required,
        slack=ep_slack,
        margins=ep_margin,
        cell_arrival=arrival,
        cell_slew=slew,
        cell_required=required_true,
        cell_worst_slack=worst_slack_true,
        cell_worst_slack_margined=worst_slack_eff,
        hold_slack=hold_slack,
        cell_min_arrival=min_arrival,
    )


def _forward_min_arrival(
    compiled: CompiledTiming, slew: np.ndarray, clock_arrival: np.ndarray
) -> np.ndarray:
    """Earliest-arrival forward pass (min over pins; same delay model).

    Uses the already-computed (max-corner) slews — a conservative single-
    corner simplification: real min-delay analysis would use a fast corner,
    but the structural behaviour (short paths race, skew erodes hold) is
    identical.
    """
    n = compiled.fanin_idx.shape[0]
    min_arrival = np.zeros(n)
    src_driver_delay = compiled.drive_res * compiled.load_cap
    for level_cells in compiled.levels:
        if level_cells.size == 0:
            continue
        lc = level_cells
        flop_mask = compiled.is_flop[lc]
        inport_mask = compiled.is_inport[lc]
        comb_mask = ~(flop_mask | inport_mask)
        if flop_mask.any():
            f = lc[flop_mask]
            min_arrival[f] = (
                clock_arrival[f] + compiled.clk_to_q[f] + src_driver_delay[f]
            )
        if inport_mask.any():
            p = lc[inport_mask]
            min_arrival[p] = src_driver_delay[p]
        if comb_mask.any():
            c = lc[comb_mask]
            drivers = compiled.fanin_idx[c]
            valid = drivers != _NO_DRIVER
            drv = np.where(valid, drivers, 0)
            in_arr = np.where(
                valid, min_arrival[drv] + compiled.fanin_wire_delay[c], np.inf
            )
            in_slew = np.where(valid, slew[drv], 0.0)
            gate_delay = (
                compiled.intrinsic[c][:, None]
                + compiled.slew_sens[c][:, None] * in_slew
            )
            outport = compiled.is_outport[c]
            per_pin = in_arr + np.where(outport[:, None], 0.0, gate_delay)
            a = per_pin.min(axis=1)
            a = a + np.where(
                outport, 0.0, compiled.drive_res[c] * compiled.load_cap[c]
            )
            min_arrival[c] = a
    return min_arrival


def _backward_required(
    compiled: CompiledTiming, slew: np.ndarray, endpoint_required: np.ndarray
) -> np.ndarray:
    """Vectorized backward pass from the given endpoint required times."""
    n = compiled.fanin_idx.shape[0]
    required = np.full(n, np.inf)
    eps = compiled.endpoint_cells

    # Seed: required at endpoint input pins mapped onto their drivers.
    ep_drivers = compiled.fanin_idx[eps]  # (m, pins)
    valid = ep_drivers != _NO_DRIVER
    seed_req = endpoint_required[:, None] - compiled.fanin_wire_delay[eps]
    np.minimum.at(
        required, ep_drivers[valid], np.broadcast_to(seed_req, ep_drivers.shape)[valid]
    )

    # Walk levels backwards: a driver's required is the min over its comb
    # sinks v of (required[v] − gate delay(v) − wire(u→v)).
    for level_cells in reversed(compiled.levels):
        if level_cells.size == 0:
            continue
        mask = ~(
            compiled.is_flop[level_cells]
            | compiled.is_inport[level_cells]
            | compiled.is_outport[level_cells]
        )
        c = level_cells[mask]
        if c.size == 0:
            continue
        drivers = compiled.fanin_idx[c]  # (m, pins)
        valid = drivers != _NO_DRIVER
        drv = np.where(valid, drivers, 0)
        gate_delay = (
            compiled.intrinsic[c][:, None]
            + compiled.slew_sens[c][:, None] * slew[drv]
            + (compiled.drive_res[c] * compiled.load_cap[c])[:, None]
        )
        req = required[c][:, None] - gate_delay - compiled.fanin_wire_delay[c]
        np.minimum.at(required, drivers[valid], req[valid])
    return required
