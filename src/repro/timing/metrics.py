"""Timing quality metrics: TNS, WNS, NVE.

These are the quantities Table II reports per design and the reward signal
of the RL agent (reward = final TNS, paper §III-A).  All metrics are defined
on *true* slack (margins removed), matching the paper's evaluation: margins
are a steering device, never part of the score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timing.sta import TimingReport


@dataclass(frozen=True)
class TimingSummary:
    """WNS / TNS / NVE triple plus endpoint count."""

    wns: float
    tns: float
    nve: int
    num_endpoints: int

    def __str__(self) -> str:
        return (
            f"WNS={self.wns:8.3f}  TNS={self.tns:10.2f}  "
            f"NVE={self.nve:5d}/{self.num_endpoints}"
        )


def wns(slack: np.ndarray) -> float:
    """Worst negative slack: min slack, clamped at 0 when nothing violates."""
    if slack.size == 0:
        return 0.0
    return float(min(slack.min(), 0.0))


def tns(slack: np.ndarray) -> float:
    """Total negative slack: sum of negative endpoint slacks (≤ 0)."""
    if slack.size == 0:
        return 0.0
    return float(np.minimum(slack, 0.0).sum())


def nve(slack: np.ndarray, tolerance: float = 1e-9) -> int:
    """Number of violating endpoints (slack < −tolerance)."""
    return int((slack < -tolerance).sum())


def summarize(report: TimingReport) -> TimingSummary:
    """Summarize a :class:`~repro.timing.sta.TimingReport` on true slack."""
    return TimingSummary(
        wns=wns(report.slack),
        tns=tns(report.slack),
        nve=nve(report.slack),
        num_endpoints=int(report.slack.size),
    )


def violating_endpoints(report: TimingReport, tolerance: float = 1e-9) -> np.ndarray:
    """Endpoint *cell indices* with negative true slack, worst first."""
    mask = report.slack < -tolerance
    cells = report.endpoints[mask]
    order = np.argsort(report.slack[mask])
    return cells[order]


def choose_clock_period(
    report: TimingReport,
    period_used: float,
    violating_fraction: float,
    minimum: float = 1e-3,
) -> float:
    """Pick a clock period so ~``violating_fraction`` of endpoints violate.

    Used by the benchmark suite to put each generated design in a realistic
    post-global-placement state (paper Table II "begin" columns show
    thousands of violating endpoints).  ``report`` must come from a
    *zero-skew* analysis under period ``period_used``; each endpoint's
    required time is ``period + c`` with a period-independent offset ``c``
    (−setup for flops, 0 for ports), so the period that makes endpoint *e*
    exactly critical is ``arrival(e) − (required(e) − period_used)``.  We
    return the (1 − fraction) quantile of those critical periods.
    """
    if not 0.0 < violating_fraction < 1.0:
        raise ValueError(
            f"violating_fraction must be in (0, 1), got {violating_fraction}"
        )
    critical_period = report.arrival - (report.required - period_used)
    quantile = float(np.quantile(critical_period, 1.0 - violating_fraction))
    return max(minimum, quantile)
