"""Static timing analysis substrate: clock model, STA engine, metrics, paths."""

from repro.timing.clock import ClockModel
from repro.timing.metrics import (
    TimingSummary,
    choose_clock_period,
    nve,
    summarize,
    tns,
    violating_endpoints,
    wns,
)
from repro.timing.incremental import (
    IncrementalState,
    check_enabled,
    incremental_analyze,
    incremental_enabled,
    set_check,
    set_incremental,
)
from repro.timing.paths import TimingPath, trace_critical_path
from repro.timing.sta import (
    CompiledTiming,
    TimingAnalyzer,
    TimingReport,
    analyze,
    compile_timing,
)

__all__ = [
    "ClockModel",
    "TimingAnalyzer",
    "TimingReport",
    "CompiledTiming",
    "IncrementalState",
    "analyze",
    "compile_timing",
    "check_enabled",
    "incremental_analyze",
    "incremental_enabled",
    "set_check",
    "set_incremental",
    "TimingSummary",
    "summarize",
    "tns",
    "wns",
    "nve",
    "violating_endpoints",
    "choose_clock_period",
    "TimingPath",
    "trace_critical_path",
]
