"""Clock model with per-flop useful-skew adjustments.

Useful skew moves the clock arrival time of individual capture/launch flops
within physical bounds (set by the generator / user per flop, representing
how much slack the local clock-tree branch can absorb).  A positive arrival
offset on a flop *helps* paths captured by it (later capture edge) and
*hurts* paths launched from it (later launch) — the fundamental trade the
useful-skew engine balances and the reason "over-fixing" one endpoint can
steal slack from its neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from repro.netlist.core import Netlist
from repro.utils.validation import check_positive


@dataclass
class ClockModel:
    """Clock period plus per-flop arrival offsets and their bounds.

    ``arrivals[f]`` is flop *f*'s clock-arrival offset relative to the
    nominal tree (ns, positive = later edge).  Offsets are clamped to
    ``±bounds[f]``; flops absent from ``bounds`` are immovable.
    """

    period: float
    bounds: Dict[int, float] = field(default_factory=dict)
    arrivals: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        for flop, bound in self.bounds.items():
            if bound < 0:
                raise ValueError(f"skew bound of flop {flop} is negative: {bound}")
        for flop, value in self.arrivals.items():
            self._check_within(flop, value)

    @classmethod
    def for_netlist(cls, netlist: Netlist, period: float) -> "ClockModel":
        """Nominal clock (zero skew) with the netlist's per-flop bounds."""
        return cls(period=period, bounds=dict(netlist.skew_bounds))

    # ------------------------------------------------------------------ #
    def bound(self, flop: int) -> float:
        return self.bounds.get(flop, 0.0)

    def arrival(self, flop: int) -> float:
        return self.arrivals.get(flop, 0.0)

    def _check_within(self, flop: int, value: float) -> None:
        bound = self.bound(flop)
        if abs(value) > bound + 1e-12:
            raise ValueError(
                f"clock arrival {value:+.4f} of flop {flop} exceeds "
                f"bound ±{bound:.4f}"
            )

    def set_arrival(self, flop: int, value: float) -> None:
        """Set flop ``flop``'s arrival offset, enforcing its bound."""
        self._check_within(flop, value)
        self.arrivals[flop] = float(value)

    def adjust_arrival(self, flop: int, delta: float) -> float:
        """Add ``delta``, clamped to the bound; returns the applied delta."""
        bound = self.bound(flop)
        current = self.arrival(flop)
        new = float(np.clip(current + delta, -bound, bound))
        self.arrivals[flop] = new
        return new - current

    def copy(self) -> "ClockModel":
        return ClockModel(
            period=self.period, bounds=dict(self.bounds), arrivals=dict(self.arrivals)
        )

    def arrival_vector(self, flop_indices) -> np.ndarray:
        """Arrival offsets for the given flops as an array."""
        return np.array([self.arrival(f) for f in flop_indices], dtype=np.float64)

    def total_adjustment(self) -> float:
        """Sum of absolute skew applied (a clock-network-perturbation proxy)."""
        return float(sum(abs(v) for v in self.arrivals.values()))

    def adjustments(self) -> Mapping[int, float]:
        """Non-zero arrival offsets (flop → ns), e.g. for Fig.-5 histograms."""
        return {f: v for f, v in self.arrivals.items() if v != 0.0}
