"""Critical-path extraction.

Traces the worst arrival path backwards from an endpoint through argmax
fan-in pins — used by the data-path optimizer to decide *which* cells to
size/buffer for a given violating endpoint, and by examples/reports to show
what the optimizers did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.timing.sta import _NO_DRIVER, CompiledTiming, TimingReport


@dataclass(frozen=True)
class TimingPath:
    """A launch-to-capture path: cell indices from startpoint to endpoint."""

    endpoint: int
    cells: List[int]  # startpoint ... endpoint (inclusive)
    arrival: float
    slack: float

    @property
    def depth(self) -> int:
        return len(self.cells)

    def __str__(self) -> str:
        chain = " -> ".join(str(c) for c in self.cells)
        return f"Path(ep={self.endpoint}, slack={self.slack:.3f}): {chain}"


def trace_critical_path(
    compiled: CompiledTiming, report: TimingReport, endpoint_cell: int
) -> TimingPath:
    """Trace the most critical path into ``endpoint_cell``.

    Walks backwards from the endpoint, at each cell following the input pin
    with the largest driver arrival + wire delay, stopping at a launch point
    (flop or input port).
    """
    eps = report.endpoints
    pos = np.nonzero(eps == endpoint_cell)[0]
    if pos.size == 0:
        raise KeyError(f"cell {endpoint_cell} is not an endpoint")
    k = int(pos[0])

    chain = [endpoint_cell]
    current = endpoint_cell
    # Guard against pathological loops (cannot occur in a valid netlist, but
    # a wrong compile would otherwise hang).
    for _ in range(compiled.fanin_idx.shape[0] + 1):
        drivers = compiled.fanin_idx[current]
        best_driver = _NO_DRIVER
        best_time = -np.inf
        for pin, driver in enumerate(drivers):
            if driver == _NO_DRIVER:
                continue
            t = report.cell_arrival[driver] + compiled.fanin_wire_delay[current, pin]
            if t > best_time:
                best_time = t
                best_driver = int(driver)
        if best_driver == _NO_DRIVER:
            break
        chain.append(best_driver)
        if compiled.is_flop[best_driver] or compiled.is_inport[best_driver]:
            break
        current = best_driver
    chain.reverse()
    return TimingPath(
        endpoint=endpoint_cell,
        cells=chain,
        arrival=float(report.arrival[k]),
        slack=float(report.slack[k]),
    )
