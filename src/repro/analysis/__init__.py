"""Design-analysis tools: endpoint strategy-sensitivity classification."""

from repro.analysis.sensitivity import (
    EndpointSensitivity,
    SensitivityReport,
    analyze_sensitivity,
    select_clock_sensitive,
)

__all__ = [
    "EndpointSensitivity",
    "SensitivityReport",
    "analyze_sensitivity",
    "select_clock_sensitive",
]
