"""Endpoint sensitivity analysis: clock-fixable vs data-fixable.

The paper's core observation (§I, §IV-C) is that violating endpoints react
differently to the two optimization strategies: "some are easier fixed from
clock-path, while others, datapath".  This module makes that diagnosis
explicit and inspectable — useful both as a design-analysis tool and as a
transparent, non-learning selection heuristic to position the RL agent
against.

For each violating endpoint we compute:

* **clock fixability** — how much of the deficit useful skew could cover:
  ``min(deficit, capture-flop bound, launch-side surplus) / deficit``
  (0 for output ports, which have no capture clock);
* **data fixability** — the mean remaining sizing headroom over the
  endpoint's fan-in cone, normalized by the maximum ladder length (a proxy
  for how much the data-path optimizer can still do there);
* a **classification** into four quadrants: ``clock``, ``data``, ``both``,
  ``stuck``.

:func:`select_clock_sensitive` turns the analysis into a selection: the
endpoints the RL agent *should* discover — clock-fixable but data-stuck —
ordered by deficit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.features.cones import ConeIndex
from repro.netlist.core import Netlist
from repro.timing.clock import ClockModel
from repro.timing.metrics import violating_endpoints
from repro.timing.sta import TimingAnalyzer, TimingReport


@dataclass(frozen=True)
class EndpointSensitivity:
    """One violating endpoint's strategy profile."""

    endpoint: int
    slack: float
    deficit: float  # −slack
    clock_fixability: float  # [0, 1] fraction of deficit skew could cover
    data_fixability: float  # [0, 1] mean normalized cone sizing headroom
    cone_size: int
    classification: str  # "clock" | "data" | "both" | "stuck"


@dataclass
class SensitivityReport:
    """All violating endpoints, worst slack first."""

    design: str
    entries: List[EndpointSensitivity]

    def by_class(self) -> Dict[str, List[EndpointSensitivity]]:
        out: Dict[str, List[EndpointSensitivity]] = {
            "clock": [], "data": [], "both": [], "stuck": []
        }
        for e in self.entries:
            out[e.classification].append(e)
        return out

    def counts(self) -> Dict[str, int]:
        return {k: len(v) for k, v in self.by_class().items()}

    def __str__(self) -> str:
        counts = self.counts()
        lines = [
            f"sensitivity report for {self.design}: "
            f"{len(self.entries)} violating endpoints "
            f"(clock {counts['clock']}, data {counts['data']}, "
            f"both {counts['both']}, stuck {counts['stuck']})",
            f"{'endpoint':>9} {'slack':>8} {'clockfix':>9} {'datafix':>8} "
            f"{'cone':>5} {'class':>6}",
        ]
        for e in self.entries:
            lines.append(
                f"{e.endpoint:>9} {e.slack:>8.3f} {e.clock_fixability:>9.2f} "
                f"{e.data_fixability:>8.2f} {e.cone_size:>5} "
                f"{e.classification:>6}"
            )
        return "\n".join(lines)


def analyze_sensitivity(
    netlist: Netlist,
    clock_period: float,
    fix_threshold: float = 0.5,
    report: Optional[TimingReport] = None,
) -> SensitivityReport:
    """Classify every violating endpoint by strategy sensitivity.

    ``fix_threshold`` is the fixability level above which a strategy counts
    as viable for the quadrant classification.
    """
    if not 0.0 < fix_threshold <= 1.0:
        raise ValueError(f"fix_threshold must be in (0, 1], got {fix_threshold}")
    analyzer = TimingAnalyzer(netlist)
    clock = ClockModel.for_netlist(netlist, clock_period)
    if report is None:
        report = analyzer.analyze(clock)
    violating = [int(e) for e in violating_endpoints(report)]
    cones = ConeIndex(netlist, violating) if violating else None

    entries: List[EndpointSensitivity] = []
    for endpoint in violating:
        slack = report.endpoint_slack(endpoint)
        deficit = -slack
        cell = netlist.cells[endpoint]

        # Clock side: bound and launch surplus of the capture flop.
        if cell.is_sequential:
            bound = clock.bound(endpoint)
            launch = float(report.cell_worst_slack[endpoint])
            surplus = max(0.0, launch) if np.isfinite(launch) else np.inf
            coverable = min(deficit, bound, surplus)
            clock_fix = float(coverable / deficit) if deficit > 0 else 1.0
        else:
            clock_fix = 0.0  # output ports have no capture clock to move

        # Data side: normalized mean sizing headroom across the cone.
        cone = cones.cone_of(endpoint) if cones else frozenset()
        if cone:
            ratios = []
            for c in cone:
                cone_cell = netlist.cells[c]
                ladder = cone_cell.cell_type.max_size_index
                if ladder > 0:
                    ratios.append(cone_cell.sizing_headroom / ladder)
            data_fix = float(np.mean(ratios)) if ratios else 0.0
        else:
            data_fix = 0.0

        clock_ok = clock_fix >= fix_threshold
        data_ok = data_fix >= fix_threshold
        if clock_ok and data_ok:
            classification = "both"
        elif clock_ok:
            classification = "clock"
        elif data_ok:
            classification = "data"
        else:
            classification = "stuck"
        entries.append(
            EndpointSensitivity(
                endpoint=endpoint,
                slack=slack,
                deficit=deficit,
                clock_fixability=clock_fix,
                data_fixability=data_fix,
                cone_size=len(cone),
                classification=classification,
            )
        )
    return SensitivityReport(design=netlist.name, entries=entries)


def select_clock_sensitive(
    netlist: Netlist,
    clock_period: float,
    max_count: Optional[int] = None,
    fix_threshold: float = 0.5,
) -> List[int]:
    """Heuristic selection: clock-fixable endpoints, data-stuck ones first.

    The transparent version of what RL-CCD learns: prioritize endpoints the
    skew engine can fix that the data-path optimizer cannot, then
    clock-fixable ones generally, worst deficit first.
    """
    report = analyze_sensitivity(netlist, clock_period, fix_threshold)
    pure_clock = [e for e in report.entries if e.classification == "clock"]
    both = [e for e in report.entries if e.classification == "both"]
    ranked = sorted(pure_clock, key=lambda e: -e.deficit) + sorted(
        both, key=lambda e: -e.deficit
    )
    selection = [e.endpoint for e in ranked]
    if max_count is not None:
        selection = selection[:max_count]
    return selection
