"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro table2 --blocks block5,block11 --episodes 12
    python -m repro fig5
    python -m repro fig6
    python -m repro ablations
    python -m repro blocks                # list the 19 designs
    python -m repro bench --out BENCH_smoke.json   # CI perf smoke run
    python -m repro train --episodes 5 --seed 0    # RL training smoke run
    python -m repro report trace.jsonl             # telemetry dashboard

Equivalent to the pytest benchmarks but convenient for one-off runs and for
driving larger sweeps (e.g. ``REPRO_BENCH_SCALE=200 python -m repro table2``).

Global observability flags (before the subcommand):

* ``-v`` / ``-vv`` — log the ``repro.*`` hierarchy at INFO / DEBUG;
* ``--trace PATH`` — enable the :mod:`repro.obs` recorder and append one
  JSONL run record per flow run / training episode to ``PATH`` (same effect
  as ``REPRO_OBS=PATH``; when both are set the CLI flag wins and the
  override is logged);
* ``--profile`` — additionally wrap the command in cProfile + tracemalloc
  and append one ``profile`` record to the trace (requires a trace sink);
* ``--trace-events`` — additionally record every ``obs.span`` as an
  event-level span record (:mod:`repro.obs.tracing`; requires a trace
  sink; same as ``REPRO_TRACE_EVENTS=1``) for ``trace export`` / ``watch
  --spans`` / the report's "Slowest spans" section;
* ``--metrics-port N`` — serve the live recorder as Prometheus text at
  ``http://127.0.0.1:N/metrics`` for the duration of the command
  (:mod:`repro.obs.metrics_export`);
* ``--no-incremental-sta`` — force full STA recomputes everywhere (same as
  ``REPRO_STA_INCREMENTAL=0``; see ``docs/timing.md``);
* ``--no-incremental-gnn`` — force full EP-GNN re-encodes in every rollout
  (same as ``REPRO_GNN_INCREMENTAL=0``; see ``docs/policy.md``).

Trace consumers: ``python -m repro trace export|validate`` and
``python -m repro watch`` (live tail); see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RL-CCD reproduction: regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log repro.* at INFO (-v) or DEBUG (-vv)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable observability and append JSONL run records to PATH "
        "(overrides REPRO_OBS when both are set)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the command (cProfile + tracemalloc) and append a "
        "'profile' record to the trace; requires --trace or REPRO_OBS=<path>",
    )
    parser.add_argument(
        "--trace-events",
        action="store_true",
        help="record every obs.span as an event-level span record in the "
        "trace (span id / parent id / wall-clock / attrs; see 'trace "
        "export' and 'watch --spans'); requires --trace or REPRO_OBS=<path>",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live recorder in Prometheus text format at "
        "http://127.0.0.1:PORT/metrics while the command runs (0 picks "
        "a free port)",
    )
    parser.add_argument(
        "--no-incremental-sta",
        action="store_true",
        help="force every timing analysis down the full-recompute path "
        "(same effect as REPRO_STA_INCREMENTAL=0; for A/B timing runs "
        "and debugging suspected incremental-STA drift)",
    )
    parser.add_argument(
        "--no-incremental-gnn",
        action="store_true",
        help="force every policy rollout down the full EP-GNN re-encode "
        "path (same effect as REPRO_GNN_INCREMENTAL=0; for A/B runs and "
        "debugging suspected incremental-encode drift)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table2 = sub.add_parser("table2", help="regenerate Table II (default vs RL-CCD)")
    table2.add_argument(
        "--blocks",
        default="",
        help="comma-separated block subset (default: all 19)",
    )
    table2.add_argument("--episodes", type=int, default=12, help="RL episode cap")
    table2.add_argument("--seed", type=int, default=0)

    fig5 = sub.add_parser("fig5", help="regenerate Fig. 5 (arrival histogram, block11)")
    fig5.add_argument("--episodes", type=int, default=12)
    fig5.add_argument("--seed", type=int, default=0)

    fig6 = sub.add_parser("fig6", help="regenerate Fig. 6 (transfer learning, block19)")
    fig6.add_argument("--episodes", type=int, default=12)
    fig6.add_argument("--seed", type=int, default=0)

    sub.add_parser("ablations", help="run the A1-A3 ablations")
    sub.add_parser("blocks", help="list the 19 benchmark designs")

    bench = sub.add_parser(
        "bench",
        help="run the fixed perf smoke workload and write BENCH_<sha>.json",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: BENCH_<git sha>.json in the cwd)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--episodes", type=int, default=4)
    bench.add_argument("--cells", type=int, default=320)
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="rollout-pool size for the bench's sequential-vs-pooled "
        "throughput comparison (default 4)",
    )
    bench.add_argument(
        "--batch-episodes",
        type=int,
        default=8,
        metavar="B",
        help="stacked episodes per batched policy pass in the batch "
        "section (default 8)",
    )
    bench.add_argument(
        "--actors",
        type=int,
        default=2,
        metavar="N",
        help="actor count for the bench's distributed actor–learner "
        "throughput section (0 skips the section; default 2)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="diff phase medians against a committed BENCH_*.json baseline "
        "and warn on regressions (add --enforce to fail instead)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative median regression tolerance for --compare (default 0.2)",
    )
    bench.add_argument(
        "--enforce",
        action="store_true",
        help="exit nonzero when a phase median exceeds the noise-aware "
        "threshold (3×MAD over --history runs, or a generous fallback "
        "against the single --compare baseline)",
    )
    bench.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help="directory of past BENCH_*.json runs for MAD-based enforcement",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the run over BENCH_baseline.json (or --out) with a "
        "provenance field, instead of hand-editing the baseline",
    )
    bench.add_argument(
        "--scale-sweep",
        action="store_true",
        help="additionally run the 10K-200K-cell STA scale sweep; per-cell "
        "costs land under the payload's 'scale' key and enter the "
        "median+MAD gate as section.scale.* pseudo-phases",
    )
    bench.add_argument(
        "--scale-cells",
        default="10000,50000,200000",
        metavar="N,N,...",
        help="comma-separated design sizes for --scale-sweep "
        "(default 10000,50000,200000)",
    )

    train = sub.add_parser(
        "train",
        help="train RL-CCD on the seeded smoke design (telemetry-friendly)",
    )
    train.add_argument("--episodes", type=int, default=8, help="episode cap")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--cells", type=int, default=320)
    train.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent rollout-pool workers for flow-reward evaluation "
        "(1 = sequential; see docs/rollout.md)",
    )
    train.add_argument(
        "--actors",
        type=int,
        default=0,
        metavar="N",
        help="distributed actor–learner evaluation: spawn N socket-fed "
        "actor processes sharing the reward cache as a service "
        "(0 = off; mutually exclusive with --workers > 1; training "
        "histories are byte-identical either way — see docs/rollout.md)",
    )
    train.add_argument(
        "--rollout-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-task wall-clock budget in the rollout pool; a worker "
        "exceeding it is killed, respawned and the task retried "
        "(default 120)",
    )
    train.add_argument(
        "--no-reward-cache",
        action="store_true",
        help="disable the content-addressed reward cache (re-sampled "
        "trajectories then re-run the flow; rewards are identical "
        "either way)",
    )
    train.add_argument(
        "--entropy-coef",
        type=float,
        default=0.0,
        help="entropy regularization coefficient (0 disables)",
    )
    train.add_argument(
        "--batch-episodes",
        type=int,
        default=1,
        metavar="B",
        help="roll out B lockstep episodes per batched encode+decode pass "
        "and update on them together (1 = the original one-episode engine; "
        "B > 1 also sets episodes-per-update to B)",
    )

    report = sub.add_parser(
        "report",
        help="render the markdown + ASCII telemetry dashboard from a trace",
    )
    report.add_argument("trace", metavar="TRACE", help="JSONL trace to render")
    report.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help="directory of past BENCH_*.json / *.jsonl runs for phase trends",
    )
    report.add_argument(
        "--last",
        type=int,
        default=10,
        help="history window: last N runs for the median+MAD baselines",
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the rendered report to PATH",
    )

    watch = sub.add_parser(
        "watch",
        help="tail a JSONL trace and print streaming per-episode/phase progress",
    )
    watch.add_argument(
        "trace",
        metavar="TRACE",
        help="JSONL trace a running train/bench is appending to "
        "(may not exist yet; watch waits for it)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="print what the trace holds now and exit instead of following",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval while following (default 0.5)",
    )
    watch.add_argument(
        "--spans",
        action="store_true",
        help="also print one line per span event (high volume; needs a "
        "trace written with --trace-events)",
    )

    trace = sub.add_parser(
        "trace",
        help="event-trace utilities over a JSONL trace (export, validate)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="convert span records to Chrome trace-event / Perfetto JSON",
    )
    export.add_argument("trace", metavar="TRACE", help="JSONL trace to convert")
    export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: <trace>.perfetto.json)",
    )
    validate = trace_sub.add_parser(
        "validate",
        help="check every record in a trace against the versioned schema",
    )
    validate.add_argument("trace", metavar="TRACE", help="JSONL trace to validate")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    # Imports deferred so `--help` stays instant.
    from repro import obs

    obs.setup_logging(args.verbose)
    log = obs.get_logger("cli")
    if args.trace:
        # Precedence when both are set: the CLI flag wins over REPRO_OBS
        # (the explicit, per-invocation intent beats ambient environment),
        # and the override is logged so neither sink surprises anyone.
        env_path = obs.env_trace_path()
        if env_path and env_path != args.trace:
            log.warning(
                "--trace %s overrides REPRO_OBS=%s (CLI flag wins)",
                args.trace,
                env_path,
            )
        obs.set_trace_path(args.trace)
        log.info("tracing run records to %s", args.trace)

    if args.no_incremental_sta:
        from repro.timing import incremental

        incremental.set_incremental(False)
        log.info("incremental STA disabled for this invocation")

    if args.no_incremental_gnn:
        from repro.gnn import incremental as gnn_incremental

        gnn_incremental.set_incremental(False)
        log.info("incremental EP-GNN encoding disabled for this invocation")

    if args.trace_events:
        if not obs.records_active():
            print(
                "error: --trace-events needs a trace sink; pass --trace PATH "
                "or set REPRO_OBS=<path>",
                file=sys.stderr,
            )
            return 2
        tracer = obs.tracing.enable()
        log.info("event-level span tracing enabled (trace id %s)", tracer.trace_id)

    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.metrics_export import MetricsServer, suggest_free_port

        # Metrics without a recorder would be an empty page forever.
        obs.enable()
        try:
            metrics_server = MetricsServer.start(args.metrics_port)
        except OSError as exc:
            # Most commonly EADDRINUSE from another run still serving; a
            # traceback here buries the one actionable fact.
            print(
                f"error: cannot serve metrics on port {args.metrics_port} "
                f"({exc.strerror or exc}); try --metrics-port "
                f"{suggest_free_port()}",
                file=sys.stderr,
            )
            return 2
        log.info("serving Prometheus metrics at %s", metrics_server.url)

    try:
        if args.profile:
            if not obs.records_active():
                print(
                    "error: --profile needs a trace sink; pass --trace PATH or "
                    "set REPRO_OBS=<path>",
                    file=sys.stderr,
                )
                return 2
            from repro.obs.profiling import Profiler

            with Profiler(command=args.command):
                return _dispatch(args)
        return _dispatch(args)
    finally:
        if metrics_server is not None:
            metrics_server.close()


def _dispatch(args: argparse.Namespace) -> int:
    from repro import obs

    # watch/trace are pure record consumers: handled before the benchsuite
    # imports so tailing a trace never pays (or requires) workload setup.
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "trace":
        return _cmd_trace(args)

    from repro.benchsuite.designs import BLOCKS, bench_scale, get_block
    from repro.benchsuite.table2 import Table2Config

    if args.command == "blocks":
        print(f"{'name':>10} {'paper cells':>12} {'generated':>10} {'tech':>7}")
        for spec in BLOCKS:
            print(
                f"{spec.name:>10} {spec.paper_cells:>12,} "
                f"{spec.n_cells():>10,} {spec.library:>7}"
            )
        print(f"(scale 1/{bench_scale()}; override with REPRO_BENCH_SCALE)")
        return 0

    if args.command == "bench":
        from repro.benchsuite.report import format_bench
        from repro.obs.bench import (
            BenchConfig,
            ScaleSweepConfig,
            compare_bench,
            default_output_name,
            load_bench,
            run_bench,
            save_bench,
            update_baseline,
        )

        # Load the baseline up front so a bad --compare path fails before
        # the (slow) workload runs, not after — with a one-line error, not
        # a traceback (missing file and corrupt/foreign JSON alike).
        baseline = None
        if args.compare:
            try:
                baseline = load_bench(args.compare)
            except (OSError, ValueError) as exc:
                print(
                    f"error: cannot load bench baseline {args.compare}: {exc}",
                    file=sys.stderr,
                )
                return 2
        if args.enforce and not (args.compare or args.history):
            print(
                "error: --enforce needs --compare BASELINE and/or --history DIR",
                file=sys.stderr,
            )
            return 2

        scale_config = None
        if args.scale_sweep:
            try:
                sizes = tuple(
                    int(field) for field in args.scale_cells.split(",") if field.strip()
                )
                scale_config = ScaleSweepConfig(seed=args.seed, cells=sizes)
            except ValueError as exc:
                print(f"error: bad --scale-cells: {exc}", file=sys.stderr)
                return 2

        payload = run_bench(
            BenchConfig(
                seed=args.seed,
                episodes=args.episodes,
                cells=args.cells,
                rollout_workers=args.workers,
                batch_episodes=args.batch_episodes,
                distributed_actors=args.actors,
            ),
            scale_config=scale_config,
        )
        if args.update_baseline:
            out = args.out or "BENCH_baseline.json"
            payload = update_baseline(payload, out)
            print(format_bench(payload))
            print(f"refreshed baseline {out}", file=sys.stderr)
        else:
            out = args.out or default_output_name()
            save_bench(payload, out)
            print(format_bench(payload))
            print(f"wrote {out}", file=sys.stderr)

        if baseline is not None:
            warnings = compare_bench(baseline, payload, tolerance=args.tolerance)
            for warning in warnings:
                # GitHub Actions turns `::warning ::` lines into annotations;
                # locally they read fine as plain stderr output.
                print(f"::warning ::bench regression: {warning}", file=sys.stderr)
            if not warnings:
                print(
                    f"no phase median regressed beyond "
                    f"{100.0 * args.tolerance:.0f}% of {args.compare}",
                    file=sys.stderr,
                )

        if args.enforce:
            from repro.obs.history import RunHistory, candidate_phases

            if args.history:
                history = RunHistory.scan(args.history)
                if len(history) == 0 and baseline is not None:
                    history = RunHistory.from_payloads([baseline], [args.compare])
            else:
                history = RunHistory.from_payloads([baseline], [args.compare])
            failures = history.check(candidate_phases(payload), last_n=10)
            for failure in failures:
                print(
                    f"::error ::bench regression: {failure.message()}",
                    file=sys.stderr,
                )
            if failures:
                return 1
            print(
                f"enforced bench gate passed against {len(history)} "
                f"historical run{'s' if len(history) != 1 else ''}",
                file=sys.stderr,
            )
        return 0

    if args.command == "train":
        from repro.agent.reinforce import TrainConfig, train_rlccd
        from repro.obs.bench import build_workload

        workload = build_workload(seed=args.seed, cells=args.cells)

        def progress(record) -> None:
            print(
                f"episode {record.episode}: tns={record.tns:+.4f} "
                f"wns={record.wns:+.4f} selected={record.num_selected} "
                f"advantage={record.advantage:+.3f}",
                file=sys.stderr,
            )

        with obs.span("cli.train"):
            result = train_rlccd(
                workload.policy,
                workload.env,
                workload.flow_config,
                TrainConfig(
                    max_episodes=args.episodes,
                    episodes_per_update=max(args.batch_episodes, 1),
                    batch_episodes=args.batch_episodes,
                    seed=args.seed,
                    workers=args.workers,
                    actors=args.actors,
                    rollout_timeout=args.rollout_timeout,
                    reward_cache=not args.no_reward_cache,
                    entropy_coefficient=args.entropy_coef,
                ),
                progress=progress,
            )
        print(
            f"design {workload.name}: {workload.env.num_endpoints} violating "
            f"endpoints at period {workload.clock_period:.4f}"
        )
        print(f"episodes run: {result.episodes_run} (converged: {result.converged})")
        print(
            f"best TNS: {result.best_tns:+.4f} with "
            f"{len(result.best_selection)} endpoints prioritized"
        )
        if obs.records_active():
            print(f"run records appended to {obs.trace_path()}", file=sys.stderr)
        return 0

    if args.command == "report":
        import os

        from repro.obs.history import RunHistory
        from repro.obs.report import render_report

        try:
            trace_records = obs.read_records(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
            return 2
        history = RunHistory.scan(args.history) if args.history else None
        text = render_report(
            trace_records,
            history=history,
            last_n=args.last,
            source=os.path.basename(args.trace),
        )
        print(text)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    # ``ablations`` has no --episodes/--seed flags; fall back to defaults.
    config = Table2Config(
        max_episodes=getattr(args, "episodes", 12), seed=getattr(args, "seed", 0)
    )

    if args.command == "table2":
        from repro.benchsuite.report import format_table2
        from repro.benchsuite.table2 import run_table2_row

        specs = (
            [get_block(n.strip()) for n in args.blocks.split(",") if n.strip()]
            if args.blocks
            else list(BLOCKS)
        )
        rows = []
        for spec in specs:
            watch = obs.Stopwatch()
            with obs.span("cli.table2_row"):
                rows.append(run_table2_row(spec, config))
            print(
                f"{spec.name}: done in {watch.elapsed:.1f}s",
                file=sys.stderr,
            )
        print(format_table2(rows))
        return 0

    if args.command == "fig5":
        from repro.benchsuite.figures import fig5_arrival_histogram
        from repro.benchsuite.report import format_fig5

        print(format_fig5(fig5_arrival_histogram(config=config)))
        return 0

    if args.command == "fig6":
        from repro.benchsuite.figures import fig6_transfer
        from repro.benchsuite.report import format_fig6

        print(format_fig6(fig6_transfer(config=config)))
        return 0

    if args.command == "ablations":
        from repro.benchsuite.ablations import (
            overfix_vs_underfix,
            rho_sweep,
            selection_baselines,
        )
        from repro.benchsuite.report import format_ablation

        print(format_ablation("A1 - over-fix vs under-fix", overfix_vs_underfix(config=config)))
        print()
        print(format_ablation("A2 - overlap threshold sweep", rho_sweep(config=config)))
        print()
        print(format_ablation("A3 - selection baselines", selection_baselines(config=config)))
        return 0

    return 1


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.watch import follow_records, render_span_line, render_watch_line

    import os

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    if not args.once and not os.path.exists(args.trace):
        print(f"waiting for {args.trace} ...", file=sys.stderr)
    try:
        for record in follow_records(args.trace, interval=args.interval, once=args.once):
            line = render_watch_line(record)
            if line is None and args.spans:
                line = render_span_line(record)
            if line is not None:
                print(line, flush=True)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Downstream pager/head closed; that's a normal way to stop a tail.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        from repro.obs.trace_export import export_file

        out = args.out or f"{args.trace}.perfetto.json"
        try:
            summary = export_file(args.trace, out)
        except (OSError, ValueError) as exc:
            print(f"error: cannot export trace {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(
            f"wrote {out}: {summary['spans']} spans, "
            f"{summary['instants']} instants across "
            f"{summary['processes']} process(es)"
        )
        if summary["spans"] + summary["instants"] == 0:
            print(
                "note: no span records found; record them with "
                "--trace-events (or REPRO_TRACE_EVENTS=1)",
                file=sys.stderr,
            )
        return 0

    from repro.obs.trace_schema import validate_trace

    try:
        counts = validate_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: invalid trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    total = sum(counts.values())
    breakdown = ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
    print(f"{args.trace}: {total} record(s) valid ({breakdown or 'empty'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
