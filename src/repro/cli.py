"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro table2 --blocks block5,block11 --episodes 12
    python -m repro fig5
    python -m repro fig6
    python -m repro ablations
    python -m repro blocks                # list the 19 designs

Equivalent to the pytest benchmarks but convenient for one-off runs and for
driving larger sweeps (e.g. ``REPRO_BENCH_SCALE=200 python -m repro table2``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RL-CCD reproduction: regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table2 = sub.add_parser("table2", help="regenerate Table II (default vs RL-CCD)")
    table2.add_argument(
        "--blocks",
        default="",
        help="comma-separated block subset (default: all 19)",
    )
    table2.add_argument("--episodes", type=int, default=12, help="RL episode cap")
    table2.add_argument("--seed", type=int, default=0)

    fig5 = sub.add_parser("fig5", help="regenerate Fig. 5 (arrival histogram, block11)")
    fig5.add_argument("--episodes", type=int, default=12)
    fig5.add_argument("--seed", type=int, default=0)

    fig6 = sub.add_parser("fig6", help="regenerate Fig. 6 (transfer learning, block19)")
    fig6.add_argument("--episodes", type=int, default=12)
    fig6.add_argument("--seed", type=int, default=0)

    sub.add_parser("ablations", help="run the A1-A3 ablations")
    sub.add_parser("blocks", help="list the 19 benchmark designs")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    # Imports deferred so `--help` stays instant.
    from repro.benchsuite.designs import BLOCKS, bench_scale, get_block
    from repro.benchsuite.table2 import Table2Config

    if args.command == "blocks":
        print(f"{'name':>10} {'paper cells':>12} {'generated':>10} {'tech':>7}")
        for spec in BLOCKS:
            print(
                f"{spec.name:>10} {spec.paper_cells:>12,} "
                f"{spec.n_cells():>10,} {spec.library:>7}"
            )
        print(f"(scale 1/{bench_scale()}; override with REPRO_BENCH_SCALE)")
        return 0

    config = Table2Config(max_episodes=args.episodes, seed=args.seed)

    if args.command == "table2":
        from repro.benchsuite.report import format_table2
        from repro.benchsuite.table2 import run_table2_row

        specs = (
            [get_block(n.strip()) for n in args.blocks.split(",") if n.strip()]
            if args.blocks
            else list(BLOCKS)
        )
        rows = []
        for spec in specs:
            start = time.perf_counter()
            rows.append(run_table2_row(spec, config))
            print(
                f"{spec.name}: done in {time.perf_counter() - start:.1f}s",
                file=sys.stderr,
            )
        print(format_table2(rows))
        return 0

    if args.command == "fig5":
        from repro.benchsuite.figures import fig5_arrival_histogram
        from repro.benchsuite.report import format_fig5

        print(format_fig5(fig5_arrival_histogram(config=config)))
        return 0

    if args.command == "fig6":
        from repro.benchsuite.figures import fig6_transfer
        from repro.benchsuite.report import format_fig6

        print(format_fig6(fig6_transfer(config=config)))
        return 0

    if args.command == "ablations":
        from repro.benchsuite.ablations import (
            overfix_vs_underfix,
            rho_sweep,
            selection_baselines,
        )
        from repro.benchsuite.report import format_ablation

        print(format_ablation("A1 - over-fix vs under-fix", overfix_vs_underfix(config=config)))
        print()
        print(format_ablation("A2 - overlap threshold sweep", rho_sweep(config=config)))
        print()
        print(format_ablation("A3 - selection baselines", selection_baselines(config=config)))
        return 0

    return 1


if __name__ == "__main__":
    raise SystemExit(main())
