"""Shared utilities: seeded RNG handling, configuration, validation, logging."""

from repro.utils.rng import RngMixin, as_rng, spawn_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rng",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
