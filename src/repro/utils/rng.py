"""Seeded random-number-generator helpers.

All stochastic components in the library (netlist generation, placement,
policy sampling, parameter initialization) accept either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps every
experiment reproducible end to end: the benchmark harness fixes one seed per
design and every downstream component derives its own independent stream from
it via :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an ``int`` yields a
    deterministic one; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for substream ``stream``.

    Children derived with distinct ``stream`` indices from the same parent
    are statistically independent and stable across runs, which lets a flow
    hand separate streams to e.g. the placer and the policy without the two
    perturbing each other when one consumes a different number of draws.
    """
    if stream < 0:
        raise ValueError(f"stream index must be non-negative, got {stream}")
    seed = int(rng.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (stream + 1) % 2**63)
    return np.random.default_rng(seed)


class RngMixin:
    """Mixin providing a lazily created ``self.rng`` from ``self._seed``."""

    _seed: SeedLike = None
    _rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = as_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator; subsequent draws restart from ``seed``."""
        self._seed = seed
        self._rng = None
