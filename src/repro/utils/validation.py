"""Argument-validation helpers used across the library.

These raise uniform, descriptive errors so public-API misuse fails loudly at
the boundary instead of producing NaNs deep inside the STA or the autograd
engine.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expect = " or ".join(t.__name__ for t in types)
        else:
            expect = types.__name__
        raise TypeError(f"{name} must be {expect}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` > 0."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
