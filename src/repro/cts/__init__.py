"""Clock-tree synthesis substrate (H-tree, insertion delays, skew bounds)."""

from repro.cts.htree import (
    ClockTree,
    ClockTreeConfig,
    ClockTreeNode,
    apply_clock_tree,
)

__all__ = ["ClockTree", "ClockTreeConfig", "ClockTreeNode", "apply_clock_tree"]
