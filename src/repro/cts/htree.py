"""Clock-tree synthesis substrate: recursive H-tree construction.

The paper's useful-skew engine operates on a *realized clock network* —
ICC2 adjusts sink arrival times by retuning clock buffers, and how much a
given flop's arrival can move is a property of its position in the tree
(spare drive headroom along its branch).  The netlist generator assigns
per-flop skew bounds directly; this module derives them from an explicit
synthesized tree instead:

1. a recursive **H-tree** subdivides the die, terminating in leaf regions;
2. each flop attaches to its region's leaf buffer; the **insertion delay**
   of a sink is the accumulated buffer + wire delay along its root path;
3. a flop's **skew bound** is the retuning headroom of its leaf branch:
   deeper branches (more buffers to retune) and lightly loaded leaves
   (fewer sibling sinks that would be dragged along) allow more adjustment.

The resulting :class:`ClockTree` plugs into the existing flow via
:func:`apply_clock_tree`, which overwrites ``netlist.skew_bounds`` and
returns per-flop insertion delays usable as initial clock arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.netlist.core import Netlist
from repro.utils.validation import check_positive


@dataclass
class ClockTreeNode:
    """One buffer in the H-tree."""

    index: int
    x: float
    y: float
    level: int
    parent: Optional[int]
    children: List[int] = field(default_factory=list)
    sinks: List[int] = field(default_factory=list)  # flop cell indices


@dataclass(frozen=True)
class ClockTreeConfig:
    """H-tree construction knobs."""

    levels: int = 4  # tree depth; 4 levels = 16 leaf regions
    buffer_delay: float = 0.015  # ns per tree buffer
    wire_delay_per_um: float = 0.0004  # ns/µm along tree segments
    # Retuning headroom: how much one buffer stage can be slowed/sped.
    stage_headroom: float = 0.02  # ns per buffer level along the leaf path
    # Leaves with many sinks are harder to retune for one flop alone.
    crowding_penalty: float = 0.5  # bound *= 1/(1 + penalty*(sinks-1)/sinks)

    def __post_init__(self) -> None:
        check_positive("levels", self.levels)
        check_positive("buffer_delay", self.buffer_delay)
        check_positive("stage_headroom", self.stage_headroom)


class ClockTree:
    """A synthesized H-tree over a placed design."""

    def __init__(self, netlist: Netlist, config: ClockTreeConfig = ClockTreeConfig()):
        self.netlist = netlist
        self.config = config
        self.nodes: List[ClockTreeNode] = []
        self._sink_leaf: Dict[int, int] = {}
        self._build()

    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        flops = self.netlist.sequential_cells()
        xs = [c.x for c in self.netlist.cells] or [0.0]
        ys = [c.y for c in self.netlist.cells] or [0.0]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        root = ClockTreeNode(
            index=0, x=(x0 + x1) / 2, y=(y0 + y1) / 2, level=0, parent=None
        )
        self.nodes.append(root)
        self._subdivide(root, (x0, y0, x1, y1), 1)
        leaves = [n for n in self.nodes if not n.children]
        # Attach each flop to the nearest leaf buffer.
        for flop in flops:
            cell = self.netlist.cells[flop]
            best = min(
                leaves, key=lambda n: abs(n.x - cell.x) + abs(n.y - cell.y)
            )
            best.sinks.append(flop)
            self._sink_leaf[flop] = best.index

    def _subdivide(
        self, parent: ClockTreeNode, box: Tuple[float, float, float, float], level: int
    ) -> None:
        if level > self.config.levels:
            return
        x0, y0, x1, y1 = box
        mx, my = (x0 + x1) / 2, (y0 + y1) / 2
        quadrants = (
            (x0, y0, mx, my),
            (mx, y0, x1, my),
            (x0, my, mx, y1),
            (mx, my, x1, y1),
        )
        for quad in quadrants:
            qx = (quad[0] + quad[2]) / 2
            qy = (quad[1] + quad[3]) / 2
            node = ClockTreeNode(
                index=len(self.nodes), x=qx, y=qy, level=level, parent=parent.index
            )
            self.nodes.append(node)
            parent.children.append(node.index)
            self._subdivide(node, quad, level + 1)

    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        return max(n.level for n in self.nodes) + 1

    def leaves(self) -> List[ClockTreeNode]:
        return [n for n in self.nodes if not n.children]

    def leaf_of(self, flop: int) -> ClockTreeNode:
        try:
            return self.nodes[self._sink_leaf[flop]]
        except KeyError:
            raise KeyError(f"flop {flop} is not attached to the clock tree") from None

    def root_path(self, flop: int) -> List[ClockTreeNode]:
        """Buffers from root to the flop's leaf (inclusive)."""
        path: List[ClockTreeNode] = []
        node: Optional[ClockTreeNode] = self.leaf_of(flop)
        while node is not None:
            path.append(node)
            node = self.nodes[node.parent] if node.parent is not None else None
        path.reverse()
        return path

    def insertion_delay(self, flop: int) -> float:
        """Accumulated buffer + wire delay from the root to the flop pin."""
        cell = self.netlist.cells[flop]
        path = self.root_path(flop)
        delay = 0.0
        prev = path[0]
        delay += self.config.buffer_delay  # root buffer
        for node in path[1:]:
            dist = abs(node.x - prev.x) + abs(node.y - prev.y)
            delay += self.config.wire_delay_per_um * dist + self.config.buffer_delay
            prev = node
        dist = abs(cell.x - prev.x) + abs(cell.y - prev.y)
        delay += self.config.wire_delay_per_um * dist
        return delay

    def skew_bound(self, flop: int) -> float:
        """Retuning headroom for the flop's clock arrival (symmetric, ns).

        Buffers along the leaf path each contribute ``stage_headroom``;
        crowded leaves (many sibling flops) discount the bound because
        moving the shared leaf buffer drags siblings along.
        """
        path = self.root_path(flop)
        leaf = path[-1]
        raw = self.config.stage_headroom * len(path)
        siblings = max(1, len(leaf.sinks))
        crowding = 1.0 / (
            1.0 + self.config.crowding_penalty * (siblings - 1) / siblings
        )
        return raw * crowding

    def global_skew(self) -> float:
        """Max insertion-delay difference across sinks (CTS quality metric)."""
        flops = list(self._sink_leaf)
        if not flops:
            return 0.0
        delays = [self.insertion_delay(f) for f in flops]
        return max(delays) - min(delays)


def apply_clock_tree(
    netlist: Netlist, config: ClockTreeConfig = ClockTreeConfig()
) -> Dict[int, float]:
    """Synthesize a tree, install its skew bounds, return insertion delays.

    Overwrites ``netlist.skew_bounds`` with tree-derived values — call after
    placement.  Returns ``{flop: insertion_delay}`` for callers that want
    non-zero initial clock arrivals (e.g. the full-flow extension's CTS
    stage).
    """
    tree = ClockTree(netlist, config)
    delays: Dict[int, float] = {}
    for flop in netlist.sequential_cells():
        netlist.skew_bounds[flop] = tree.skew_bound(flop)
        delays[flop] = tree.insertion_delay(flop)
    return delays
