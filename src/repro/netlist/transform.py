"""Netlist-to-graph transformation for GNN message passing.

The paper constructs EP-GNN message-passing edges "using the netlist
transformation technique proposed in [4]" (Lu & Lim, ICCAD 2022): each
multi-pin net is decomposed into directed driver→sink edges so the GNN sees
signal flow rather than hyperedges.  Eq. 2 aggregates over the local
neighborhood ``N(v)``; we expose three edge modes so the ablation benches can
compare them:

* ``"forward"``   — driver→sink edges only (signal direction);
* ``"backward"``  — sink→driver edges only (fan-in direction);
* ``"bidirectional"`` (default) — both, which is what neighborhood mean
  aggregation over ``N(v)`` implies.

The result is a CSR-style adjacency usable for vectorized mean aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.core import Netlist

_MODES = ("forward", "backward", "bidirectional")


@dataclass(frozen=True)
class MessagePassingGraph:
    """CSR adjacency over netlist cells for neighborhood aggregation.

    ``neighbor_index[indptr[v]:indptr[v+1]]`` lists the neighbors of cell
    ``v``.  ``degree[v]`` is the neighbor count (``|N(v)|`` in Eq. 2);
    isolated nodes have degree 0 and aggregate to a zero vector.
    """

    num_nodes: int
    indptr: np.ndarray
    neighbor_index: np.ndarray
    mode: str

    @property
    def num_edges(self) -> int:
        return int(self.neighbor_index.size)

    def degree(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor indices of ``node``."""
        return self.neighbor_index[self.indptr[node] : self.indptr[node + 1]]

    def mean_aggregate(self, features: np.ndarray) -> np.ndarray:
        """Mean of neighbor feature rows per node (zeros where degree 0).

        Plain-numpy helper used by tests; the differentiable version lives in
        :mod:`repro.gnn.epgnn`.
        """
        features = np.asarray(features)
        out = np.zeros((self.num_nodes, features.shape[1]))
        np.add.at(out, self._edge_dst(), features[self.neighbor_index])
        deg = self.degree()
        nonzero = deg > 0
        out[nonzero] /= deg[nonzero, None]
        return out

    def _edge_dst(self) -> np.ndarray:
        """Destination node of each CSR entry (repeats of row indices)."""
        return np.repeat(np.arange(self.num_nodes), self.degree())


def to_message_passing_graph(netlist: Netlist, mode: str = "bidirectional") -> MessagePassingGraph:
    """Decompose nets into pairwise message-passing edges.

    Flop boundaries are *not* broken here — the GNN may propagate information
    across registers (the paper's features include power/physical attributes
    that are meaningful across sequential boundaries); timing-path semantics
    are enforced separately by the STA and fan-in cone computation.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    n = netlist.num_cells
    src: list = []
    dst: list = []
    for net in netlist.nets:
        for sink_cell, _pin in net.sinks:
            if mode in ("forward", "bidirectional"):
                src.append(net.driver)
                dst.append(sink_cell)
            if mode in ("backward", "bidirectional"):
                src.append(sink_cell)
                dst.append(net.driver)
    if src:
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        order = np.argsort(dst_arr, kind="stable")
        src_arr, dst_arr = src_arr[order], dst_arr[order]
        counts = np.bincount(dst_arr, minlength=n)
    else:
        src_arr = np.empty(0, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return MessagePassingGraph(
        num_nodes=n, indptr=indptr, neighbor_index=src_arr, mode=mode
    )
