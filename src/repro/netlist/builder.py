"""High-level construction API for netlists.

:class:`NetlistBuilder` lets examples and tests describe circuits by name
without managing net indices by hand::

    b = NetlistBuilder("demo", get_library("tech7"))
    b.add_input("a"); b.add_input("b")
    b.add_gate("NAND2", "g1", ["a", "b"])
    b.add_flop("ff1", "g1")
    b.add_gate("INV", "g2", ["ff1"])
    b.add_output("y", "g2")
    netlist = b.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.netlist.core import Cell, Netlist
from repro.netlist.library import Library
from repro.netlist.validate import validate_netlist

CellRef = Union[str, Cell]


class NetlistBuilder:
    """Incremental netlist construction with name-based connections."""

    def __init__(self, name: str, library: Library):
        self.netlist = Netlist(name, library)
        self._pending: List[Cell] = []

    def _resolve(self, ref: CellRef) -> Cell:
        if isinstance(ref, Cell):
            return ref
        return self.netlist.cell_by_name(ref)

    def _drive(self, source: Cell, sink: Cell, pin: int) -> None:
        """Connect ``source``'s output to ``sink``'s input ``pin``."""
        if source.fanout_net is None:
            self.netlist.add_net(f"n_{source.name}", source.index)
        self.netlist.connect(source.fanout_net, sink.index, pin)

    # ------------------------------------------------------------------ #
    def add_input(self, name: str) -> Cell:
        """Add a primary input port (a startpoint)."""
        return self.netlist.add_cell(name, self.netlist.library.cell_type("INPORT"))

    def add_output(self, name: str, source: CellRef) -> Cell:
        """Add a primary output port (an endpoint) fed by ``source``."""
        port = self.netlist.add_cell(name, self.netlist.library.cell_type("OUTPORT"))
        self._drive(self._resolve(source), port, 0)
        return port

    def add_gate(
        self,
        type_name: str,
        name: str,
        inputs: Sequence[CellRef],
        size_index: int = 0,
    ) -> Cell:
        """Add a combinational gate with its inputs fully connected."""
        cell_type = self.netlist.library.cell_type(type_name)
        if cell_type.is_sequential or cell_type.is_port:
            raise ValueError(
                f"add_gate() is for combinational cells; use add_flop()/add_input() "
                f"for {type_name!r}"
            )
        if len(inputs) != cell_type.num_inputs:
            raise ValueError(
                f"{type_name} needs {cell_type.num_inputs} inputs, got {len(inputs)}"
            )
        gate = self.netlist.add_cell(name, cell_type, size_index)
        for pin, ref in enumerate(inputs):
            self._drive(self._resolve(ref), gate, pin)
        return gate

    def add_flop(
        self,
        name: str,
        data: Optional[CellRef] = None,
        size_index: int = 0,
        skew_bound: float = 0.1,
    ) -> Cell:
        """Add a DFF; ``data`` (if given) feeds its D pin.

        ``skew_bound`` is the maximum useful-skew adjustment (ns, symmetric)
        the clock-path optimizer may apply to this flop's clock arrival.
        """
        if skew_bound < 0:
            raise ValueError(f"skew_bound must be non-negative, got {skew_bound}")
        flop = self.netlist.add_cell(name, self.netlist.library.cell_type("DFF"), size_index)
        self.netlist.skew_bounds[flop.index] = float(skew_bound)
        if data is not None:
            self._drive(self._resolve(data), flop, 0)
        return flop

    def connect_data(self, flop: CellRef, source: CellRef) -> None:
        """Late-bind a flop's D input (for feedback structures)."""
        self._drive(self._resolve(source), self._resolve(flop), 0)

    def build(self, validate: bool = True) -> Netlist:
        """Finalize and (optionally) structurally validate the netlist."""
        if validate:
            validate_netlist(self.netlist)
        return self.netlist
