"""Synthetic design generator.

The paper's 19 benchmark designs are confidential industrial blocks.  This
generator produces seeded stand-ins with the structural properties the
RL-CCD selection problem is actually sensitive to:

* **register-bound logic cones** — each endpoint (flop D pin / output port)
  owns a fan-in cone of combinational logic grown *backwards* from the
  endpoint toward startpoints, so path depth (and therefore slack) varies
  per endpoint;
* **cone overlap** — while growing a cone, open input pins *reuse* existing
  cells of the same cluster with probability ``reuse_probability``; shared
  subcones are exactly what the paper's overlap-masking (Fig. 3) keys on;
* **skew-bound diversity** — a fraction of flops are "flexible" (generous
  useful-skew range, e.g. local clock buffers with spare margin) and the rest
  nearly fixed; endpoints captured by flexible flops are the clock-fixable
  ones;
* **sizing-headroom diversity** — some clusters start already upsized (little
  data-path headroom), others at minimum size; endpoints whose cones sit in
  high-headroom clusters are the data-fixable ones.

The combination gives each violating endpoint a distinct sensitivity to
clock- vs. data-path optimization — the heterogeneity the paper identifies
as "not all violating endpoints are equal" (§I).

Cycle freedom is guaranteed by construction: every cell carries a *level*
and connections always go from strictly lower to higher level, with
startpoints at level 0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.core import Cell, Netlist
from repro.netlist.library import get_library
from repro.netlist.validate import validate_netlist
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_probability

# Combinational cell-type mix: weighted toward 1–2 input gates so cone growth
# stays near-linear in depth (3-input gates branch via side pins).
_TYPE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("INV", 0.22),
    ("BUF", 0.10),
    ("NAND2", 0.22),
    ("NOR2", 0.16),
    ("XOR2", 0.08),
    ("AND3", 0.08),
    ("OAI21", 0.08),
    ("MUX2", 0.06),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs controlling one synthetic design.

    ``n_cells`` is a target; the realized count lands close to it (cone
    growth stops creating new cells when the budget is spent).
    """

    name: str
    library: str = "tech7"
    n_cells: int = 1000
    n_inputs: int = 24
    n_outputs: int = 16
    flop_fraction: float = 0.15
    n_clusters: int = 4
    mean_depth: float = 9.0
    depth_jitter: float = 0.35
    reuse_probability: float = 0.35
    cross_cluster_probability: float = 0.08
    side_pin_shortcut_probability: float = 0.6
    max_fanout: int = 8
    flex_flop_fraction: float = 0.45
    flexible_skew_range: Tuple[float, float] = (0.12, 0.35)  # × clock period
    rigid_skew_range: Tuple[float, float] = (0.0, 0.04)  # × clock period
    low_headroom_cluster_fraction: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_cells", self.n_cells)
        check_positive("n_clusters", self.n_clusters)
        check_positive("mean_depth", self.mean_depth)
        check_probability("flop_fraction", self.flop_fraction)
        check_probability("reuse_probability", self.reuse_probability)
        check_probability("cross_cluster_probability", self.cross_cluster_probability)
        check_probability("flex_flop_fraction", self.flex_flop_fraction)
        check_probability(
            "low_headroom_cluster_fraction", self.low_headroom_cluster_fraction
        )
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("designs need at least one input and one output port")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")


class _ConeGrower:
    """Backward cone construction with level bookkeeping."""

    def __init__(self, netlist: Netlist, config: GeneratorConfig, rng: np.random.Generator):
        self.netlist = netlist
        self.config = config
        self.rng = rng
        self.level: Dict[int, int] = {}
        # Per-cluster pools of reusable combinational cells.
        self.pool: Dict[int, List[int]] = {c: [] for c in range(config.n_clusters)}
        self.startpoints: Dict[int, List[int]] = {c: [] for c in range(config.n_clusters)}
        self.comb_budget = 0
        self._type_names = [n for n, _ in _TYPE_WEIGHTS]
        weights = np.array([w for _, w in _TYPE_WEIGHTS])
        self._type_probs = weights / weights.sum()
        # Per-cluster base size index: low-headroom clusters start upsized.
        self.cluster_base_size: Dict[int, int] = {}
        self._counter = 0

    # -------------------------------------------------------------- #
    def register_startpoint(self, cell: Cell) -> None:
        self.level[cell.index] = 0
        self.startpoints[cell.cluster].append(cell.index)

    def _pick_cluster(self, home: int) -> int:
        if self.rng.random() < self.config.cross_cluster_probability:
            return int(self.rng.integers(self.config.n_clusters))
        return home

    def _fanout_count(self, cell_index: int) -> int:
        net = self.netlist.cells[cell_index].fanout_net
        return 0 if net is None else self.netlist.nets[net].fanout

    def _connect(self, driver: int, sink: int, pin: int) -> None:
        driver_cell = self.netlist.cells[driver]
        if driver_cell.fanout_net is None:
            self.netlist.add_net(f"n{driver}", driver)
        self.netlist.connect(driver_cell.fanout_net, sink, pin)

    def _sample_startpoint(self, cluster: int) -> int:
        cluster = self._pick_cluster(cluster)
        candidates = self.startpoints[cluster]
        # Prefer lightly loaded startpoints so fanout stays realistic.
        fresh = [c for c in candidates if self._fanout_count(c) < self.config.max_fanout]
        pick_from = fresh if fresh else candidates
        return int(pick_from[self.rng.integers(len(pick_from))])

    def _sample_reuse(self, cluster: int, below_level: int) -> Optional[int]:
        cluster = self._pick_cluster(cluster)
        candidates = [
            c
            for c in self.pool[cluster]
            if self.level[c] < below_level
            and self._fanout_count(c) < self.config.max_fanout
        ]
        if not candidates:
            return None
        return int(candidates[self.rng.integers(len(candidates))])

    def _new_comb_cell(self, cluster: int, level: int) -> Cell:
        type_name = self._type_names[
            int(self.rng.choice(len(self._type_names), p=self._type_probs))
        ]
        cell_type = self.netlist.library.cell_type(type_name)
        base = self.cluster_base_size.get(cluster, 0)
        size_index = min(
            cell_type.max_size_index,
            max(0, base + int(self.rng.integers(-1, 2))),
        )
        self._counter += 1
        cell = self.netlist.add_cell(
            f"u{self._counter}_{type_name.lower()}", cell_type, size_index
        )
        cell.cluster = cluster
        cell.toggle_rate = float(self.rng.beta(2.0, 5.0))
        self.level[cell.index] = level
        self.pool[cluster].append(cell.index)
        self.comb_budget -= 1
        return cell

    # -------------------------------------------------------------- #
    def grow_cone(self, endpoint: Cell, target_depth: int) -> None:
        """Grow the fan-in cone of ``endpoint`` backwards to startpoints."""
        self.level[endpoint.index] = target_depth
        # Open pins: (cell_index, pin, consumer_level, is_spine).
        queue: deque = deque()
        for pin in range(endpoint.cell_type.num_inputs):
            if endpoint.fanin_nets[pin] is None:
                queue.append((endpoint.index, pin, target_depth, True))
        while queue:
            sink, pin, consumer_level, is_spine = queue.popleft()
            cluster = self.netlist.cells[sink].cluster
            shortcut = (
                not is_spine
                and self.rng.random() < self.config.side_pin_shortcut_probability
            )
            if consumer_level <= 1 or self.comb_budget <= 0 or shortcut:
                driver = None
                if self.rng.random() < self.config.reuse_probability:
                    driver = self._sample_reuse(cluster, consumer_level)
                if driver is None:
                    driver = self._sample_startpoint(cluster)
                self._connect(driver, sink, pin)
                continue
            if self.rng.random() < self.config.reuse_probability:
                reused = self._sample_reuse(cluster, consumer_level)
                if reused is not None:
                    self._connect(reused, sink, pin)
                    continue
            new_cell = self._new_comb_cell(cluster, consumer_level - 1)
            self._connect(new_cell.index, sink, pin)
            for new_pin in range(new_cell.cell_type.num_inputs):
                queue.append(
                    (new_cell.index, new_pin, consumer_level - 1, new_pin == 0)
                )


def generate_design(config: GeneratorConfig) -> Netlist:
    """Generate a structurally valid synthetic design from ``config``.

    The same config (including seed) always yields the identical netlist.
    """
    rng = as_rng(config.seed)
    library = get_library(config.library)
    netlist = Netlist(config.name, library)
    grower = _ConeGrower(netlist, config, rng)

    n_flops = max(2, int(round(config.flop_fraction * config.n_cells)))
    n_fixed = n_flops + config.n_inputs + config.n_outputs
    grower.comb_budget = max(0, config.n_cells - n_fixed)

    # Cluster headroom profile: a fraction of clusters start upsized.
    n_low = int(round(config.low_headroom_cluster_fraction * config.n_clusters))
    low_clusters = set(rng.choice(config.n_clusters, size=n_low, replace=False).tolist())
    for c in range(config.n_clusters):
        grower.cluster_base_size[c] = 3 if c in low_clusters else 0

    # --- startpoints and endpoints ------------------------------------ #
    inport = library.cell_type("INPORT")
    outport = library.cell_type("OUTPORT")
    dff = library.cell_type("DFF")

    for i in range(config.n_inputs):
        cell = netlist.add_cell(f"in{i}", inport)
        cell.cluster = i % config.n_clusters
        cell.toggle_rate = float(rng.beta(2.0, 4.0))
        grower.register_startpoint(cell)

    flops: List[Cell] = []
    period = library.default_clock_period
    for i in range(n_flops):
        cell = netlist.add_cell(f"ff{i}", dff, size_index=int(rng.integers(0, 2)))
        cell.cluster = int(rng.integers(config.n_clusters))
        cell.toggle_rate = float(rng.beta(2.0, 5.0))
        if rng.random() < config.flex_flop_fraction:
            lo, hi = config.flexible_skew_range
        else:
            lo, hi = config.rigid_skew_range
        netlist.skew_bounds[cell.index] = float(rng.uniform(lo, hi) * period)
        grower.register_startpoint(cell)
        flops.append(cell)

    outputs: List[Cell] = []
    for i in range(config.n_outputs):
        cell = netlist.add_cell(f"out{i}", outport)
        cell.cluster = int(rng.integers(config.n_clusters))
        outputs.append(cell)

    # --- grow endpoint cones (flop D pins, then output ports) --------- #
    endpoints: List[Cell] = flops + outputs
    order = rng.permutation(len(endpoints))
    for idx in order:
        endpoint = endpoints[idx]
        depth = max(
            2,
            int(
                round(
                    rng.lognormal(
                        mean=np.log(config.mean_depth), sigma=config.depth_jitter
                    )
                )
            ),
        )
        grower.grow_cone(endpoint, depth)

    validate_netlist(netlist)
    return netlist


def quick_design(
    name: str = "quick",
    n_cells: int = 400,
    seed: int = 0,
    library: str = "tech7",
    **overrides,
) -> Netlist:
    """Convenience wrapper: a small valid design for tests and examples."""
    config = GeneratorConfig(
        name=name, library=library, n_cells=n_cells, seed=seed, **overrides
    )
    return generate_design(config)
