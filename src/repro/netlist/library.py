"""Synthetic standard-cell libraries for the 5/7/12 nm technology nodes.

The paper evaluates on industrial designs in 5–12 nm technologies whose
libraries are confidential.  We define compact synthetic libraries with the
structure that matters to CCD optimization:

* every combinational cell type comes in several **drive strengths** (sizes);
  upsizing lowers intrinsic delay and drive resistance but raises input
  capacitance and power — this is the lever of the data-path optimizer and
  the source of the "sizing headroom" heterogeneity the RL agent exploits;
* delay follows a linear NLDM-style model
  ``d = intrinsic + R_drive · C_load + k_slew · slew_in`` and output slew
  follows ``slew = slew_intrinsic + k_load · C_load`` — first-order but
  preserving the load/slew coupling real tools see;
* sequential cells (DFF) have clock-to-Q delay and setup time, the
  quantities the useful-skew engine trades against each other.

Units: time **ns**, capacitance **fF** (with R_drive in ns/fF), power **mW**,
distance **µm**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CellSize:
    """One drive strength of a cell type."""

    code: str
    intrinsic_delay: float  # ns
    drive_resistance: float  # ns per fF of load
    input_cap: float  # fF per input pin
    slew_intrinsic: float  # ns
    slew_load_factor: float  # ns per fF of load
    slew_sensitivity: float  # added delay per ns of input slew
    internal_power: float  # mW at nominal toggle rate
    leakage_power: float  # mW
    area: float = 0.0  # µm² (0 for ports)

    def delay(self, load_cap: float, input_slew: float) -> float:
        """Propagation delay for the given load and input slew."""
        return (
            self.intrinsic_delay
            + self.drive_resistance * load_cap
            + self.slew_sensitivity * input_slew
        )

    def output_slew(self, load_cap: float) -> float:
        """Output transition time for the given load."""
        return self.slew_intrinsic + self.slew_load_factor * load_cap


@dataclass(frozen=True)
class CellType:
    """A logic function available in several sizes.

    ``num_inputs == 0`` marks primary-input ports; ``is_sequential`` marks
    flip-flops, which additionally carry ``clk_to_q`` and ``setup`` times.
    """

    name: str
    num_inputs: int
    sizes: Tuple[CellSize, ...]
    is_sequential: bool = False
    is_buffer: bool = False
    is_port: bool = False
    clk_to_q: float = 0.0  # ns, sequential only
    setup_time: float = 0.0  # ns, sequential only
    hold_time: float = 0.0  # ns, sequential only

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError(f"cell type {self.name!r} needs at least one size")
        if self.num_inputs < 0:
            raise ValueError(f"cell type {self.name!r} has negative input count")

    @property
    def max_size_index(self) -> int:
        return len(self.sizes) - 1

    def size(self, index: int) -> CellSize:
        """The :class:`CellSize` at ``index`` (bounds-checked)."""
        if not 0 <= index < len(self.sizes):
            raise IndexError(
                f"size index {index} out of range for {self.name!r} "
                f"({len(self.sizes)} sizes)"
            )
        return self.sizes[index]


@dataclass(frozen=True)
class Library:
    """A technology library: cell types plus global wire/clock parameters."""

    name: str
    node_nm: int
    cell_types: Dict[str, CellType]
    wire_cap_per_um: float  # fF/µm
    wire_res_delay_per_um: float  # ns/µm (lumped first-order wire delay)
    default_clock_period: float  # ns
    default_input_slew: float = 0.02  # ns at primary inputs
    default_port_cap: float = 1.0  # fF presented by output ports

    def __post_init__(self) -> None:
        check_positive("wire_cap_per_um", self.wire_cap_per_um)
        check_positive("default_clock_period", self.default_clock_period)

    def cell_type(self, name: str) -> CellType:
        """Look up a cell type, raising ``KeyError`` with suggestions."""
        try:
            return self.cell_types[name]
        except KeyError:
            raise KeyError(
                f"unknown cell type {name!r} in library {self.name!r}; "
                f"available: {sorted(self.cell_types)}"
            ) from None

    @property
    def combinational_names(self) -> Tuple[str, ...]:
        return tuple(
            n
            for n, t in self.cell_types.items()
            if not t.is_sequential and not t.is_port and t.num_inputs > 0
        )


def _sizes(
    base_delay: float,
    base_res: float,
    base_cap: float,
    base_power: float,
    n_sizes: int,
    scale: float,
) -> Tuple[CellSize, ...]:
    """Build a geometric size ladder.

    Each step up multiplies drive (divides resistance) by ~1.8 while input
    capacitance and power grow by ~1.6 — the classic sizing trade-off.
    ``scale`` applies a whole-node speed/cap scaling (5 nm < 7 nm < 12 nm).
    """
    sizes = []
    for i in range(n_sizes):
        drive = 1.8**i
        cap_mult = 1.6**i
        sizes.append(
            CellSize(
                code=f"X{2**i}",
                intrinsic_delay=scale * base_delay / (1.0 + 0.25 * i),
                drive_resistance=scale * base_res / drive,
                input_cap=base_cap * cap_mult * scale,
                slew_intrinsic=scale * 0.3 * base_delay,
                slew_load_factor=scale * 0.4 * base_res / drive,
                slew_sensitivity=0.12,
                internal_power=base_power * cap_mult,
                leakage_power=0.12 * base_power * cap_mult,
                area=0.5 * scale**2 * cap_mult,
            )
        )
    return tuple(sizes)


def _build_library(name: str, node_nm: int, scale: float, clock_period: float) -> Library:
    """Construct one technology library with a shared cell-type roster."""
    port_size = CellSize(
        code="PORT",
        intrinsic_delay=0.0,
        drive_resistance=0.002 * scale,
        input_cap=1.0 * scale,
        slew_intrinsic=0.02 * scale,
        slew_load_factor=0.001 * scale,
        slew_sensitivity=0.0,
        internal_power=0.0,
        leakage_power=0.0,
    )
    types = {
        "INPORT": CellType("INPORT", 0, (port_size,), is_port=True),
        "OUTPORT": CellType("OUTPORT", 1, (port_size,), is_port=True),
        "BUF": CellType(
            "BUF", 1, _sizes(0.012, 0.0045, 0.9, 0.004, 5, scale), is_buffer=True
        ),
        "INV": CellType("INV", 1, _sizes(0.008, 0.0040, 0.8, 0.003, 5, scale)),
        "NAND2": CellType("NAND2", 2, _sizes(0.014, 0.0055, 1.1, 0.005, 4, scale)),
        "NOR2": CellType("NOR2", 2, _sizes(0.016, 0.0060, 1.2, 0.005, 4, scale)),
        "AND3": CellType("AND3", 3, _sizes(0.020, 0.0065, 1.3, 0.007, 4, scale)),
        "OAI21": CellType("OAI21", 3, _sizes(0.022, 0.0070, 1.4, 0.008, 4, scale)),
        "XOR2": CellType("XOR2", 2, _sizes(0.026, 0.0080, 1.6, 0.010, 3, scale)),
        "MUX2": CellType("MUX2", 3, _sizes(0.024, 0.0075, 1.5, 0.009, 3, scale)),
        "DFF": CellType(
            "DFF",
            1,
            _sizes(0.010, 0.0050, 1.4, 0.012, 3, scale),
            is_sequential=True,
            clk_to_q=0.045 * scale,
            setup_time=0.030 * scale,
            hold_time=0.012 * scale,
        ),
    }
    return Library(
        name=name,
        node_nm=node_nm,
        cell_types=types,
        wire_cap_per_um=0.18 * scale,
        wire_res_delay_per_um=0.00035 * scale,
        default_clock_period=clock_period,
    )


# The three technology nodes the paper's 19 designs span.  Smaller nodes are
# faster (smaller delay/cap scale) and run at tighter clock periods.
TECH5 = _build_library("tech5", 5, scale=0.75, clock_period=0.60)
TECH7 = _build_library("tech7", 7, scale=1.00, clock_period=0.80)
TECH12 = _build_library("tech12", 12, scale=1.45, clock_period=1.10)

LIBRARIES: Dict[str, Library] = {lib.name: lib for lib in (TECH5, TECH7, TECH12)}


def get_library(name: str) -> Library:
    """Fetch one of the built-in technology libraries by name."""
    try:
        return LIBRARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; available: {sorted(LIBRARIES)}"
        ) from None
