"""Netlist (de)serialization to a JSON interchange format.

Lets users persist generated designs (with placement, skew bounds and
toggle rates), share reproducible benchmark inputs, and load designs
produced outside the generator.  The format is deliberately simple and
versioned:

.. code-block:: json

    {
      "format": "repro-netlist",
      "version": 1,
      "name": "block5",
      "library": "tech5",
      "parasitic_scale": 1.0,
      "cells": [
        {"name": "ff0", "type": "DFF", "size": 1, "x": 1.0, "y": 2.0,
         "toggle": 0.12, "cluster": 0, "skew_bound": 0.08},
        ...
      ],
      "nets": [
        {"name": "n0", "driver": "ff0", "sinks": [["u1_inv", 0]]},
        ...
      ]
    }

Cells are referenced by name (stable across round trips); the library is
referenced by name and must exist in :data:`repro.netlist.library.LIBRARIES`
at load time — cell geometry/electrical data are library-owned, not
serialized.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.netlist.core import Netlist
from repro.netlist.library import get_library
from repro.netlist.validate import validate_netlist

FORMAT_NAME = "repro-netlist"
FORMAT_VERSION = 1


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    """Serialize ``netlist`` to a JSON-ready dictionary."""
    cells = []
    for cell in netlist.cells:
        entry: Dict[str, Any] = {
            "name": cell.name,
            "type": cell.cell_type.name,
            "size": cell.size_index,
            "x": cell.x,
            "y": cell.y,
            "toggle": cell.toggle_rate,
            "cluster": cell.cluster,
        }
        if cell.index in netlist.skew_bounds:
            entry["skew_bound"] = netlist.skew_bounds[cell.index]
        cells.append(entry)
    nets = [
        {
            "name": net.name,
            "driver": netlist.cells[net.driver].name,
            "sinks": [
                [netlist.cells[cell_index].name, pin]
                for cell_index, pin in net.sinks
            ],
        }
        for net in netlist.nets
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": netlist.name,
        "library": netlist.library.name,
        "parasitic_scale": netlist.parasitic_scale,
        "cells": cells,
        "nets": nets,
    }


def netlist_from_dict(data: Dict[str, Any]) -> Netlist:
    """Reconstruct a netlist from :func:`netlist_to_dict` output.

    Raises ``ValueError`` on format mismatches and re-validates the result
    structurally (never trust external inputs).
    """
    if data.get("format") != FORMAT_NAME:
        raise ValueError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {FORMAT_NAME} version {version!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    library = get_library(data["library"])
    netlist = Netlist(data["name"], library)
    netlist.parasitic_scale = float(data.get("parasitic_scale", 1.0))

    for entry in data["cells"]:
        cell = netlist.add_cell(
            entry["name"], library.cell_type(entry["type"]), int(entry.get("size", 0))
        )
        cell.x = float(entry.get("x", 0.0))
        cell.y = float(entry.get("y", 0.0))
        cell.toggle_rate = float(entry.get("toggle", 0.1))
        cell.cluster = int(entry.get("cluster", 0))
        if "skew_bound" in entry:
            bound = float(entry["skew_bound"])
            if bound < 0:
                raise ValueError(
                    f"cell {cell.name!r} has negative skew bound {bound}"
                )
            netlist.skew_bounds[cell.index] = bound

    for entry in data["nets"]:
        driver = netlist.cell_by_name(entry["driver"])
        net = netlist.add_net(entry["name"], driver.index)
        for sink_name, pin in entry["sinks"]:
            sink = netlist.cell_by_name(sink_name)
            netlist.connect(net.index, sink.index, int(pin))

    validate_netlist(netlist)
    return netlist


def save_netlist(netlist: Netlist, path: str, indent: int = 1) -> None:
    """Write ``netlist`` as JSON to ``path`` (parent dirs created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(netlist_to_dict(netlist), handle, indent=indent)


def load_netlist(path: str) -> Netlist:
    """Load a netlist previously written by :func:`save_netlist`."""
    with open(path) as handle:
        return netlist_from_dict(json.load(handle))
