"""Gate-level netlist data model.

A :class:`Netlist` is a set of :class:`Cell` instances connected by
:class:`Net` instances.  Cells reference a :class:`~repro.netlist.library.CellType`
and carry a mutable ``size_index`` (the data-path optimizer's sizing moves) and
a placement location (filled in by :mod:`repro.placement`).

Terminology follows STA practice:

* **startpoints** — primary input ports and flip-flop Q outputs (where timing
  paths launch);
* **endpoints** — flip-flop D inputs and primary output ports (where timing
  paths are captured; the objects RL-CCD prioritizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.netlist.library import CellSize, CellType, Library


@dataclass
class Cell:
    """One instance of a library cell type.

    ``fanin_nets[i]`` is the net driving input pin ``i`` (or ``None`` while
    under construction); ``fanout_net`` is the net driven by the output pin
    (``None`` for output ports, which only consume).
    """

    index: int
    name: str
    cell_type: CellType
    size_index: int = 0
    x: float = 0.0
    y: float = 0.0
    fanin_nets: List[Optional[int]] = field(default_factory=list)
    fanout_net: Optional[int] = None
    # Switching activity at the output pin (0..1, toggles per clock cycle);
    # feeds the net-switching-power model and the Table-I "max toggle" feature.
    toggle_rate: float = 0.1
    # Logical-hierarchy cluster id; the placer keeps clusters together.
    cluster: int = 0

    def __post_init__(self) -> None:
        if not self.fanin_nets:
            self.fanin_nets = [None] * self.cell_type.num_inputs

    @property
    def size(self) -> CellSize:
        """The currently selected drive strength."""
        return self.cell_type.size(self.size_index)

    @property
    def is_sequential(self) -> bool:
        return self.cell_type.is_sequential

    @property
    def is_input_port(self) -> bool:
        return self.cell_type.is_port and self.cell_type.num_inputs == 0

    @property
    def is_output_port(self) -> bool:
        return self.cell_type.is_port and self.cell_type.num_inputs == 1

    @property
    def is_endpoint(self) -> bool:
        """Endpoints are where setup checks happen: flop D pins, output ports."""
        return self.is_sequential or self.is_output_port

    @property
    def is_startpoint(self) -> bool:
        """Startpoints launch paths: input ports, flop Q pins."""
        return self.is_sequential or self.is_input_port

    @property
    def sizing_headroom(self) -> int:
        """How many upsizing steps remain for this cell."""
        return self.cell_type.max_size_index - self.size_index

    def __repr__(self) -> str:
        return (
            f"Cell({self.index}, {self.name!r}, {self.cell_type.name}"
            f"{self.size.code}, at=({self.x:.1f},{self.y:.1f}))"
        )


@dataclass
class Net:
    """A signal net: one driver output pin, many sink input pins.

    Sinks are ``(cell_index, input_pin_index)`` pairs.
    """

    index: int
    name: str
    driver: int
    sinks: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def __repr__(self) -> str:
        return f"Net({self.index}, {self.name!r}, driver={self.driver}, fanout={self.fanout})"


class Netlist:
    """A mutable gate-level netlist bound to a technology library."""

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.cells: List[Cell] = []
        self.nets: List[Net] = []
        self._name_to_cell: Dict[str, int] = {}
        # Per-flop useful-skew flexibility in ns (filled by the generator or
        # user; the useful-skew engine clamps adjustments to ±bound).
        self.skew_bounds: Dict[int, float] = {}
        # Wire-parasitic multiplier applied on top of the library's per-µm
        # coefficients.  1.0 = placement-stage estimates; the full-flow
        # extension raises it at later stages to model extracted parasitics.
        self.parasitic_scale: float = 1.0
        # Monotonic counter bumped by every mutator (add_cell/add_net/
        # connect/resize_cell/insert_buffer).  TimingAnalyzer compares it
        # against the version it last compiled/was notified at, so a
        # mutation that skipped notify_resize()/invalidate() can never be
        # read stale.  restore_netlist_state() bumps it too — a restore is
        # a bulk mutation from the analyzer's point of view.
        self.mutation_version: int = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_cell(self, name: str, cell_type: CellType, size_index: int = 0) -> Cell:
        """Append a cell; names must be unique within the netlist."""
        if name in self._name_to_cell:
            raise ValueError(f"duplicate cell name {name!r}")
        cell_type.size(size_index)  # bounds check
        cell = Cell(index=len(self.cells), name=name, cell_type=cell_type, size_index=size_index)
        self.cells.append(cell)
        self._name_to_cell[name] = cell.index
        self.mutation_version += 1
        return cell

    def add_net(self, name: str, driver: int, sinks: Sequence[Tuple[int, int]] = ()) -> Net:
        """Create a net driven by ``driver``'s output pin."""
        driver_cell = self.cells[driver]
        if driver_cell.is_output_port:
            raise ValueError(f"output port {driver_cell.name!r} cannot drive a net")
        if driver_cell.fanout_net is not None:
            raise ValueError(f"cell {driver_cell.name!r} already drives a net")
        net = Net(index=len(self.nets), name=name, driver=driver)
        self.nets.append(net)
        driver_cell.fanout_net = net.index
        self.mutation_version += 1
        for cell_index, pin in sinks:
            self.connect(net.index, cell_index, pin)
        return net

    def connect(self, net_index: int, cell_index: int, pin: int) -> None:
        """Attach input pin ``pin`` of ``cell_index`` to ``net_index``."""
        net = self.nets[net_index]
        cell = self.cells[cell_index]
        if not 0 <= pin < cell.cell_type.num_inputs:
            raise ValueError(
                f"cell {cell.name!r} ({cell.cell_type.name}) has no input pin {pin}"
            )
        if cell.fanin_nets[pin] is not None:
            raise ValueError(f"input pin {pin} of {cell.name!r} already connected")
        cell.fanin_nets[pin] = net.index
        net.sinks.append((cell_index, pin))
        self.mutation_version += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def cell_by_name(self, name: str) -> Cell:
        try:
            return self.cells[self._name_to_cell[name]]
        except KeyError:
            raise KeyError(f"no cell named {name!r} in netlist {self.name!r}") from None

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def endpoints(self) -> List[int]:
        """Indices of all endpoint cells (flops and output ports)."""
        return [c.index for c in self.cells if c.is_endpoint]

    def startpoints(self) -> List[int]:
        """Indices of all startpoint cells (flops and input ports)."""
        return [c.index for c in self.cells if c.is_startpoint]

    def sequential_cells(self) -> List[int]:
        return [c.index for c in self.cells if c.is_sequential]

    def fanin_cells(self, cell_index: int) -> List[int]:
        """Driver cell of each connected input pin."""
        cell = self.cells[cell_index]
        drivers = []
        for net_index in cell.fanin_nets:
            if net_index is not None:
                drivers.append(self.nets[net_index].driver)
        return drivers

    def fanout_cells(self, cell_index: int) -> List[int]:
        """Sink cells of the driven net (empty for output ports)."""
        cell = self.cells[cell_index]
        if cell.fanout_net is None:
            return []
        return [sink_cell for sink_cell, _pin in self.nets[cell.fanout_net].sinks]

    def net_load_cap(self, net_index: int) -> float:
        """Total capacitive load on a net: sink pin caps + wire cap.

        Wire capacitance uses the half-perimeter bounding box of the net's
        pins scaled by the library's per-µm coefficient.
        """
        net = self.nets[net_index]
        cap = 0.0
        for sink_cell, _pin in net.sinks:
            sink = self.cells[sink_cell]
            if sink.is_output_port:
                cap += self.library.default_port_cap
            else:
                cap += sink.size.input_cap
        cap += (
            self.parasitic_scale
            * self.library.wire_cap_per_um
            * self.net_hpwl(net_index)
        )
        return cap

    def net_hpwl(self, net_index: int) -> float:
        """Half-perimeter wirelength of a net's bounding box (µm)."""
        net = self.nets[net_index]
        driver = self.cells[net.driver]
        xs = [driver.x]
        ys = [driver.y]
        for sink_cell, _pin in net.sinks:
            xs.append(self.cells[sink_cell].x)
            ys.append(self.cells[sink_cell].y)
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self) -> float:
        """Sum of net half-perimeter wirelengths (the placer's objective)."""
        return sum(self.net_hpwl(i) for i in range(len(self.nets)))

    def total_cell_area(self) -> float:
        """Sum of placed cell areas (µm²) — the A in PPA reporting.

        Grows when the data-path optimizer upsizes cells or inserts buffers;
        useful skew leaves it untouched.
        """
        return sum(c.size.area for c in self.cells)

    # ------------------------------------------------------------------ #
    # mutation (data-path optimization moves)
    # ------------------------------------------------------------------ #
    def resize_cell(self, cell_index: int, new_size_index: int) -> int:
        """Change a cell's drive strength; returns the previous size index."""
        cell = self.cells[cell_index]
        cell.cell_type.size(new_size_index)  # bounds check
        previous = cell.size_index
        cell.size_index = new_size_index
        self.mutation_version += 1
        return previous

    def insert_buffer(
        self,
        net_index: int,
        sink_subset: Sequence[Tuple[int, int]],
        location: Optional[Tuple[float, float]] = None,
        size_index: int = 0,
    ) -> Cell:
        """Insert a BUF driving ``sink_subset``, detached from ``net_index``.

        The classic fanout-splitting move: the original net keeps the
        remaining sinks plus the new buffer's input; a fresh net routes the
        buffer output to ``sink_subset``.  Returns the new buffer cell.
        """
        net = self.nets[net_index]
        subset = list(sink_subset)
        if not subset:
            raise ValueError("insert_buffer requires a non-empty sink subset")
        current = set(net.sinks)
        for pair in subset:
            if pair not in current:
                raise ValueError(f"sink {pair} is not on net {net.name!r}")
        buf_type = self.library.cell_type("BUF")
        buf = self.add_cell(f"{net.name}_buf{len(self.cells)}", buf_type, size_index)
        if location is None:
            xs = [self.cells[c].x for c, _ in subset]
            ys = [self.cells[c].y for c, _ in subset]
            location = (sum(xs) / len(xs), sum(ys) / len(ys))
        buf.x, buf.y = location
        # Rewire: subset sinks move to the new net.
        net.sinks = [pair for pair in net.sinks if pair not in set(subset)]
        new_net = Net(index=len(self.nets), name=f"{net.name}_split{len(self.nets)}", driver=buf.index)
        self.nets.append(new_net)
        buf.fanout_net = new_net.index
        for cell_index, pin in subset:
            self.cells[cell_index].fanin_nets[pin] = new_net.index
            new_net.sinks.append((cell_index, pin))
        # Buffer input joins the original net.
        buf.fanin_nets[0] = net.index
        net.sinks.append((buf.index, 0))
        self.mutation_version += 1
        return buf

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, lib={self.library.name}, "
            f"cells={len(self.cells)}, nets={len(self.nets)})"
        )

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)
