"""Netlist substrate: libraries, data model, generation, GNN transform."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import Cell, Net, Netlist
from repro.netlist.generator import GeneratorConfig, generate_design, quick_design
from repro.netlist.io import (
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.netlist.library import (
    LIBRARIES,
    TECH5,
    TECH7,
    TECH12,
    CellSize,
    CellType,
    Library,
    get_library,
)
from repro.netlist.transform import MessagePassingGraph, to_message_passing_graph
from repro.netlist.validate import NetlistError, validate_netlist

__all__ = [
    "Cell",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "CellSize",
    "CellType",
    "Library",
    "get_library",
    "LIBRARIES",
    "TECH5",
    "TECH7",
    "TECH12",
    "GeneratorConfig",
    "generate_design",
    "quick_design",
    "save_netlist",
    "load_netlist",
    "netlist_to_dict",
    "netlist_from_dict",
    "MessagePassingGraph",
    "to_message_passing_graph",
    "NetlistError",
    "validate_netlist",
]
