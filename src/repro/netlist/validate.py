"""Structural validation of netlists.

The STA engine assumes a well-formed netlist: every input pin driven, one
driver per net, and no combinational cycles (paths are broken only at
flip-flops).  :func:`validate_netlist` checks all of it and raises
:class:`NetlistError` with the first problem found.
"""

from __future__ import annotations

from typing import List

from repro.netlist.core import Netlist


class NetlistError(ValueError):
    """A structural problem that would make timing analysis meaningless."""


def validate_netlist(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if the netlist is structurally invalid."""
    _check_connectivity(netlist)
    _check_combinational_acyclic(netlist)


def _check_connectivity(netlist: Netlist) -> None:
    for cell in netlist.cells:
        for pin, net_index in enumerate(cell.fanin_nets):
            if net_index is None:
                raise NetlistError(
                    f"input pin {pin} of cell {cell.name!r} is unconnected"
                )
            net = netlist.nets[net_index]
            if (cell.index, pin) not in net.sinks:
                raise NetlistError(
                    f"pin bookkeeping mismatch: {cell.name!r}.{pin} references "
                    f"net {net.name!r} which does not list it as a sink"
                )
        if cell.fanout_net is None and not cell.is_endpoint and not cell.is_startpoint:
            # Dangling combinational output: harmless for timing but almost
            # always a construction bug, so reject it.  (Unused input ports
            # and flop Q pins are legal — real designs have them.)
            raise NetlistError(f"cell {cell.name!r} drives nothing")
    for net in netlist.nets:
        driver = netlist.cells[net.driver]
        if driver.fanout_net != net.index:
            raise NetlistError(
                f"net {net.name!r} claims driver {driver.name!r}, which "
                f"drives net index {driver.fanout_net}"
            )
        if not net.sinks:
            raise NetlistError(f"net {net.name!r} has no sinks")


def _check_combinational_acyclic(netlist: Netlist) -> None:
    """Detect cycles through combinational cells (flops legally break paths).

    Iterative DFS with colors; recursion would overflow on deep designs.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * netlist.num_cells

    for start in range(netlist.num_cells):
        if color[start] != WHITE or netlist.cells[start].is_sequential:
            continue
        stack: List[tuple] = [(start, iter(_comb_fanout(netlist, start)))]
        color[start] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == GRAY:
                    raise NetlistError(
                        f"combinational cycle through cell "
                        f"{netlist.cells[child].name!r}"
                    )
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, iter(_comb_fanout(netlist, child))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def _comb_fanout(netlist: Netlist, cell_index: int) -> List[int]:
    """Fanout cells reached without crossing a flop boundary."""
    return [
        sink
        for sink in netlist.fanout_cells(cell_index)
        if not netlist.cells[sink].is_sequential
    ]
