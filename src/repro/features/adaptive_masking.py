"""Improved overlap-masking strategies — the paper's stated future work (§V).

"…so as to improve the overlap masking technique and quantify its impact on
the achieved PPA values."  The paper's Algorithm 1 uses one fixed threshold
ρ = 0.3 for every selection.  This module generalizes masking behind a
small strategy interface and provides three variants:

* :class:`FixedRho` — the paper's rule (reference behaviour);
* :class:`SizeAdaptiveRho` — the effective threshold scales with the
  selected endpoint's cone size relative to the design median: selecting a
  *large* cone masks more aggressively (it genuinely dominates more logic),
  selecting a tiny cone barely masks — fixing the fixed-ρ pathology where a
  2-cell cone fully contained in a 400-cell cone is treated the same as two
  heavily entangled large cones;
* :class:`DecayingRho` — the threshold tightens geometrically with each
  selection, so early picks keep options open and late picks stop flooding
  the margin set (bounding the total selection count, and with it the skew
  perturbation's power/area side effects).

All strategies return the same boolean to-mask vector contract as
:meth:`repro.features.cones.ConeIndex.mask_after_selection`, so
:class:`repro.agent.env.EndpointSelectionEnv` accepts any of them via its
``masking`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.cones import ConeIndex
from repro.utils.validation import check_in_range, check_probability


class MaskingStrategy:
    """Interface: decide which valid endpoints to mask after a selection."""

    def mask_after_selection(
        self,
        cones: ConeIndex,
        selected: int,
        currently_valid: np.ndarray,
        step: int,
    ) -> np.ndarray:
        """Boolean to-mask vector over the canonical endpoint order.

        ``step`` is the zero-based selection count before this selection.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedRho(MaskingStrategy):
    """The paper's rule: mask overlap ratios above a constant ρ."""

    rho: float = 0.3

    def __post_init__(self) -> None:
        check_probability("rho", self.rho)

    def mask_after_selection(self, cones, selected, currently_valid, step):
        return cones.mask_after_selection(selected, currently_valid, self.rho)

    def describe(self) -> str:
        return f"fixed(rho={self.rho})"


@dataclass(frozen=True)
class SizeAdaptiveRho(MaskingStrategy):
    """Threshold scaled by the selected cone's size vs the design median.

    effective ρ = clip(ρ₀ · (median cone size / selected cone size)^α, lo, hi)

    Selecting a cone twice the median size (α = 1) halves the threshold —
    more masking pressure from dominant cones; small cones get a looser
    threshold and leave neighbours selectable.
    """

    base_rho: float = 0.3
    alpha: float = 0.5
    min_rho: float = 0.05
    max_rho: float = 0.9

    def __post_init__(self) -> None:
        check_probability("base_rho", self.base_rho)
        check_in_range("alpha", self.alpha, 0.0, 2.0)
        if not 0.0 < self.min_rho <= self.max_rho <= 1.0:
            raise ValueError("need 0 < min_rho <= max_rho <= 1")

    def mask_after_selection(self, cones, selected, currently_valid, step):
        sizes = cones.cone_sizes()
        median = max(1.0, float(np.median(sizes[sizes > 0])) if (sizes > 0).any() else 1.0)
        own = max(1, len(cones.cone_of(selected)))
        rho = float(
            np.clip(
                self.base_rho * (median / own) ** self.alpha,
                self.min_rho,
                self.max_rho,
            )
        )
        return cones.mask_after_selection(selected, currently_valid, rho)

    def describe(self) -> str:
        return f"size-adaptive(base={self.base_rho}, alpha={self.alpha})"


@dataclass(frozen=True)
class DecayingRho(MaskingStrategy):
    """Threshold tightens with each selection: ρ_t = ρ₀ · decay^t."""

    base_rho: float = 0.5
    decay: float = 0.85
    min_rho: float = 0.05

    def __post_init__(self) -> None:
        check_probability("base_rho", self.base_rho)
        check_in_range("decay", self.decay, 0.0, 1.0)
        check_probability("min_rho", self.min_rho)

    def mask_after_selection(self, cones, selected, currently_valid, step):
        rho = max(self.min_rho, self.base_rho * self.decay**step)
        return cones.mask_after_selection(selected, currently_valid, rho)

    def describe(self) -> str:
        return f"decaying(base={self.base_rho}, decay={self.decay})"
