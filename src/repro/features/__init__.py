"""Endpoint features: Table-I extraction, fan-in cones, overlap masking."""

from repro.features.adaptive_masking import (
    DecayingRho,
    FixedRho,
    MaskingStrategy,
    SizeAdaptiveRho,
)
from repro.features.cones import ConeIndex, fanin_cone
from repro.features.table1 import FEATURE_NAMES, NUM_FEATURES, FeatureExtractor

__all__ = [
    "ConeIndex",
    "fanin_cone",
    "FeatureExtractor",
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "MaskingStrategy",
    "FixedRho",
    "SizeAdaptiveRho",
    "DecayingRho",
]
