"""Table-I node features for EP-GNN encoding.

The paper's Table I rows sum to 13 dimensions (1 mask + 2 location +
1 outNet cap + 1 load cap + 1 cell cap + 2 cell power + 1 net power +
1 max toggle + 1 wst slack + 1 wst output slew + 1 wst input slew).  We add
one substrate-specific 14th dimension, **clock flexibility** (the flop's
useful-skew bound as a fraction of the clock period): in ICC2 the useful
skew engine sees clock-tree flexibility internally, whereas in our substrate
that information exists only in ``netlist.skew_bounds`` — surfacing it as a
node feature gives the agent the same observability the paper's tool stack
has.  Set ``include_clock_flexibility=False`` to reproduce the strict
13-feature Table I (the F-ablation bench measures the difference).

==================  ====  =======================================================
name                dims  description
==================  ====  =======================================================
RL masked             1   endpoint is selected or masked by RL-CCD (dynamic)
locations             2   cell (x, y) in global placement, normalized to die
outNet cap            1   capacitance of the driven net
load cap              1   sum of sink input-pin capacitances being driven
cell cap              1   cell input capacitance (sum over own input pins)
cell power            2   internal power and leakage power
net power             1   output net switching power
max toggle            1   toggle rate at the output pin
wst slack             1   worst slack of paths through the cell
wst output slew       1   worst output transition
wst input slew        1   worst input transition
==================  ====  =======================================================

The "RL masked" column changes every RL step (selection + overlap masking),
which is why EP-GNN re-encodes the graph at each time step (paper §III-B.1);
:meth:`FeatureExtractor.update_mask_column` refreshes just that column so
the expensive static part is computed once per trajectory.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.netlist.core import Netlist
from repro.power.models import (
    cell_internal_power,
    cell_leakage_power,
    net_switching_power,
)
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingReport

NUM_FEATURES = 14

FEATURE_NAMES = (
    "rl_masked",
    "loc_x",
    "loc_y",
    "outnet_cap",
    "load_cap",
    "cell_cap",
    "internal_power",
    "leakage_power",
    "net_power",
    "max_toggle",
    "wst_slack",
    "wst_output_slew",
    "wst_input_slew",
    "clock_flexibility",
)


class FeatureExtractor:
    """Builds the (num_cells × NUM_FEATURES) feature matrix for a design.

    Static columns (physical, power, timing) are computed from one STA
    report via :meth:`extract`; the dynamic "RL masked" column is refreshed
    cheaply with :meth:`update_mask_column` as the agent selects endpoints.
    All columns are scaled to O(1) ranges so the GNN trains stably.
    """

    def __init__(
        self,
        netlist: Netlist,
        die_side: Optional[float] = None,
        include_clock_flexibility: bool = True,
    ):
        self.netlist = netlist
        if die_side is None:
            xs = [c.x for c in netlist.cells]
            ys = [c.y for c in netlist.cells]
            die_side = max(max(xs) - min(xs), max(ys) - min(ys), 1e-9)
        self.die_side = float(die_side)
        self.include_clock_flexibility = include_clock_flexibility

    def extract(
        self,
        report: TimingReport,
        clock: ClockModel,
        masked_or_selected: Iterable[int] = (),
    ) -> np.ndarray:
        """Full feature matrix; see module docstring for columns."""
        netlist = self.netlist
        n = netlist.num_cells
        features = np.zeros((n, NUM_FEATURES))
        frequency = 1.0 / clock.period
        cap_scale = 0.1  # fF -> O(1)
        time_scale = 1.0 / clock.period
        power_scale = 10.0

        flagged = set(masked_or_selected)
        for cell in netlist.cells:
            i = cell.index
            features[i, 0] = 1.0 if i in flagged else 0.0
            features[i, 1] = cell.x / self.die_side
            features[i, 2] = cell.y / self.die_side
            if cell.fanout_net is not None:
                net_index = cell.fanout_net
                features[i, 3] = netlist.net_load_cap(net_index) * cap_scale
                pin_cap = 0.0
                for sink_cell, _pin in netlist.nets[net_index].sinks:
                    sink = netlist.cells[sink_cell]
                    if sink.is_output_port:
                        pin_cap += netlist.library.default_port_cap
                    else:
                        pin_cap += sink.size.input_cap
                features[i, 4] = pin_cap * cap_scale
                features[i, 8] = (
                    net_switching_power(netlist, net_index, frequency) * power_scale
                )
            features[i, 5] = (
                cell.size.input_cap * cell.cell_type.num_inputs * cap_scale
            )
            features[i, 6] = cell_internal_power(netlist, i) * power_scale
            features[i, 7] = cell_leakage_power(netlist, i) * power_scale
            features[i, 9] = cell.toggle_rate
            features[i, 11] = report.cell_slew[i] * time_scale
            worst_in = 0.0
            for driver in netlist.fanin_cells(i):
                worst_in = max(worst_in, report.cell_slew[driver])
            features[i, 12] = worst_in * time_scale

        # Worst slack through cell: clamp unconstrained (+inf) to one period.
        wst = np.clip(report.cell_worst_slack, -10.0 / time_scale, 1.0 / time_scale)
        features[:, 10] = wst * time_scale

        # Endpoint cells have no "through" slack from the backward pass seed;
        # give them their own endpoint slack (margin-aware), the quantity the
        # agent must reason about.
        apparent = report.slack_with_margins
        for k, e in enumerate(report.endpoints):
            features[e, 10] = float(np.clip(apparent[k] * time_scale, -10.0, 1.0))

        # Substrate extension: per-flop useful-skew flexibility (see module
        # docstring).  Zero for combinational cells and ports.
        if self.include_clock_flexibility:
            for flop, bound in netlist.skew_bounds.items():
                features[flop, 13] = bound * time_scale
        return features

    def update_mask_column(
        self, features: np.ndarray, masked_or_selected: Iterable[int]
    ) -> np.ndarray:
        """Refresh column 0 in place (returns ``features`` for chaining)."""
        features[:, 0] = 0.0
        indices = list(masked_or_selected)
        if indices:
            features[np.asarray(indices, dtype=np.int64), 0] = 1.0
        return features
