"""Endpoint fan-in cones and overlap masking (paper Fig. 3, §III-C).

The fan-in cone of an endpoint is every combinational cell reachable
backwards from its data input(s) without crossing a startpoint (flop Q or
input port) — "the fan-in cone tracing of an endpoint stops at its previous
startpoints".

The overlap ratio between a selected endpoint *a* and a candidate *b* is
``|cone(a) ∩ cone(b)| / |cone(b)|`` — the overlapped cell count divided by
the candidate's total cone size, so a small cone fully contained in the
selected one is fully overlapped (ratio 1).  After each RL selection,
candidates with ratio > ρ are masked (default ρ = 0.3, Algorithm 1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Sequence, Set

import numpy as np

from repro import obs
from repro.netlist.core import Netlist
from repro.utils.validation import check_probability

#: Bit-population count per byte value, for popcount over packed cone bitsets.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def fanin_cone(netlist: Netlist, endpoint: int) -> FrozenSet[int]:
    """Combinational cells in ``endpoint``'s fan-in cone (endpoint excluded).

    Tracing stops at startpoints; the startpoints themselves and the
    endpoint are not counted, matching Fig. 3 where the ratio is over
    internal cone cells.
    """
    cone: Set[int] = set()
    queue = deque(netlist.fanin_cells(endpoint))
    while queue:
        cell_index = queue.popleft()
        cell = netlist.cells[cell_index]
        if cell.is_startpoint or cell_index in cone:
            continue
        cone.add(cell_index)
        queue.extend(netlist.fanin_cells(cell_index))
    return frozenset(cone)


class ConeIndex:
    """Precomputed cones for all endpoints plus overlap/masking queries.

    Alongside the original list-of-frozenset API (``cones``, ``cone_of``)
    the constructor precomputes three vectorized views used by the hot
    paths:

    * **per-endpoint index arrays** (``cone_array``) — sorted ``int64``
      member arrays, so no forward pass ever rebuilds an index with
      ``np.fromiter``;
    * **a flattened CSR cone index** (``cone_indptr`` / ``cone_members``)
      — the Eq.-3 pooling of :class:`repro.gnn.epgnn.EPGNN` runs as one
      differentiable segment-sum over it, and the inverse CSR
      (:meth:`endpoints_touching`) answers "which endpoints' receptive
      fields contain these cells" for the incremental encoder;
    * **packed bitsets** (``np.packbits`` rows over all cells) — overlap
      ratios are popcounts of ANDed rows instead of per-candidate Python
      set intersections.  Counts are exact integers, so the ratios are
      bitwise identical to the set-based ones.
    """

    def __init__(self, netlist: Netlist, endpoints: Sequence[int]):
        self.netlist = netlist
        self.endpoints: List[int] = list(endpoints)
        self._position: Dict[int, int] = {e: i for i, e in enumerate(self.endpoints)}
        with obs.span("features.cone_extraction"):
            self.cones: List[FrozenSet[int]] = [
                fanin_cone(netlist, e) for e in self.endpoints
            ]
            self._build_vectorized(netlist.num_cells)
        obs.incr("cones.extracted", len(self.cones))

    def _build_vectorized(self, num_cells: int) -> None:
        """Build the CSR, inverse-CSR and bitset views of ``self.cones``."""
        self._num_cells = num_cells
        self._arrays: List[np.ndarray] = [
            np.sort(np.fromiter(c, dtype=np.int64, count=len(c)))
            for c in self.cones
        ]
        sizes = np.array([a.size for a in self._arrays], dtype=np.int64)
        self._sizes = sizes
        self.cone_indptr = np.concatenate(
            [[0], np.cumsum(sizes)]
        ).astype(np.int64)
        self.cone_members = (
            np.concatenate(self._arrays)
            if self._arrays and self.cone_indptr[-1] > 0
            else np.empty(0, dtype=np.int64)
        )
        # Inverse CSR: cell -> endpoint positions whose cone contains it.
        order = np.argsort(self.cone_members, kind="stable")
        owner = np.repeat(np.arange(len(self.endpoints), dtype=np.int64), sizes)
        self._touch_positions = owner[order]
        member_counts = np.bincount(self.cone_members, minlength=num_cells)
        self._touch_indptr = np.concatenate(
            [[0], np.cumsum(member_counts)]
        ).astype(np.int64)
        # Packed bitsets: row e has bit c set iff cell c is in cone(e).
        bits = np.zeros((len(self.endpoints), num_cells), dtype=np.uint8)
        if self.cone_members.size:
            bits[owner, self.cone_members] = 1
        self._bits = np.packbits(bits, axis=1)

    def cone_array(self, position: int) -> np.ndarray:
        """Sorted ``int64`` member array of the cone at canonical ``position``."""
        return self._arrays[position]

    def endpoints_touching(self, cells: np.ndarray) -> np.ndarray:
        """Sorted unique endpoint positions whose cone contains any of ``cells``."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._touch_indptr[cells]
        counts = self._touch_indptr[cells + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(counts) - counts, counts)
            + np.repeat(starts, counts)
        )
        return np.unique(self._touch_positions[flat])

    def __len__(self) -> int:
        return len(self.endpoints)

    def cone_of(self, endpoint: int) -> FrozenSet[int]:
        """The fan-in cone of endpoint cell ``endpoint``."""
        return self.cones[self._position[endpoint]]

    def cone_sizes(self) -> np.ndarray:
        """Cone cell count per endpoint (canonical order)."""
        return np.array([len(c) for c in self.cones], dtype=np.int64)

    def overlap_ratio(self, selected: int, candidate: int) -> float:
        """``|cone(sel) ∩ cone(cand)| / |cone(cand)|`` (0 if cand cone empty)."""
        pos_sel = self._position[selected]
        pos_cand = self._position[candidate]
        size_cand = int(self._sizes[pos_cand])
        if size_cand == 0:
            return 0.0
        inter = int(
            _POPCOUNT[np.bitwise_and(self._bits[pos_sel], self._bits[pos_cand])].sum()
        )
        return inter / size_cand

    def overlap_ratios(self, selected: int) -> np.ndarray:
        """Overlap ratio of every endpoint against ``selected``.

        The selected endpoint's own entry is 1.0 when its cone is non-empty
        (it fully overlaps itself) and 0.0 otherwise.  One vectorized
        popcount over the packed bitset matrix; intersection counts are
        exact integers, so the result is bitwise identical to the original
        per-candidate set intersections.
        """
        sel_row = self._bits[self._position[selected]]
        counts = _POPCOUNT[np.bitwise_and(self._bits, sel_row[None, :])].sum(axis=1)
        ratios = np.zeros(len(self.endpoints))
        nonempty = self._sizes > 0
        ratios[nonempty] = counts[nonempty] / self._sizes[nonempty]
        return ratios

    def mask_after_selection(
        self, selected: int, currently_valid: np.ndarray, rho: float
    ) -> np.ndarray:
        """Endpoints (boolean, canonical order) to mask after ``selected``.

        A still-valid candidate is masked when its overlap ratio with the
        selected endpoint exceeds ``rho``.  The selected endpoint itself is
        *not* in the returned mask (it transitions to "selected", a distinct
        state tracked by the caller).
        """
        check_probability("rho", rho)
        currently_valid = np.asarray(currently_valid, dtype=bool)
        if currently_valid.shape != (len(self.endpoints),):
            raise ValueError(
                f"valid mask has shape {currently_valid.shape}, expected "
                f"({len(self.endpoints)},)"
            )
        ratios = self.overlap_ratios(selected)
        to_mask = currently_valid & (ratios > rho)
        to_mask[self._position[selected]] = False
        return to_mask
