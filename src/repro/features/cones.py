"""Endpoint fan-in cones and overlap masking (paper Fig. 3, §III-C).

The fan-in cone of an endpoint is every combinational cell reachable
backwards from its data input(s) without crossing a startpoint (flop Q or
input port) — "the fan-in cone tracing of an endpoint stops at its previous
startpoints".

The overlap ratio between a selected endpoint *a* and a candidate *b* is
``|cone(a) ∩ cone(b)| / |cone(b)|`` — the overlapped cell count divided by
the candidate's total cone size, so a small cone fully contained in the
selected one is fully overlapped (ratio 1).  After each RL selection,
candidates with ratio > ρ are masked (default ρ = 0.3, Algorithm 1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Sequence, Set

import numpy as np

from repro import obs
from repro.netlist.core import Netlist
from repro.utils.validation import check_probability


def fanin_cone(netlist: Netlist, endpoint: int) -> FrozenSet[int]:
    """Combinational cells in ``endpoint``'s fan-in cone (endpoint excluded).

    Tracing stops at startpoints; the startpoints themselves and the
    endpoint are not counted, matching Fig. 3 where the ratio is over
    internal cone cells.
    """
    cone: Set[int] = set()
    queue = deque(netlist.fanin_cells(endpoint))
    while queue:
        cell_index = queue.popleft()
        cell = netlist.cells[cell_index]
        if cell.is_startpoint or cell_index in cone:
            continue
        cone.add(cell_index)
        queue.extend(netlist.fanin_cells(cell_index))
    return frozenset(cone)


class ConeIndex:
    """Precomputed cones for all endpoints plus overlap/masking queries."""

    def __init__(self, netlist: Netlist, endpoints: Sequence[int]):
        self.netlist = netlist
        self.endpoints: List[int] = list(endpoints)
        self._position: Dict[int, int] = {e: i for i, e in enumerate(self.endpoints)}
        with obs.span("features.cone_extraction"):
            self.cones: List[FrozenSet[int]] = [
                fanin_cone(netlist, e) for e in self.endpoints
            ]
        obs.incr("cones.extracted", len(self.cones))

    def __len__(self) -> int:
        return len(self.endpoints)

    def cone_of(self, endpoint: int) -> FrozenSet[int]:
        """The fan-in cone of endpoint cell ``endpoint``."""
        return self.cones[self._position[endpoint]]

    def cone_sizes(self) -> np.ndarray:
        """Cone cell count per endpoint (canonical order)."""
        return np.array([len(c) for c in self.cones], dtype=np.int64)

    def overlap_ratio(self, selected: int, candidate: int) -> float:
        """``|cone(sel) ∩ cone(cand)| / |cone(cand)|`` (0 if cand cone empty)."""
        cone_sel = self.cone_of(selected)
        cone_cand = self.cone_of(candidate)
        if not cone_cand:
            return 0.0
        return len(cone_sel & cone_cand) / len(cone_cand)

    def overlap_ratios(self, selected: int) -> np.ndarray:
        """Overlap ratio of every endpoint against ``selected``.

        The selected endpoint's own entry is 1.0 when its cone is non-empty
        (it fully overlaps itself) and 0.0 otherwise.
        """
        cone_sel = self.cone_of(selected)
        ratios = np.zeros(len(self.endpoints))
        for i, cone in enumerate(self.cones):
            if cone:
                ratios[i] = len(cone_sel & cone) / len(cone)
        return ratios

    def mask_after_selection(
        self, selected: int, currently_valid: np.ndarray, rho: float
    ) -> np.ndarray:
        """Endpoints (boolean, canonical order) to mask after ``selected``.

        A still-valid candidate is masked when its overlap ratio with the
        selected endpoint exceeds ``rho``.  The selected endpoint itself is
        *not* in the returned mask (it transitions to "selected", a distinct
        state tracked by the caller).
        """
        check_probability("rho", rho)
        currently_valid = np.asarray(currently_valid, dtype=bool)
        if currently_valid.shape != (len(self.endpoints),):
            raise ValueError(
                f"valid mask has shape {currently_valid.shape}, expected "
                f"({len(self.endpoints)},)"
            )
        ratios = self.overlap_ratios(selected)
        to_mask = currently_valid & (ratios > rho)
        to_mask[self._position[selected]] = False
        return to_mask
