"""Event-level distributed tracing on top of the phase recorder.

The recorder (:mod:`repro.obs.core`) aggregates — per-phase totals,
counters, gauges — which is the right shape for regression gates but
useless for answering "*why* was episode 37 slow?".  This module records
the individual events: every ``obs.span`` becomes one **span record**
with a process-unique span id, a parent id, a wall-clock start and a
duration, plus caller-supplied attributes (episode index, task id, cache
hit/miss, ...).  Instant markers (:func:`instant`) capture point events
such as rollout-task submissions and retries.

Span records ride the existing JSONL run-record sink
(:mod:`repro.obs.records`) as ``kind: "span"`` lines; the payload itself
is versioned separately via ``trace_schema`` (:data:`TRACE_SCHEMA`) so the
trace contract can evolve without bumping the envelope every consumer
already pins.  Consumers:

* ``python -m repro trace export`` — Chrome trace-event / Perfetto JSON
  (:mod:`repro.obs.trace_export`);
* ``python -m repro trace validate`` — schema check
  (:mod:`repro.obs.trace_schema`);
* ``python -m repro watch`` — live tail (:mod:`repro.obs.watch`);
* ``repro report`` — the "Slowest spans" section.

Cross-process correlation: :class:`repro.agent.parallel.RolloutPool`
ships :func:`worker_context` to each worker, which activates a *buffered*
tracer (:func:`enable_buffered`) — workers never touch the sink file;
their events travel back inside result messages and the parent replays
them through :func:`ingest`.  That works identically under fork and
spawn, and span ids stay unique because they are prefixed with the
emitting pid.  The submitting side passes its open span id in the task
payload, and the worker opens its ``rollout.task`` span with that id as
an explicit ``trace_parent``, so worker-side spans re-parent correctly
under the submitting rollout step.

Enablement: the tracer piggybacks on the records sink — it is on only
when a sink is configured *and* events were requested (``--trace-events``
or ``REPRO_TRACE_EVENTS=1``).  Disabled, the only residue is one
module-global load + branch inside ``Span.__enter__`` on the
recorder-enabled path; the recorder-disabled path is untouched.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from repro.obs import core, records

#: Environment variable switching event tracing on (truthy values only;
#: it needs ``REPRO_OBS=<path>`` to have somewhere to write).
ENV_VAR = "REPRO_TRACE_EVENTS"

#: Version of the span-record payload (the ``trace_schema`` field).
TRACE_SCHEMA = "repro-trace/v1"


class _OpenSpan:
    """Begin-side token for one in-flight span; finished by ``Span.__exit__``."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "ts")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        ts: float,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.ts = ts

    def finish(self, elapsed: float, attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer._end(self, elapsed, attrs)


class Tracer:
    """Per-process span-event factory with a pluggable sink.

    Span ids are ``"<pid hex>-<counter hex>"`` — unique within a process by
    the counter, across processes by the pid prefix, so a fork inheriting
    the parent's counter state still cannot collide.  The parent stack is
    thread-local, mirroring the recorder's span stack.
    """

    def __init__(
        self,
        trace_id: str,
        sink: Callable[[Dict[str, Any]], None],
        worker: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.worker = worker
        self._sink = sink
        self._pid = os.getpid()
        self._counter = itertools.count(1)
        self._tls = threading.local()

    # ---- span lifecycle --------------------------------------------- #
    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _new_span_id(self) -> str:
        return f"{self._pid:x}-{next(self._counter):x}"

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(self, name: str, parent: Any = core.TRACE_INHERIT) -> _OpenSpan:
        stack = self._stack()
        if parent is core.TRACE_INHERIT:
            parent_id = stack[-1] if stack else None
        else:
            parent_id = parent
        span_id = self._new_span_id()
        stack.append(span_id)
        return _OpenSpan(self, span_id, parent_id, name, time.time())

    def _end(
        self, token: _OpenSpan, elapsed: float, attrs: Optional[Dict[str, Any]]
    ) -> None:
        stack = self._stack()
        if stack and stack[-1] == token.span_id:
            stack.pop()
        self._emit(
            {
                "name": token.name,
                "span_id": token.span_id,
                "parent_id": token.parent_id,
                "ph": "X",
                "ts": token.ts,
                "dur": float(elapsed),
                "attrs": dict(attrs) if attrs else {},
            }
        )

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Emit a zero-duration point event parented under the open span."""
        self._emit(
            {
                "name": name,
                "span_id": self._new_span_id(),
                "parent_id": self.current_span_id(),
                "ph": "i",
                "ts": time.time(),
                "dur": 0.0,
                "attrs": dict(attrs) if attrs else {},
            }
        )

    def _emit(self, payload: Dict[str, Any]) -> None:
        payload["trace_schema"] = TRACE_SCHEMA
        payload["trace_id"] = self.trace_id
        payload["pid"] = self._pid
        payload["worker"] = self.worker
        self._sink(payload)


# ---------------------------------------------------------------------- #
# Module-level state: the installed tracer and the worker-side buffer.
# ---------------------------------------------------------------------- #
_tracer: Optional[Tracer] = None
_buffer: List[Dict[str, Any]] = []


def _records_sink(payload: Dict[str, Any]) -> None:
    records.emit("span", payload)


def enabled() -> bool:
    """Whether span events are being recorded in this process."""
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    return _tracer


def enable(trace_id: Optional[str] = None) -> Tracer:
    """Install a tracer writing span records to the JSONL sink.

    Implies enabling the recorder (events come from ``obs.span``, which is
    a no-op while the recorder is off).  Records still need a configured
    sink (:func:`repro.obs.records.set_trace_path`) to land anywhere.
    """
    global _tracer
    tracer = Tracer(trace_id or uuid.uuid4().hex[:16], _records_sink)
    _tracer = tracer
    core.enable()
    core.set_tracer(tracer)
    return tracer


def enable_buffered(trace_id: str, worker: int) -> Tracer:
    """Install a worker-side tracer that buffers events in memory.

    Pool workers must not append to the sink file (spawn workers do not
    even know its path); they accumulate events here and ship them back in
    result messages (:func:`drain_buffer` → :func:`ingest` in the parent).
    """
    global _tracer
    del _buffer[:]
    tracer = Tracer(trace_id, _buffer.append, worker=worker)
    _tracer = tracer
    core.enable()
    core.set_tracer(tracer)
    return tracer


def disable() -> None:
    """Remove the installed tracer (the recorder's state is untouched)."""
    global _tracer
    _tracer = None
    core.set_tracer(None)


def child_reset() -> None:
    """Start a worker process from a clean tracing state.

    A forked child inherits the parent's tracer — including its sink
    closure — so worker bodies drop it before (optionally) installing a
    buffered tracer of their own.
    """
    disable()
    del _buffer[:]


def drain_buffer() -> List[Dict[str, Any]]:
    """Return and clear the buffered events (worker side)."""
    out = list(_buffer)
    del _buffer[:]
    return out


def ingest(events: Optional[List[Dict[str, Any]]]) -> None:
    """Replay worker-shipped events into the parent's JSONL sink.

    Events keep their original pid/worker/span ids — the envelope layer
    only stamps schema/kind/git_sha — so cross-process parent links
    survive the round trip.
    """
    if not events:
        return
    for event in events:
        records.emit("span", event)


def current_span_id() -> Optional[str]:
    """Innermost open span id on this thread, or ``None`` (also when off)."""
    tracer = _tracer
    return tracer.current_span_id() if tracer is not None else None


def instant(name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
    """Emit an instant event (no-op while tracing is off)."""
    tracer = _tracer
    if tracer is not None:
        tracer.instant(name, attrs)


def worker_context(slot: int) -> Optional[Dict[str, Any]]:
    """Trace context a :class:`RolloutPool` ships to worker ``slot``.

    ``None`` while tracing is off, so the task-payload cost of the
    disabled path is exactly one ``None`` field.
    """
    tracer = _tracer
    if tracer is None:
        return None
    return {"trace_id": tracer.trace_id, "worker": slot}


def _init_from_env() -> None:
    """Honour ``REPRO_TRACE_EVENTS=1`` at import time (needs a sink)."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in core._TRUTHY and records.tracing():
        enable()


_init_from_env()
