"""``--profile``: cProfile + tracemalloc wired into the run trace.

Wrapping a CLI command in :class:`Profiler` captures, for the whole
command, the top-N functions by cumulative CPU time (cProfile), the top-N
allocation sites by retained size (tracemalloc) and the top-N recorder
phases by total wall time, and appends one ``kind: "profile"`` run record
to the active trace sink — so a slow run's trace carries its own autopsy
and ``repro report`` can render it next to the training curves.

Wall-clock and byte counts are inherently nondeterministic; every such
field is named ``*_seconds`` / ``*_kb`` so the determinism tooling's
timing-strip convention applies to profile records too.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import tracemalloc
from typing import Any, Dict, List, Optional

from repro.obs import core, records

#: Entries kept per section (functions / allocation sites / phases).
DEFAULT_TOP_N = 15


def _short_path(path: str) -> str:
    """Trim a source path to its last two components for readable records."""
    parts = path.replace(os.sep, "/").split("/")
    return "/".join(parts[-2:]) if len(parts) > 1 else path


def top_functions(stats: pstats.Stats, top_n: int) -> List[Dict[str, Any]]:
    """cProfile entries → top-``top_n`` by cumulative time."""
    rows = []
    for (filename, lineno, funcname), (cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        rows.append(
            {
                "function": f"{_short_path(filename)}:{lineno}({funcname})",
                "calls": int(ncalls),
                "total_seconds": float(tottime),
                "cumulative_seconds": float(cumtime),
            }
        )
    rows.sort(key=lambda r: (-r["cumulative_seconds"], r["function"]))
    return rows[:top_n]


def top_allocations(
    snapshot: tracemalloc.Snapshot, top_n: int
) -> List[Dict[str, Any]]:
    """tracemalloc snapshot → top-``top_n`` sites by retained size."""
    rows = []
    for stat in snapshot.statistics("lineno")[:top_n]:
        frame = stat.traceback[0]
        rows.append(
            {
                "site": f"{_short_path(frame.filename)}:{frame.lineno}",
                "size_kb": float(stat.size) / 1024.0,
                "count": int(stat.count),
            }
        )
    return rows


def top_phases(top_n: int) -> List[Dict[str, Any]]:
    """Recorder phases → top-``top_n`` by total recorded wall time."""
    if not core.enabled():
        return []
    state = core.get_recorder().export_state()
    rows = [
        {
            "phase": name,
            "count": int(stats["count"]),
            "total_seconds": float(stats["total"]),
        }
        for name, stats in state["phases"].items()
    ]
    rows.sort(key=lambda r: (-r["total_seconds"], r["phase"]))
    return rows[:top_n]


class Profiler:
    """Context manager emitting one ``profile`` record on exit.

    Requires an active trace sink (there is nowhere else to put the
    result); the CLI validates that before entering.  Profiling overhead
    is real (cProfile instruments every call), which is exactly why it is
    opt-in per run instead of part of the always-on recorder.
    """

    def __init__(self, command: str = "", top_n: int = DEFAULT_TOP_N) -> None:
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        self.command = command
        self.top_n = top_n
        self._profile: Optional[cProfile.Profile] = None
        self._started_tracemalloc = False

    def __enter__(self) -> "Profiler":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._profile = cProfile.Profile()
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._profile is not None
        self._profile.disable()
        current, peak = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        if self._started_tracemalloc:
            tracemalloc.stop()
        # Emit even when the command raised: a crashing run's profile is
        # the one you want most.
        records.emit(
            "profile",
            {
                "command": self.command,
                "top_n": self.top_n,
                "top_functions": top_functions(
                    pstats.Stats(self._profile), self.top_n
                ),
                "top_allocations": top_allocations(snapshot, self.top_n),
                "top_phases": top_phases(self.top_n),
                "memory_current_kb": float(current) / 1024.0,
                "memory_peak_kb": float(peak) / 1024.0,
            },
        )
        return False
