"""Stdlib logging for the ``repro.*`` hierarchy.

Every module logs through ``obs.get_logger("<sub>")`` which returns the
stdlib logger ``repro.<sub>``; :func:`setup_logging` attaches one stream
handler to the ``repro`` root and maps a CLI-style verbosity count to a
level (0 → WARNING, 1 → INFO, ≥2 → DEBUG).  Re-invoking it reconfigures
the existing handler instead of stacking duplicates, so tests and REPLs can
call it freely.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_NAME = "repro"

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Marker attribute identifying the handler this module installed.
_HANDLER_TAG = "_repro_obs_handler"


def verbosity_to_level(verbosity: int) -> int:
    """CLI ``-v`` count → logging level."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    Idempotent: the single handler it owns is replaced, handlers installed
    by embedding applications are left alone, and propagation to the global
    root is cut off so messages are not printed twice under pytest's
    ``logging`` plugin or user-configured root handlers.
    """
    root = logging.getLogger(ROOT_NAME)
    level = verbosity_to_level(verbosity)
    root.setLevel(level)
    root.propagate = False

    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    return root


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` root logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") or name == ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")
