"""Versioned validation of JSONL run records and span events.

``python -m repro trace validate run.jsonl`` (and the ``tracing`` CI job)
checks every record in a trace against the contract documented in
``docs/observability.md``: the envelope (``schema``/``kind``/``git_sha``),
the per-kind required fields, and — for ``kind: "span"`` — the full
``repro-trace/v1`` payload shape (:data:`repro.obs.tracing.TRACE_SCHEMA`).
The validator is deliberately strict about *unknown kinds*: a new record
kind must land together with its validation rule, or the CI job fails.
"""

from __future__ import annotations

import numbers
from typing import Any, Dict, Mapping

from repro.obs import records as obs_records
from repro.obs import tracing

_SPAN_PHASES = ("X", "i")


def _fail(location: str, message: str) -> None:
    raise ValueError(f"{location}: {message}")


def _require(record: Mapping[str, Any], key: str, types, location: str) -> Any:
    if key not in record:
        _fail(location, f"missing required field {key!r}")
    value = record[key]
    if types is not None and not isinstance(value, types):
        _fail(
            location,
            f"field {key!r} has type {type(value).__name__}, expected "
            f"{getattr(types, '__name__', types)}",
        )
    return value


def _number(record: Mapping[str, Any], key: str, location: str) -> float:
    value = _require(record, key, None, location)
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        _fail(location, f"field {key!r} must be a number, got {value!r}")
    return float(value)


def _integer(record: Mapping[str, Any], key: str, location: str) -> int:
    value = _require(record, key, None, location)
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        _fail(location, f"field {key!r} must be an integer, got {value!r}")
    return int(value)


def _validate_span(record: Mapping[str, Any], location: str) -> None:
    trace_schema = _require(record, "trace_schema", str, location)
    if trace_schema != tracing.TRACE_SCHEMA:
        _fail(
            location,
            f"trace_schema {trace_schema!r} != {tracing.TRACE_SCHEMA!r}",
        )
    name = _require(record, "name", str, location)
    if not name:
        _fail(location, "span name is empty")
    _require(record, "trace_id", str, location)
    span_id = _require(record, "span_id", str, location)
    if not span_id:
        _fail(location, "span_id is empty")
    parent_id = record.get("parent_id", "missing")
    if parent_id == "missing":
        _fail(location, "missing required field 'parent_id'")
    if parent_id is not None and not isinstance(parent_id, str):
        _fail(location, f"parent_id must be a string or null, got {parent_id!r}")
    _integer(record, "pid", location)
    worker = record.get("worker", "missing")
    if worker == "missing":
        _fail(location, "missing required field 'worker'")
    if worker is not None and (
        isinstance(worker, bool) or not isinstance(worker, numbers.Integral)
    ):
        _fail(location, f"worker must be an integer or null, got {worker!r}")
    ph = _require(record, "ph", str, location)
    if ph not in _SPAN_PHASES:
        _fail(location, f"ph {ph!r} not in {_SPAN_PHASES}")
    _number(record, "ts", location)
    dur = _number(record, "dur", location)
    if dur < 0:
        _fail(location, f"negative duration {dur}")
    if ph == "i" and dur != 0.0:
        _fail(location, f"instant event has nonzero duration {dur}")
    attrs = _require(record, "attrs", dict, location)
    for key in attrs:
        if not isinstance(key, str):
            _fail(location, f"attrs key {key!r} is not a string")


def _validate_flow(record: Mapping[str, Any], location: str) -> None:
    _integer(record, "endpoints", location)
    _integer(record, "prioritized", location)
    _number(record, "runtime_seconds", location)
    phases = _require(record, "phases", dict, location)
    for name, seconds in phases.items():
        if not isinstance(name, str):
            _fail(location, f"phase key {name!r} is not a string")
        if isinstance(seconds, bool) or not isinstance(seconds, numbers.Real):
            _fail(location, f"phase {name!r} duration {seconds!r} is not a number")


def _validate_episode(record: Mapping[str, Any], location: str) -> None:
    _integer(record, "episode", location)
    _number(record, "tns", location)
    _number(record, "advantage", location)
    _integer(record, "num_selected", location)
    telemetry = record.get("telemetry", "missing")
    if telemetry == "missing":
        _fail(location, "missing required field 'telemetry'")
    if telemetry is not None and not isinstance(telemetry, dict):
        _fail(location, f"telemetry must be an object or null, got {telemetry!r}")


def _validate_train(record: Mapping[str, Any], location: str) -> None:
    _integer(record, "episodes_run", location)
    _number(record, "best_tns", location)
    _require(record, "converged", bool, location)


def _validate_rollout(record: Mapping[str, Any], location: str) -> None:
    _integer(record, "workers", location)
    _require(record, "start_method", str, location)


def _validate_profile(record: Mapping[str, Any], location: str) -> None:
    _require(record, "command", str, location)
    _require(record, "top_functions", list, location)


_VALIDATORS = {
    "span": _validate_span,
    "flow": _validate_flow,
    "episode": _validate_episode,
    "train": _validate_train,
    "rollout": _validate_rollout,
    "profile": _validate_profile,
}


def validate_record(record: Mapping[str, Any], location: str = "record") -> str:
    """Validate one (schema-upgraded) record; returns its kind.

    Raises :class:`ValueError` with ``location`` in the message on the
    first violation.
    """
    if not isinstance(record, Mapping):
        _fail(location, f"record is {type(record).__name__}, expected object")
    schema = record.get("schema")
    if schema not in obs_records.SUPPORTED_SCHEMAS:
        _fail(
            location,
            f"schema {schema!r} not in {obs_records.SUPPORTED_SCHEMAS}",
        )
    kind = _require(record, "kind", str, location)
    _require(record, "git_sha", str, location)
    validator = _VALIDATORS.get(kind)
    if validator is None:
        _fail(
            location,
            f"unknown record kind {kind!r} (known: {sorted(_VALIDATORS)})",
        )
    validator(record, location)
    return kind


def validate_trace(path: str) -> Dict[str, int]:
    """Validate every record in a JSONL trace; returns per-kind counts."""
    counts: Dict[str, int] = {}
    for index, record in enumerate(obs_records.read_records(path), start=1):
        kind = validate_record(record, location=f"{path}:record {index}")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
