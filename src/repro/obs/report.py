"""``python -m repro report`` — markdown + ASCII dashboard over a trace.

Renders a deterministic (same trace → byte-identical output) regression
dashboard from the run records of one JSONL trace: training reward/TNS
curves, policy-entropy decay, attention concentration, gradient norms,
per-endpoint selection-frequency heat, flow phase timings — and, when a
:class:`repro.obs.history.RunHistory` is supplied, each phase's trend
against the noise-aware history baseline (median + MAD).

Everything is plain text built on :mod:`repro.viz.ascii_plots`, so the
report diffs cleanly in CI logs and uploads as a workflow artifact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.history import RunHistory, median
from repro.viz.ascii_plots import line_plot, sparkline

#: Endpoints shown in the selection-frequency heat (most-selected first).
MAX_FREQUENCY_ROWS = 20

#: Span events shown in the "Slowest spans" section (longest first).
MAX_SLOW_SPANS = 10

_BAR_WIDTH = 30


def _by_kind(records: Sequence[Mapping[str, Any]]) -> Dict[str, List[Mapping[str, Any]]]:
    grouped: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        grouped.setdefault(str(record.get("kind", "?")), []).append(record)
    return grouped


def _telemetry_series(
    episodes: Sequence[Mapping[str, Any]], key: str
) -> List[float]:
    """Per-episode telemetry values (episodes lacking the key are skipped)."""
    values = []
    for record in episodes:
        telemetry = record.get("telemetry") or {}
        value = telemetry.get(key)
        if value is not None:
            values.append(float(value))
    return values


def _fence(text: str) -> List[str]:
    return ["```", text, "```"]


def _bar(count: float, peak: float) -> str:
    return "#" * max(1, int(round(_BAR_WIDTH * count / peak))) if peak else ""


def render_report(
    records: Sequence[Mapping[str, Any]],
    history: Optional[RunHistory] = None,
    last_n: int = 10,
    source: str = "trace",
) -> str:
    """The full dashboard as one markdown string (no trailing newline)."""
    grouped = _by_kind(records)
    episodes = sorted(grouped.get("episode", []), key=lambda r: int(r["episode"]))
    flows = grouped.get("flow", [])
    trains = grouped.get("train", [])
    profiles = grouped.get("profile", [])
    rollouts = grouped.get("rollout", [])
    spans = grouped.get("span", [])

    lines: List[str] = [f"# repro run report — {source}", ""]
    kinds = ", ".join(f"{kind}: {len(grouped[kind])}" for kind in sorted(grouped))
    shas = sorted({str(r.get("git_sha", "unknown")) for r in records})
    seeds = sorted({int(r["seed"]) for r in records if r.get("seed") is not None})
    lines.append(f"- records: {len(records)} ({kinds or 'none'})")
    lines.append(f"- git sha: {', '.join(shas) if shas else 'unknown'}")
    if seeds:
        lines.append(f"- seed: {', '.join(str(s) for s in seeds)}")
    for train in trains:
        lines.append(
            f"- training run: design `{train.get('design', '?')}`, "
            f"{train.get('endpoints', '?')} endpoints, "
            f"{train.get('episodes_run', '?')} episodes, "
            f"best TNS {float(train.get('best_tns', float('nan'))):+.4f}, "
            f"converged: {train.get('converged', '?')}"
        )
    lines.append("")

    if episodes:
        lines.extend(_render_training(episodes))
        lines.extend(_render_entropy(episodes))
        lines.extend(_render_attention(episodes))
        lines.extend(_render_gradients(episodes))
        lines.extend(_render_selection_heat(episodes))
    else:
        lines.extend(["## Training", "", "(no episode records in this trace)", ""])

    if rollouts:
        lines.extend(_render_rollout(rollouts))
    if flows:
        lines.extend(_render_flow_phases(flows, history, last_n))
        lines.extend(_render_sta_frontier(flows))
    if spans:
        lines.extend(_render_slowest_spans(spans))
    if profiles:
        lines.extend(_render_profile(profiles[-1]))
    return "\n".join(lines).rstrip()


# ---------------------------------------------------------------------- #
def _render_training(episodes: Sequence[Mapping[str, Any]]) -> List[str]:
    tns = [float(r["tns"]) for r in episodes]
    best = []
    for value in tns:
        best.append(value if not best else max(best[-1], value))
    advantage = [float(r["advantage"]) for r in episodes]
    lines = ["## Training curves", ""]
    lines.append(f"- episodes: {len(episodes)}")
    lines.append(
        f"- TNS: first {tns[0]:+.4f}, best {max(tns):+.4f}, last {tns[-1]:+.4f}"
    )
    lines.append(f"- TNS per episode:     `{sparkline(tns)}`")
    lines.append(f"- best-so-far TNS:     `{sparkline(best)}`")
    lines.append(f"- advantage:           `{sparkline(advantage)}`")
    lines.append("")
    lines.extend(_fence(line_plot({"tns": tns, "best": best}, title="TNS (reward) per episode")))
    lines.append("")
    return lines


def _render_entropy(episodes: Sequence[Mapping[str, Any]]) -> List[str]:
    mean_entropy = _telemetry_series(episodes, "entropy_mean")
    lines = ["## Policy entropy", ""]
    if not mean_entropy:
        lines.extend(["(no telemetry in this trace — v1 records or telemetry off)", ""])
        return lines
    first = _telemetry_series(episodes, "entropy_first")
    last = _telemetry_series(episodes, "entropy_last")
    lines.append(
        f"- mean step entropy: first episode {mean_entropy[0]:.4f} → "
        f"last episode {mean_entropy[-1]:.4f}"
    )
    lines.append(f"- mean entropy per episode:   `{sparkline(mean_entropy)}`")
    if first and last:
        lines.append(f"- first-step entropy:         `{sparkline(first)}`")
        lines.append(f"- last-step entropy:          `{sparkline(last)}`")
    lines.append("")
    return lines


def _render_attention(episodes: Sequence[Mapping[str, Any]]) -> List[str]:
    concentration = _telemetry_series(episodes, "concentration_mean")
    lines = ["## Attention logits", ""]
    if not concentration:
        lines.extend(["(no telemetry in this trace)", ""])
        return lines
    logit_min = _telemetry_series(episodes, "logit_min")
    logit_max = _telemetry_series(episodes, "logit_max")
    top_prob = _telemetry_series(episodes, "top_prob_mean")
    if logit_min and logit_max:
        lines.append(
            f"- logit range over run: [{min(logit_min):+.4f}, {max(logit_max):+.4f}]"
        )
    lines.append(f"- softmax concentration (Σp²): `{sparkline(concentration)}`")
    if top_prob:
        lines.append(f"- mean top-1 probability:      `{sparkline(top_prob)}`")
    gammas = [
        (r.get("telemetry") or {}).get("gnn_gamma")
        for r in episodes
        if (r.get("telemetry") or {}).get("gnn_gamma")
    ]
    if gammas:
        final = gammas[-1]
        lines.append(
            "- EP-GNN γ gates (final): "
            + ", ".join(f"{g:.4f}" for g in final)
        )
    lines.append("")
    return lines


def _render_gradients(episodes: Sequence[Mapping[str, Any]]) -> List[str]:
    pre = _telemetry_series(episodes, "grad_norm_preclip")
    post = _telemetry_series(episodes, "grad_norm_postclip")
    lines = ["## Gradient norms", ""]
    if not pre:
        lines.extend(["(no telemetry in this trace)", ""])
        return lines
    clipped = sum(1 for a, b in zip(pre, post) if a > b)
    lines.append(
        f"- pre-clip norm: min {min(pre):.4f}, max {max(pre):.4f}; "
        f"clipped on {clipped}/{len(pre)} updates"
    )
    lines.append(f"- pre-clip norm per episode:  `{sparkline(pre)}`")
    lines.append(f"- post-clip norm per episode: `{sparkline(post)}`")
    lines.append("")
    return lines


def _render_selection_heat(episodes: Sequence[Mapping[str, Any]]) -> List[str]:
    lines = ["## Endpoint selection frequency", ""]
    # The last episode's cumulative counter covers the whole run.
    frequency: Dict[str, int] = {}
    for record in reversed(episodes):
        telemetry = record.get("telemetry") or {}
        if telemetry.get("selection_frequency"):
            frequency = {
                str(k): int(v) for k, v in telemetry["selection_frequency"].items()
            }
            break
    if not frequency:
        lines.extend(["(no telemetry in this trace)", ""])
        return lines
    total = sum(frequency.values())
    ranked = sorted(frequency.items(), key=lambda kv: (-kv[1], int(kv[0])))
    shown = ranked[:MAX_FREQUENCY_ROWS]
    peak = shown[0][1]
    lines.append(
        f"- {len(frequency)} distinct endpoints selected, "
        f"{total} selections total"
    )
    lines.append("")
    lines.append("| endpoint | count | share | heat |")
    lines.append("|---:|---:|---:|:---|")
    for endpoint, count in shown:
        lines.append(
            f"| {endpoint} | {count} | {100.0 * count / total:.1f}% "
            f"| `{_bar(count, peak)}` |"
        )
    if len(ranked) > len(shown):
        rest = sum(count for _, count in ranked[len(shown):])
        lines.append(f"| …{len(ranked) - len(shown)} more | {rest} | "
                     f"{100.0 * rest / total:.1f}% | |")
    lines.append("")
    return lines


def _render_rollout(rollouts: Sequence[Mapping[str, Any]]) -> List[str]:
    """Pool-health table from ``rollout`` run records (one per training
    run): throughput/caching on the left, fault counters on the right."""
    lines = ["## Rollout pool health", ""]
    lines.append(
        "| workers | start | tasks | cache hits | hit rate | restarts "
        "| timeouts | crashes | corrupt | seq. fallbacks |"
    )
    lines.append("|---:|:---|---:|---:|---:|---:|---:|---:|---:|---:|")
    for record in rollouts:
        hits = int(record.get("cache_hits", 0))
        misses = int(record.get("cache_misses", 0))
        lookups = hits + misses
        rate = f"{100.0 * hits / lookups:.1f}%" if lookups else "—"
        lines.append(
            f"| {record.get('workers', '?')} "
            f"| {record.get('start_method', '?')} "
            f"| {record.get('tasks', lookups)} "
            f"| {hits} | {rate} "
            f"| {record.get('worker_restarts', 0)} "
            f"| {record.get('task_timeouts', 0)} "
            f"| {record.get('worker_crashes', 0)} "
            f"| {record.get('corrupt_results', 0)} "
            f"| {record.get('sequential_fallbacks', 0)} |"
        )
    lines.append("")
    return lines


def _render_flow_phases(
    flows: Sequence[Mapping[str, Any]],
    history: Optional[RunHistory],
    last_n: int,
) -> List[str]:
    lines = ["## Flow phase timings", ""]
    series: Dict[str, List[float]] = {}
    for record in flows:
        for phase, seconds in (record.get("phases") or {}).items():
            series.setdefault(str(phase), []).append(float(seconds))
    if not series:
        lines.extend(["(flow records carry no phase data)", ""])
        return lines
    lines.append(f"- flow runs in trace: {len(flows)}")
    lines.append("")
    baselines = history.phase_baselines(last_n=last_n) if history is not None else {}
    header = "| phase | runs | median | trend |"
    divider = "|:---|---:|---:|:---|"
    if baselines:
        header += " history median | MAD | status |"
        divider += "---:|---:|:---|"
    lines.extend([header, divider])
    for phase in sorted(series):
        values = series[phase]
        row = (
            f"| {phase} | {len(values)} | {1e3 * median(values):.3f} ms "
            f"| `{sparkline(values)}` |"
        )
        if baselines:
            # Trace flow phases are short names; bench/recorder phases are
            # the span names ("begin_sta" → "flow.begin_sta").
            base = baselines.get(phase) or baselines.get(f"flow.{phase}")
            if base is None:
                row += " — | — | no history |"
            else:
                regressed = median(values) > base.median_s + 3.0 * base.mad_s
                status = "**regressed**" if regressed else "ok"
                row += (
                    f" {1e3 * base.median_s:.3f} ms | {1e3 * base.mad_s:.3f} ms "
                    f"| {status} |"
                )
        lines.append(row)
    lines.append("")
    return lines


def _render_sta_frontier(flows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Incremental-STA engine health from flow records carrying ``sta``
    counter deltas: how much of the work ran through the vectorized
    frontier kernels versus the scalar fallback, and how large the dirty
    frontier got."""
    stats = [record["sta"] for record in flows if record.get("sta")]
    if not stats:
        return []
    lines = ["## STA frontier", ""]
    lines.append(
        "| flow | full | incremental | frontier cells | vectorized levels "
        "| scalar levels | peak frontier |"
    )
    lines.append("|---:|---:|---:|---:|---:|---:|---:|")
    for index, sta in enumerate(stats):
        lines.append(
            f"| {index} "
            f"| {int(sta.get('full_analyze', 0))} "
            f"| {int(sta.get('incremental_analyze', 0))} "
            f"| {int(sta.get('frontier_cells', 0))} "
            f"| {int(sta.get('vectorized_levels', 0))} "
            f"| {int(sta.get('scalar_levels', 0))} "
            f"| {int(sta.get('frontier_peak', 0))} |"
        )
    lines.append("")
    return lines


def _ancestry(
    span: Mapping[str, Any], by_id: Mapping[str, Mapping[str, Any]]
) -> str:
    """Outermost-first ``a > b > c`` path of a span's named ancestors.

    Parents missing from the trace (e.g. the root of a truncated file)
    surface as ``…``; a cycle guard bounds the walk in case of corrupt
    parent links.
    """
    names: List[str] = []
    seen = set()
    parent_id = span.get("parent_id")
    while parent_id is not None and parent_id not in seen:
        seen.add(parent_id)
        parent = by_id.get(parent_id)
        if parent is None:
            names.append("…")
            break
        names.append(str(parent.get("name", "?")))
        parent_id = parent.get("parent_id")
    names.reverse()
    names.append(str(span.get("name", "?")))
    return " > ".join(names)


def _render_slowest_spans(spans: Sequence[Mapping[str, Any]]) -> List[str]:
    """Top-N span events by duration, with where they ran and their
    ancestry path — the "what actually took the time" view the aggregated
    phase table cannot give."""
    lines = ["## Slowest spans", ""]
    complete = [s for s in spans if s.get("ph") == "X"]
    instants = len(spans) - len(complete)
    lines.append(
        f"- span events: {len(spans)} ({len(complete)} spans, "
        f"{instants} instants)"
    )
    if not complete:
        lines.append("")
        return lines
    by_id = {
        str(s.get("span_id")): s for s in spans if s.get("span_id") is not None
    }
    ranked = sorted(
        complete,
        key=lambda s: (
            -float(s.get("dur", 0.0)),
            str(s.get("name", "")),
            str(s.get("span_id", "")),
        ),
    )[:MAX_SLOW_SPANS]
    lines.append("")
    lines.append("| span | where | duration | path |")
    lines.append("|:---|:---|---:|:---|")
    for span in ranked:
        worker = span.get("worker")
        where = "main" if worker is None else f"worker {worker}"
        lines.append(
            f"| {span.get('name', '?')} | {where} "
            f"| {1e3 * float(span.get('dur', 0.0)):.3f} ms "
            f"| `{_ancestry(span, by_id)}` |"
        )
    lines.append("")
    return lines


def _render_profile(profile: Mapping[str, Any]) -> List[str]:
    lines = ["## Profile", ""]
    lines.append(
        f"- command: `{profile.get('command', '?')}`, peak memory "
        f"{float(profile.get('memory_peak_kb', 0.0)):.0f} kB"
    )
    functions = profile.get("top_functions") or []
    if functions:
        lines.extend(["", "| function | calls | cumulative | total |",
                      "|:---|---:|---:|---:|"])
        for row in functions:
            lines.append(
                f"| `{row['function']}` | {row['calls']} "
                f"| {float(row['cumulative_seconds']):.4f} s "
                f"| {float(row['total_seconds']):.4f} s |"
            )
    allocations = profile.get("top_allocations") or []
    if allocations:
        lines.extend(["", "| allocation site | size | blocks |", "|:---|---:|---:|"])
        for row in allocations:
            lines.append(
                f"| `{row['site']}` | {float(row['size_kb']):.1f} kB "
                f"| {row['count']} |"
            )
    phases = profile.get("top_phases") or []
    if phases:
        lines.extend(["", "| phase | count | total |", "|:---|---:|---:|"])
        for row in phases:
            lines.append(
                f"| {row['phase']} | {row['count']} "
                f"| {float(row['total_seconds']):.4f} s |"
            )
    lines.append("")
    return lines
