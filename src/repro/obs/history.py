"""Run-history store: index past runs, compute noise-aware baselines.

A *run* is either a ``BENCH_*.json`` payload (:mod:`repro.obs.bench`) or a
JSONL trace (:mod:`repro.obs.records`); both are indexed by
``(git_sha, created_at, seed)``.  The store answers two questions the
single-baseline diff of PR 1 could not:

* **What is normal?** — per-phase baselines over the last *N* runs as
  *median + MAD* (median absolute deviation), the standard robust
  location/scale pair: one outlier run cannot shift the baseline the way
  it would shift a mean/stddev pair.
* **Is this a regression or noise?** — :meth:`RunHistory.check` flags a
  candidate phase only when its median exceeds the history median by more
  than ``k×MAD`` (default ``k=3``) *and* a relative noise floor, so the
  CI gate can be enforced (nonzero exit) instead of advisory.

With fewer than ``min_runs`` historical runs the MAD is meaningless
(zero for a single run), so the check falls back to a generous relative
tolerance — wide enough that shared-runner noise passes, tight enough
that the acceptance scenario (a 5× single-phase slowdown) fails.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import records as obs_records
from repro.obs.bench import BENCH_SCHEMA, MIN_COMPARABLE_SECONDS

#: Enforcement default: candidate median must exceed history median by more
#: than this many MADs to fail the gate.
DEFAULT_MAD_K = 3.0

#: Relative noise floor under full history (runs >= min_runs): regressions
#: smaller than this fraction of the median never fail, no matter how tight
#: the MAD is (shared runners routinely jitter tens of percent).
NOISE_FLOOR_RATIO = 0.5

#: Absolute noise grace added to every threshold: a single scheduler
#: preemption inside a sub-millisecond phase multiplies its measured
#: median, so relative thresholds alone make sub-ms phases flaky on
#: shared runners.  One millisecond of grace is invisible to the
#: multi-ms phases where enforcement is meaningful.
ABS_NOISE_FLOOR_S = 0.001

#: Fallback relative tolerance when history is too thin for a MAD
#: (candidate fails beyond ``(1 + ratio) × median``; 1.5 → 2.5× median).
FALLBACK_TOLERANCE = 1.5

#: Minimum number of historical runs for the MAD threshold to be trusted.
MIN_RUNS_FOR_MAD = 3


def median(values: Sequence[float]) -> float:
    """Median without numpy (the history store stays dependency-light)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation around the median (robust scale)."""
    center = median(values)
    return median([abs(float(v) - center) for v in values])


def section_medians(payload: Mapping[str, Any]) -> Dict[str, float]:
    """Engine-comparison section timings as ``section.…`` pseudo-phases.

    The nightly gate tracks the rollout-pool, distributed actor–learner
    and batched-policy sections alongside recorder phases, so a pool,
    transport or batching regression fails the same median+MAD check as
    any instrumented phase.  Each entry's value
    is the section's headline seconds for that engine (total pass seconds
    for rollout engines, per-episode seconds for the batch section).
    """
    out: Dict[str, float] = {}
    rollout = payload.get("rollout") or {}
    for engine in ("sequential", "pooled", "cached_replay"):
        seconds = (rollout.get(engine) or {}).get("seconds")
        if seconds is not None:
            out[f"section.rollout.{engine}"] = float(seconds)
    distributed = payload.get("distributed") or {}
    for engine in ("sequential", "distributed", "shared_cache_replay"):
        seconds = (distributed.get(engine) or {}).get("seconds")
        if seconds is not None:
            out[f"section.distributed.{engine}"] = float(seconds)
    batch = payload.get("batch") or {}
    for mode in ("full", "incremental"):
        section = batch.get(mode) or {}
        for engine in ("single", "batched"):
            seconds = (section.get(engine) or {}).get("per_episode_s")
            if seconds is not None:
                out[f"section.batch.{mode}.{engine}"] = float(seconds)
    # Event-tracing overhead per flow run (PR 7): pins both the tracer's
    # cost when on and the "disabled path is zero-cost" claim when off.
    overhead = (payload.get("obs") or {}).get("trace_overhead_s")
    if overhead is not None:
        out["section.obs.trace_overhead"] = float(overhead)
    # STA scale sweep (PR 10): per-kilocell costs at each design size, so
    # the gate catches a per-cell cost regression that only shows at scale.
    # Normalized seconds keep every size's metrics above the gate's
    # MIN_COMPARABLE_SECONDS floor.
    scale = payload.get("scale") or {}
    for label, entry in sorted((scale.get("designs") or {}).items()):
        for metric, seconds in sorted((entry.get("per_kcell") or {}).items()):
            out[f"section.scale.{label}.{metric}"] = float(seconds)
    return out


def candidate_phases(payload: Mapping[str, Any]) -> Dict[str, Mapping[str, float]]:
    """A candidate payload's ``phases`` table plus its section pseudo-phases,
    in the shape :meth:`RunHistory.check` expects."""
    out: Dict[str, Mapping[str, float]] = dict(payload.get("phases", {}))
    for name, seconds in section_medians(payload).items():
        out[name] = {"median_s": seconds}
    return out


@dataclass(frozen=True)
class BenchRun:
    """One indexed ``BENCH_*.json`` payload."""

    path: str
    git_sha: str
    seed: Optional[int]
    created_at: str  # ISO timestamp, "" when the file predates the field
    total_seconds: float
    phase_medians: Dict[str, float]

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], path: str) -> "BenchRun":
        medians = {
            name: float(stats["median_s"])
            for name, stats in payload.get("phases", {}).items()
        }
        medians.update(section_medians(payload))
        return cls(
            path=path,
            git_sha=str(payload.get("git_sha", "unknown")),
            seed=payload.get("seed"),
            created_at=str(payload.get("created_at", "")),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            phase_medians=medians,
        )


@dataclass(frozen=True)
class TraceRun:
    """One indexed JSONL trace (episode/flow/profile records)."""

    path: str
    git_shas: Tuple[str, ...]
    seeds: Tuple[int, ...]
    episodes: int
    kinds: Tuple[str, ...]


@dataclass(frozen=True)
class PhaseBaseline:
    """Robust per-phase timing baseline over the indexed runs."""

    median_s: float
    mad_s: float
    runs: int


@dataclass(frozen=True)
class Regression:
    """One enforced-gate failure: a phase median beyond its threshold."""

    phase: str
    candidate_s: float
    baseline_s: float
    threshold_s: float
    runs: int

    def message(self) -> str:
        return (
            f"phase {self.phase}: median {self.candidate_s * 1e3:.3f} ms exceeds "
            f"threshold {self.threshold_s * 1e3:.3f} ms "
            f"(history median {self.baseline_s * 1e3:.3f} ms over "
            f"{self.runs} run{'s' if self.runs != 1 else ''})"
        )


class RunHistory:
    """Immutable index of past bench payloads and traces."""

    def __init__(
        self,
        benches: Sequence[BenchRun] = (),
        traces: Sequence[TraceRun] = (),
    ) -> None:
        # Oldest first, deterministically: created_at (ISO strings sort
        # chronologically), then path as tie-breaker.
        self.benches: List[BenchRun] = sorted(
            benches, key=lambda run: (run.created_at, run.path)
        )
        self.traces: List[TraceRun] = sorted(traces, key=lambda run: run.path)

    def __len__(self) -> int:
        return len(self.benches)

    # ---- construction ------------------------------------------------ #
    @classmethod
    def from_payloads(
        cls, payloads: Sequence[Mapping[str, Any]], paths: Optional[Sequence[str]] = None
    ) -> "RunHistory":
        """Index in-memory bench payloads (e.g. the one committed baseline)."""
        if paths is None:
            paths = [f"<memory:{i}>" for i in range(len(payloads))]
        return cls(
            benches=[
                BenchRun.from_payload(payload, path)
                for payload, path in zip(payloads, paths)
            ]
        )

    @classmethod
    def scan(cls, root: str) -> "RunHistory":
        """Index every bench JSON and JSONL trace under ``root``.

        Unreadable or foreign files are skipped (a history directory often
        accumulates partial runs); the scan itself never raises for them.
        """
        benches: List[BenchRun] = []
        traces: List[TraceRun] = []
        for path in sorted(glob.glob(os.path.join(root, "**", "*.json"), recursive=True)):
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and payload.get("schema") == BENCH_SCHEMA:
                benches.append(BenchRun.from_payload(payload, path))
        for path in sorted(glob.glob(os.path.join(root, "**", "*.jsonl"), recursive=True)):
            try:
                recs = obs_records.read_records(path)
            except (OSError, ValueError):
                continue
            traces.append(
                TraceRun(
                    path=path,
                    git_shas=tuple(
                        sorted({str(r.get("git_sha", "unknown")) for r in recs})
                    ),
                    seeds=tuple(
                        sorted(
                            {int(r["seed"]) for r in recs if r.get("seed") is not None}
                        )
                    ),
                    episodes=sum(1 for r in recs if r.get("kind") == "episode"),
                    kinds=tuple(sorted({str(r.get("kind")) for r in recs})),
                )
            )
        return cls(benches=benches, traces=traces)

    # ---- baselines and the enforced gate ----------------------------- #
    def phase_baselines(self, last_n: int = 10) -> Dict[str, PhaseBaseline]:
        """Median + MAD of each phase's per-run medians, last ``last_n`` runs.

        A phase contributes only from runs that recorded it, so adding a
        new instrumented phase does not poison the existing baselines.
        """
        window = self.benches[-last_n:] if last_n > 0 else list(self.benches)
        series: Dict[str, List[float]] = {}
        for run in window:
            for phase, value in run.phase_medians.items():
                series.setdefault(phase, []).append(value)
        return {
            phase: PhaseBaseline(
                median_s=median(values), mad_s=mad(values), runs=len(values)
            )
            for phase, values in sorted(series.items())
        }

    def check(
        self,
        candidate_phases: Mapping[str, Mapping[str, float]],
        k: float = DEFAULT_MAD_K,
        last_n: int = 10,
        min_runs: int = MIN_RUNS_FOR_MAD,
        fallback_tolerance: float = FALLBACK_TOLERANCE,
        min_seconds: float = MIN_COMPARABLE_SECONDS,
    ) -> List[Regression]:
        """Enforced regression check of a candidate's ``phases`` table.

        Threshold per phase (history median *m*, across-run MAD):

        * ``runs >= min_runs`` — ``m + max(k·MAD, NOISE_FLOOR_RATIO·m,
          ABS_NOISE_FLOOR_S)``;
        * thinner history — ``m·(1 + fallback_tolerance)``, but never
          tighter than ``m + ABS_NOISE_FLOOR_S``.

        Phases faster than ``min_seconds`` or absent from history are
        skipped (same floors as the advisory diff).  Returns the failures,
        empty when the candidate is within bounds.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        baselines = self.phase_baselines(last_n=last_n)
        failures: List[Regression] = []
        for phase, stats in sorted(candidate_phases.items()):
            base = baselines.get(phase)
            if base is None or base.median_s < min_seconds:
                continue
            if base.runs >= min_runs:
                threshold = base.median_s + max(
                    k * base.mad_s,
                    NOISE_FLOOR_RATIO * base.median_s,
                    ABS_NOISE_FLOOR_S,
                )
            else:
                threshold = max(
                    base.median_s * (1.0 + fallback_tolerance),
                    base.median_s + ABS_NOISE_FLOOR_S,
                )
            candidate = float(stats["median_s"])
            if candidate > threshold:
                failures.append(
                    Regression(
                        phase=phase,
                        candidate_s=candidate,
                        baseline_s=base.median_s,
                        threshold_s=threshold,
                        runs=base.runs,
                    )
                )
        return failures
