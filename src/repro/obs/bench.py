"""``python -m repro bench`` — the fixed smoke workload CI publishes.

Runs a small, fully seeded design through the default flow and a short
RL-CCD training (enough episodes to exercise rollout, parallel-free flow
evaluation and the policy update), with the :mod:`repro.obs` recorder on,
then aggregates the recorder into the ``BENCH_<sha>.json`` schema::

    {"schema": "repro-bench/v1", "git_sha": ..., "seed": ..., ...,
     "design": {"name", "cells", "endpoints", "clock_period"},
     "metrics": {...deterministic quality numbers...},
     "counters": {...deterministic event counts...},
     "phases": {"<name>": {"count", "total_s", "median_s", "p90_s", "max_s"}},
     "sta": {"full": {...}, "incremental": {...}, "sta_speedup": ...,
             "datapath_speedup": ...},
     "rollout": {"tasks", "workers", "start_method",
                 "sequential"/"pooled"/"cached_replay":
                     {"seconds", "tasks_per_second", "speedup"},
                 "cache": {"hits", "misses", "entries"}},
     "policy": {"steps", "endpoints",
                "full_loop"/"full"/"incremental":
                    {"seconds", "step_median_s", "step_p90_s"},
                "incremental_speedup", "pooling_speedup"},
     "batch": {"batch_episodes", "speedup",
               "full"/"incremental":
                   {"single"/"batched": {"per_episode_s"}, "speedup"}},
     "distributed": {"tasks", "actors", "start_method",
                     "sequential"/"distributed"/"shared_cache_replay":
                         {"seconds", "tasks_per_second", "speedup"},
                     "cache_service": {"hits", "misses", "puts",
                                       "evictions", "entries"}},
     "scale": {"seed", "rounds",            # --scale-sweep runs only
               "designs": {"10k"/...: {"cells", "endpoints", ...,
                                       "speedup", "peak_mb",
                                       "per_kcell": {...}}}},
     "total_seconds": <wall>}

``metrics``/``counters``/``design`` are deterministic for a fixed seed;
only ``phases``/``total_seconds``/``host`` carry wall-clock noise — CI
diffs phase medians against the committed baseline and *warns* (never
fails) beyond the tolerance, because shared runners are noisy.
"""

from __future__ import annotations

import datetime
import gc
import json
import math
import os
import platform
import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import core as obs
from repro.obs import records

BENCH_SCHEMA = "repro-bench/v1"

#: Phase medians whose baseline/candidate ratio exceeds ``1 + tolerance``
#: are flagged by :func:`compare_bench`; below this floor a phase is too
#: fast for a stable ratio on shared hardware.
MIN_COMPARABLE_SECONDS = 1e-4


@dataclass(frozen=True)
class BenchConfig:
    """Smoke-workload knobs (defaults are what CI runs)."""

    seed: int = 0
    episodes: int = 4
    cells: int = 320
    violating_fraction: float = 0.4
    #: Pool size for the sequential-vs-pooled rollout throughput section.
    rollout_workers: int = 4
    #: Flow evaluations timed per rollout engine (sequential / pooled /
    #: cached replay).
    rollout_tasks: int = 6
    #: Stacked episodes per batched policy pass in the ``batch`` section
    #: (compared against the same number of B=1 rollouts).
    batch_episodes: int = 8
    #: Actor count for the ``distributed`` actor–learner throughput section
    #: (0 skips the section entirely).
    distributed_actors: int = 2

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.cells < 50:
            raise ValueError(
                f"cells={self.cells} is below the minimum of 50 needed "
                "for a meaningful workload"
            )
        if self.rollout_workers < 1:
            raise ValueError("rollout_workers must be >= 1")
        if self.rollout_tasks < 1:
            raise ValueError("rollout_tasks must be >= 1")
        if self.batch_episodes < 2:
            raise ValueError("batch_episodes must be >= 2")
        if self.distributed_actors < 0:
            raise ValueError("distributed_actors must be >= 0")


@dataclass(frozen=True)
class ScaleSweepConfig:
    """Knobs for the 10K–200K-cell STA scale sweep (``--scale-sweep``).

    Each size builds a vectorized synthetic design
    (:func:`repro.benchsuite.scale.fast_design`), times compile and full
    analysis, then drives ``rounds`` of CCD-style mutation batches (cell
    resizes plus useful-skew moves) through the incremental engine —
    once with the vectorized frontier kernels and, up to
    ``scalar_max_cells``, once with the scalar path forced — timing only
    the ``analyze()`` calls so the ratio is the STA phase speedup.
    """

    seed: int = 0
    cells: Tuple[int, ...] = (10_000, 50_000, 200_000)
    #: Mutation rounds per engine pass; each round resizes
    #: ``resizes_per_round`` cells and moves ``max(32, n // 100)`` flops.
    rounds: int = 3
    resizes_per_round: int = 64
    #: The scalar reference pass is skipped above this size — it is the
    #: slow path being measured against, and at 200K cells it would
    #: dominate the sweep's wall time for no extra information.
    scalar_max_cells: int = 50_000
    violating_fraction: float = 0.4

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("scale sweep needs at least one design size")
        bad = [n for n in self.cells if n < 1_000]
        if bad:
            raise ValueError(
                f"scale-sweep sizes must be >= 1000 cells, got {bad}"
            )
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.resizes_per_round < 1:
            raise ValueError("resizes_per_round must be >= 1")


def scale_label(n_cells: int) -> str:
    """``section.scale.*`` label for a design size (``10000`` → ``"10k"``)."""
    if n_cells % 1_000 == 0:
        return f"{n_cells // 1_000}k"
    return str(n_cells)


def run_scale_sweep(config: ScaleSweepConfig = ScaleSweepConfig()) -> Dict[str, Any]:
    """Run the STA scale sweep; returns the ``"scale"`` payload section.

    Per design size the entry records absolute seconds (build, timing
    compile, full analyze, incremental/scalar mutation passes), the
    process peak RSS after the size finished, and a ``per_kcell`` table —
    the same costs normalized to seconds per 1000 cells.  The normalized
    values are what :func:`repro.obs.history.section_medians` exposes as
    ``section.scale.<label>.<metric>`` pseudo-phases for the nightly
    median+MAD gate: per-cell cost is the quantity that must stay flat as
    designs grow, and normalization keeps every metric above the gate's
    :data:`MIN_COMPARABLE_SECONDS` floor at every size.

    Wall-clock only — :func:`strip_timing` drops the section.
    """
    from repro.benchsuite.scale import fast_design
    from repro.netlist.generator import GeneratorConfig
    from repro.timing import incremental as sta_incremental
    from repro.timing.clock import ClockModel
    from repro.timing.metrics import choose_clock_period
    from repro.timing.sta import TimingAnalyzer, peak_rss_mb

    watch = obs.Stopwatch()
    designs: Dict[str, Any] = {}
    for n in config.cells:
        label = scale_label(n)
        gen = GeneratorConfig(
            name=f"scale_{label}",
            n_cells=n,
            n_inputs=max(8, n // 40),
            n_outputs=max(6, n // 60),
            seed=config.seed,
        )

        watch.restart()
        netlist = fast_design(gen)
        build_s = watch.elapsed

        watch.restart()
        analyzer = TimingAnalyzer(netlist, incremental=False)
        compiled = analyzer.compiled_for("typ")
        compile_s = watch.elapsed

        nominal = netlist.library.default_clock_period
        watch.restart()
        report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
        full_analyze_s = watch.elapsed
        period = choose_clock_period(report, nominal, config.violating_fraction)

        def _mutation_pass(design, threshold: int) -> float:
            """Seeded mutation rounds; returns summed ``analyze()`` seconds."""
            previous = sta_incremental.set_vector_threshold(threshold)
            try:
                rng = np.random.default_rng(config.seed + n)
                clock = ClockModel.for_netlist(design, period)
                sweep_analyzer = TimingAnalyzer(design, incremental=True)
                sweep_analyzer.analyze(clock)
                comb = [
                    c.index
                    for c in design.cells
                    if not c.cell_type.is_port and not c.is_sequential
                ]
                flops = design.sequential_cells()
                pass_watch = obs.Stopwatch()
                analyze_s = 0.0
                for _ in range(config.rounds):
                    resized = rng.choice(
                        comb, size=min(config.resizes_per_round, len(comb)),
                        replace=False,
                    )
                    for c in resized:
                        cell = design.cells[int(c)]
                        design.resize_cell(
                            cell.index,
                            int(rng.integers(0, cell.cell_type.max_size_index + 1)),
                        )
                        sweep_analyzer.notify_resize(cell.index)
                    moved = rng.choice(
                        flops, size=min(max(32, n // 100), len(flops)),
                        replace=False,
                    )
                    for f in moved:
                        f = int(f)
                        room = clock.bound(f) - clock.arrival(f)
                        if room > 1e-9:
                            clock.adjust_arrival(f, float(rng.uniform(0.0, room)))
                    sweep_analyzer.notify_skew(int(f) for f in moved)
                    pass_watch.restart()
                    sweep_analyzer.analyze(clock)
                    analyze_s += pass_watch.elapsed
                return analyze_s
            finally:
                sta_incremental.set_vector_threshold(previous)

        incremental_s = _mutation_pass(
            netlist, sta_incremental.DEFAULT_VEC_THRESHOLD
        )
        scalar_s: Optional[float] = None
        if n <= config.scalar_max_cells:
            # Fresh identical design: the vectorized pass mutated sizes and
            # skews, and the scalar reference must replay the same schedule
            # from the same start state.
            scalar_s = _mutation_pass(fast_design(gen), 1 << 30)

        designs[label] = {
            "cells": n,
            "endpoints": int(compiled.endpoint_cells.size),
            "clock_period": period,
            "build_s": build_s,
            "compile_s": compile_s,
            "full_analyze_s": full_analyze_s,
            "incremental_s": incremental_s,
            "scalar_s": scalar_s,
            "speedup": (
                scalar_s / incremental_s
                if scalar_s is not None and incremental_s > 0
                else None
            ),
            "peak_mb": peak_rss_mb(),
            "per_kcell": {
                "build": build_s / (n / 1_000),
                "compile": compile_s / (n / 1_000),
                "full_analyze": full_analyze_s / (n / 1_000),
                "incremental": incremental_s / (n / 1_000),
            },
        }
    return {
        "seed": config.seed,
        "rounds": config.rounds,
        "designs": designs,
    }


@dataclass
class Workload:
    """A built smoke workload: the design and agent pieces, ready to run.

    Shared between ``python -m repro bench`` and ``python -m repro train``
    so both exercise the same seeded design end to end.
    """

    netlist: Any
    env: Any
    policy: Any
    flow_config: Any
    snapshot: Any
    clock_period: float
    name: str


def build_workload(
    seed: int = 0, cells: int = 320, violating_fraction: float = 0.4
) -> Workload:
    """Generate, place and constrain the fixed smoke design (deterministic;
    independent of ``REPRO_BENCH_SCALE``) and wrap it in the selection env
    plus a fresh policy."""
    # Deferred imports: the workload depends on the whole stack, the obs
    # layer must not.
    from repro.agent.env import EndpointSelectionEnv
    from repro.agent.policy import RLCCDPolicy
    from repro.ccd.flow import FlowConfig, snapshot_netlist_state
    from repro.features.table1 import NUM_FEATURES
    from repro.netlist.generator import GeneratorConfig, generate_design
    from repro.placement.global_place import PlacementConfig, place_design
    from repro.timing.clock import ClockModel
    from repro.timing.metrics import choose_clock_period
    from repro.timing.sta import TimingAnalyzer

    gen = GeneratorConfig(
        name="bench_smoke",
        library="tech7",
        n_cells=cells,
        n_inputs=max(8, cells // 40),
        n_outputs=max(6, cells // 60),
        seed=seed,
    )
    netlist = generate_design(gen)
    place_design(netlist, PlacementConfig(seed=seed))
    analyzer = TimingAnalyzer(netlist)
    nominal = netlist.library.default_clock_period
    report = analyzer.analyze(ClockModel.for_netlist(netlist, nominal))
    period = choose_clock_period(report, nominal, violating_fraction)

    flow_config = FlowConfig(clock_period=period)
    snapshot = snapshot_netlist_state(netlist, verify_clock_period=period)
    env = EndpointSelectionEnv(netlist, period)
    policy = RLCCDPolicy(NUM_FEATURES, rng=seed)
    return Workload(
        netlist=netlist,
        env=env,
        policy=policy,
        flow_config=flow_config,
        snapshot=snapshot,
        clock_period=period,
        name=gen.name,
    )


def run_bench(
    config: BenchConfig = BenchConfig(),
    scale_config: Optional[ScaleSweepConfig] = None,
) -> Dict[str, Any]:
    """Run the smoke workload and return the BENCH payload (see module doc).

    Enables the recorder for the duration (restoring the previous flag) and
    starts from a clean slate so two calls in one process agree.  When
    ``scale_config`` is given the 10K–200K STA scale sweep runs too and its
    results land under the payload's ``"scale"`` key; the sweep runs after
    the smoke counters are snapshotted, so the deterministic sections of the
    payload are identical with and without it.
    """
    from repro.agent.reinforce import TrainConfig, train_rlccd
    from repro.ccd.flow import restore_netlist_state, run_flow

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    watch = obs.Stopwatch()
    try:
        workload = build_workload(
            seed=config.seed,
            cells=config.cells,
            violating_fraction=config.violating_fraction,
        )
        netlist = workload.netlist

        default_result = run_flow(netlist, workload.flow_config)
        restore_netlist_state(netlist, workload.snapshot)

        training = train_rlccd(
            workload.policy,
            workload.env,
            workload.flow_config,
            TrainConfig(max_episodes=config.episodes, seed=config.seed),
        )
        restore_netlist_state(netlist, workload.snapshot)

        sta_compare = _compare_sta_engines(workload)
        rollout_compare = _compare_rollout_engines(workload, config)
        policy_compare = _compare_policy_engines(workload)
        batch_compare = _compare_batch_engines(workload, config)
        distributed_compare = (
            _compare_distributed_engine(workload, config)
            if config.distributed_actors >= 1
            else None
        )
        obs_compare = _compare_trace_overhead(workload)

        state = obs.get_recorder().export_state()
        scale_section = (
            run_scale_sweep(scale_config) if scale_config is not None else None
        )
        total = watch.elapsed
    finally:
        if not was_enabled:
            obs.disable()

    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "git_sha": records.git_sha(),
        "created_at": _utc_now_iso(),
        "seed": config.seed,
        "episodes": config.episodes,
        "design": {
            "name": workload.name,
            "cells": netlist.num_cells,
            "endpoints": len(workload.env.endpoints),
            "clock_period": workload.clock_period,
        },
        "metrics": {
            "begin_wns": default_result.begin.wns,
            "begin_tns": default_result.begin.tns,
            "begin_nve": default_result.begin.nve,
            "default_wns": default_result.final.wns,
            "default_tns": default_result.final.tns,
            "default_nve": default_result.final.nve,
            "rlccd_best_tns": training.best_tns,
            "episodes_run": training.episodes_run,
        },
        "counters": {k: v for k, v in sorted(state["counters"].items())},
        "phases": aggregate_phases(state["phases"]),
        "sta": sta_compare,
        "rollout": rollout_compare,
        "policy": policy_compare,
        "batch": batch_compare,
        "distributed": distributed_compare,
        "obs": obs_compare,
        "scale": scale_section,
        "total_seconds": total,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    return payload


def _compare_sta_engines(workload: Workload) -> Dict[str, Any]:
    """Time the same default flow with incremental STA forced off, then on.

    Returns the ``"sta"`` section of the BENCH payload: per-engine wall
    time of the ``sta.*`` recorder phases accumulated across the whole
    flow and across its data-path phase alone (the analyze()-heaviest
    stage and the one the incremental engine exists for), plus the
    resulting speedup ratios.  Wall-clock only — :func:`strip_timing`
    drops the whole section for the determinism check.
    """
    import dataclasses

    from repro.ccd.flow import restore_netlist_state, run_flow

    def sta_seconds() -> float:
        phases = obs.get_recorder().phases
        return sum(
            stats.total for name, stats in phases.items() if name.startswith("sta.")
        )

    def datapath_seconds() -> float:
        stats = obs.get_recorder().phases.get("flow.datapath")
        return stats.total if stats is not None else 0.0

    out: Dict[str, Any] = {}
    for key, mode in (("full", False), ("incremental", True)):
        flow_config = dataclasses.replace(
            workload.flow_config, incremental_sta=mode
        )
        sta_before = sta_seconds()
        datapath_before = datapath_seconds()
        watch = obs.Stopwatch()
        run_flow(workload.netlist, flow_config)
        out[key] = {
            "flow_seconds": watch.elapsed,
            "sta_seconds": sta_seconds() - sta_before,
            "datapath_seconds": datapath_seconds() - datapath_before,
        }
        restore_netlist_state(workload.netlist, workload.snapshot)
    for field in ("sta_seconds", "datapath_seconds"):
        denominator = out["incremental"][field]
        out[f"{field[:-8]}_speedup"] = (
            out["full"][field] / denominator if denominator > 0 else None
        )
    return out


def _compare_trace_overhead(workload: Workload) -> Dict[str, Any]:
    """Time the default flow with event tracing off, then on.

    Returns the ``"obs"`` section of the BENCH payload; its
    ``trace_overhead_s`` lands in the nightly median+MAD gate as the
    ``section.obs.trace_overhead`` pseudo-phase
    (:func:`repro.obs.history.section_medians`), so a slow tracer — or a
    disabled path that stopped being zero-cost — fails CI like any phase
    regression.  The enabled pass writes its span records to a throwaway
    sink so a real ``--trace`` run is not polluted, and the caller's
    tracing state is restored either way.

    Measurement discipline: the overhead is a small difference between two
    large wall times, so a disabled-block-then-enabled-block layout puts
    any load drift between the blocks straight into the difference (the
    variance of a difference of two independent best-of-N estimates adds).
    Instead each repeat runs disabled-then-enabled back to back and the
    reported overhead is the **median of the paired per-repeat diffs** —
    pairing cancels drift, the median rejects a single noisy repeat.
    """
    import tempfile

    from repro.ccd.flow import restore_netlist_state, run_flow
    from repro.obs import tracing

    repeats = 5
    prev_sink = records.trace_path()
    prev_events = tracing.enabled()
    out: Dict[str, Any] = {"flow_runs": repeats}
    span_records = 0
    handle = tempfile.NamedTemporaryFile(
        suffix=".jsonl", prefix="repro-trace-overhead-", delete=False
    )
    handle.close()

    def _timed_flow() -> float:
        watch = obs.Stopwatch()
        run_flow(workload.netlist, workload.flow_config)
        elapsed = watch.elapsed
        restore_netlist_state(workload.netlist, workload.snapshot)
        return elapsed

    try:
        # Untimed warm-up of both configurations (first enabled flow pays
        # sink setup and tracer-path warming).
        tracing.disable()
        _timed_flow()
        records.set_trace_path(handle.name)
        tracing.enable()
        _timed_flow()
        diffs = []
        disabled_best = enabled_best = math.inf
        for _ in range(repeats):
            tracing.disable()
            records.set_trace_path(prev_sink)
            disabled_s = _timed_flow()
            records.set_trace_path(handle.name)
            tracing.enable()
            enabled_s = _timed_flow()
            disabled_best = min(disabled_best, disabled_s)
            enabled_best = min(enabled_best, enabled_s)
            diffs.append(enabled_s - disabled_s)
        out["disabled"] = {"flow_seconds": disabled_best}
        out["enabled"] = {"flow_seconds": enabled_best}
        tracing.disable()
        records.set_trace_path(prev_sink)
        span_records = sum(
            1
            for record in records.read_records(handle.name)
            if record.get("kind") == "span"
        )
    finally:
        records.set_trace_path(prev_sink)
        if prev_events:
            tracing.enable()
        else:
            tracing.disable()
        try:
            os.unlink(handle.name)
        except OSError:  # pragma: no cover — best-effort temp cleanup
            pass
    # One warm-up + `repeats` timed enabled flows wrote to the sink.
    out["span_records_per_flow"] = span_records // (repeats + 1)
    out["trace_overhead_s"] = max(0.0, statistics.median(diffs))
    return out


def _compare_rollout_engines(
    workload: Workload, config: BenchConfig
) -> Dict[str, Any]:
    """Time the same fixed selection batch through the three rollout paths.

    Returns the ``"rollout"`` section of the BENCH payload: sequential
    in-process evaluation, the persistent :class:`RolloutPool` (cold
    cache), and a cached replay through the same pool, each with tasks/s
    and speedup vs sequential.  The three reward lists are asserted equal —
    the bench doubles as a determinism check.  Wall-clock only:
    :func:`strip_timing` drops the section.

    Measurement discipline (single-CPU runners can only reach parity, so
    fixed overhead must stay out of the timed window): the pool is sized to
    the cores actually available, one untimed warm-up batch absorbs
    cold-start effects, and both engines report the **min over the same
    number of passes** — the standard noise-floor estimator.
    """
    from repro.agent.baselines import select_worst_slack
    from repro.agent.parallel import RewardCache, RolloutPool, evaluate_selections

    env = workload.env
    selections = [
        select_worst_slack(env, 1 + (k % env.num_endpoints))
        for k in range(config.rollout_tasks)
    ]
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        cpus = os.cpu_count() or 1
    workers = max(1, min(config.rollout_workers, cpus))
    passes = 2

    watch = obs.Stopwatch()
    seq_times = []
    for _ in range(passes):
        watch.restart()
        sequential_rewards = evaluate_selections(
            workload.netlist,
            workload.flow_config,
            selections,
            workers=1,
            snapshot=workload.snapshot,
        )
        seq_times.append(watch.elapsed)
    sequential_s = min(seq_times)

    cache = RewardCache.for_context(workload.snapshot, workload.flow_config)
    with RolloutPool(
        workload.netlist,
        workload.flow_config,
        workers=workers,
        snapshot=workload.snapshot,
        cache=None,  # attached below: the timed passes must all stay cold
    ) as pool:
        pool.evaluate(selections)  # untimed warm-up batch
        pooled_times = []
        for _ in range(passes):
            watch.restart()
            pooled_rewards = pool.evaluate(selections)
            pooled_times.append(watch.elapsed)
        pooled_s = min(pooled_times)
        pool.cache = cache
        pool.evaluate(selections)  # untimed: fills the cache
        watch.restart()
        cached_rewards = pool.evaluate(selections)
        cached_s = watch.elapsed
        stats = pool.stats()
    if not (sequential_rewards == pooled_rewards == cached_rewards):
        raise RuntimeError(
            "rollout engines disagree: sequential, pooled and cached replay "
            "must produce identical FlowReward sequences"
        )
    # Forking workers dirties the cyclic-GC bookkeeping of the whole parent
    # heap; collect now so a later bench in the same process doesn't pay for
    # it inside its timed training phases.
    gc.collect()

    tasks = len(selections)

    def _engine(seconds: float) -> Dict[str, Any]:
        return {
            "seconds": seconds,
            "tasks_per_second": tasks / seconds if seconds > 0 else None,
            "speedup": sequential_s / seconds if seconds > 0 else None,
        }

    return {
        "tasks": tasks,
        "workers": stats["workers"],
        "start_method": stats["start_method"],
        "sequential": _engine(sequential_s),
        "pooled": _engine(pooled_s),
        "cached_replay": _engine(cached_s),
        "cache": {
            "hits": stats["cache_hits"],
            "misses": stats["cache_misses"],
            "entries": stats["cache_entries"],
        },
    }


def _compare_distributed_engine(
    workload: Workload, config: BenchConfig
) -> Dict[str, Any]:
    """Time the same fixed selection batch through the actor–learner farm.

    Returns the ``"distributed"`` section of the BENCH payload: sequential
    in-process evaluation, the socket-fed
    :class:`~repro.agent.distributed.DistributedEvaluator` with a cold
    shared cache, and a replay through the warm shared cache service, each
    with tasks/s and speedup vs sequential.  The reward lists are asserted
    equal — the socket transport must never change semantics.  Wall-clock
    only (and the cache-service hit pattern depends on actor interleaving):
    :func:`strip_timing` drops the whole section.

    Same measurement discipline as the rollout section: actors clipped to
    the cores actually available, one untimed warm-up batch, min over the
    same number of passes per engine.
    """
    from repro.agent.baselines import select_worst_slack
    from repro.agent.distributed import DistributedEvaluator
    from repro.agent.parallel import RewardCache, evaluate_selections

    env = workload.env
    selections = [
        select_worst_slack(env, 1 + (k % env.num_endpoints))
        for k in range(config.rollout_tasks)
    ]
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        cpus = os.cpu_count() or 1
    actors = max(1, min(config.distributed_actors, cpus))
    passes = 2

    watch = obs.Stopwatch()
    seq_times = []
    for _ in range(passes):
        watch.restart()
        sequential_rewards = evaluate_selections(
            workload.netlist,
            workload.flow_config,
            selections,
            workers=1,
            snapshot=workload.snapshot,
        )
        seq_times.append(watch.elapsed)
    sequential_s = min(seq_times)

    cache = RewardCache.for_context(workload.snapshot, workload.flow_config)
    with DistributedEvaluator(
        workload.netlist,
        workload.flow_config,
        actors=actors,
        snapshot=workload.snapshot,
        cache=None,  # attached below: the timed passes must all stay cold
    ) as evaluator:
        evaluator.evaluate(selections)  # untimed warm-up batch
        distributed_times = []
        for _ in range(passes):
            watch.restart()
            distributed_rewards = evaluator.evaluate(selections)
            distributed_times.append(watch.elapsed)
        distributed_s = min(distributed_times)
        stats = evaluator.stats()
    # The cold evaluator ran without a cache service; replay timing needs a
    # fresh farm whose actors dial the shared cache from the start.
    with DistributedEvaluator(
        workload.netlist,
        workload.flow_config,
        actors=actors,
        snapshot=workload.snapshot,
        cache=cache,
    ) as evaluator:
        evaluator.evaluate(selections)  # untimed: fills cache + service
        cache.hits = cache.misses = 0  # count only the timed replay
        watch.restart()
        cached_rewards = evaluator.evaluate(selections)
        cached_s = watch.elapsed
        service_stats = (
            evaluator.cache_service.stats()
            if evaluator.cache_service is not None
            else {"hits": 0, "misses": 0, "puts": 0, "evictions": 0, "entries": 0}
        )
    if not (sequential_rewards == distributed_rewards == cached_rewards):
        raise RuntimeError(
            "distributed engine disagrees: sequential, actor–learner and "
            "shared-cache replay must produce identical FlowReward sequences"
        )
    # Same post-fork hygiene as the rollout section: collect the dirtied
    # cyclic-GC bookkeeping outside anyone's timed window.
    gc.collect()

    tasks = len(selections)

    def _engine(seconds: float) -> Dict[str, Any]:
        return {
            "seconds": seconds,
            "tasks_per_second": tasks / seconds if seconds > 0 else None,
            "speedup": sequential_s / seconds if seconds > 0 else None,
        }

    return {
        "tasks": tasks,
        "actors": actors,
        "start_method": stats["start_method"],
        "sequential": _engine(sequential_s),
        "distributed": _engine(distributed_s),
        "shared_cache_replay": _engine(cached_s),
        "cache_service": service_stats,
    }


def _compare_policy_engines(workload: Workload) -> Dict[str, Any]:
    """Time the same greedy selection episode through three policy engines.

    Returns the ``"policy"`` section of the BENCH payload: per-step
    evaluation latency (the ``policy.step`` recorder phase) for

    * ``full_loop`` — full EP-GNN re-encode with the original per-endpoint
      cone-pooling Python loop,
    * ``full`` — full re-encode with the vectorized CSR segment-sum pooling,
    * ``incremental`` — the dirty-region incremental encoder
      (:mod:`repro.gnn.incremental`),

    plus ``combined_speedup`` (the headline: the incremental + CSR-pooled
    engine against the pre-optimization full-loop evaluation) and its two
    factors ``incremental_speedup`` (full vs. incremental medians) and
    ``pooling_speedup`` (loop vs. CSR medians).
    Each engine replays the identical greedy episode several times and the
    medians pool every step, so one noisy step can't swing them;
    ``seconds`` is the per-episode average.  All three engines must pick
    the identical greedy trajectory — the bench doubles as an equivalence
    check.  Wall-clock only: :func:`strip_timing` drops the section.
    """

    env = workload.env
    policy = workload.policy

    def step_durations() -> List[float]:
        stats = obs.get_recorder().phases.get("policy.step")
        return list(stats.durations) if stats is not None else []

    engines = (
        ("full_loop", False, "loop"),
        ("full", False, "csr"),
        ("incremental", True, "csr"),
    )
    # The greedy episode is short (a handful of steps), so a single pass
    # yields a median over too few samples to be stable against scheduler
    # noise; repeat the identical episode and pool every step duration.
    repeats = 3
    out: Dict[str, Any] = {}
    actions: Dict[str, List[int]] = {}
    for key, use_incremental, pooling in engines:
        previous_pooling = policy.epgnn.pooling
        policy.epgnn.pooling = pooling
        try:
            # One untimed warm-up episode per engine: the first episode
            # pays one-off costs (encoder-session build, allocator and
            # cache warm-up) that would skew a per-step comparison.
            policy.rollout(env, greedy=True, incremental=use_incremental)
            before = len(step_durations())
            watch = obs.Stopwatch()
            for repeat in range(repeats):
                trajectory = policy.rollout(
                    env, greedy=True, incremental=use_incremental
                )
                if repeat and list(trajectory.actions) != actions[key]:
                    raise RuntimeError(
                        f"{key} policy engine is not deterministic: repeated "
                        "greedy episodes picked different trajectories"
                    )
                actions[key] = list(trajectory.actions)
        finally:
            policy.epgnn.pooling = previous_pooling
        seconds = watch.elapsed / repeats
        durations = np.asarray(step_durations()[before:], dtype=np.float64)
        out[key] = {
            "seconds": seconds,
            "step_median_s": float(np.median(durations)) if durations.size else None,
            "step_p90_s": (
                float(np.quantile(durations, 0.9)) if durations.size else None
            ),
        }
    if not (actions["full_loop"] == actions["full"] == actions["incremental"]):
        raise RuntimeError(
            "policy engines disagree: full-loop, full and incremental "
            "evaluation must pick identical greedy trajectories"
        )

    def _ratio(numerator: Optional[float], denominator: Optional[float]):
        if numerator is None or denominator is None or denominator <= 0:
            return None
        return numerator / denominator

    out["steps"] = len(actions["full"])
    out["endpoints"] = env.num_endpoints
    out["incremental_speedup"] = _ratio(
        out["full"]["step_median_s"], out["incremental"]["step_median_s"]
    )
    out["pooling_speedup"] = _ratio(
        out["full_loop"]["step_median_s"], out["full"]["step_median_s"]
    )
    # The headline PR number: the incremental + CSR-pooled engine against
    # the pre-optimization evaluation (full re-encode, per-endpoint
    # pooling loop).  incremental_speedup × pooling_speedup by
    # construction.
    out["combined_speedup"] = _ratio(
        out["full_loop"]["step_median_s"], out["incremental"]["step_median_s"]
    )
    return out


def _compare_batch_engines(
    workload: Workload, config: BenchConfig
) -> Dict[str, Any]:
    """Per-episode policy-path latency: B single rollouts vs one batched pass.

    Returns the ``"batch"`` section of the BENCH payload.  For each encoder
    mode (``full`` — every step re-encodes the whole graph; ``incremental``
    — the dirty-region encoder), it times ``config.batch_episodes`` B=1
    :meth:`~repro.agent.policy.RLCCDPolicy.rollout` calls against one
    :meth:`~repro.agent.policy.RLCCDPolicy.rollout_batch` pass over the
    same number of stacked episodes, and reports each engine's best
    per-episode seconds plus their ratio.

    Measurement discipline matches the rollout section (single-CPU
    containers flap badly otherwise): per-engine untimed warm-up pass,
    then the min over ``repeats`` timed passes.  Every pass reseeds the
    same rng stream, so repeated passes must sample identical
    trajectories — checked, making the section double as a determinism
    gate.  ``speedup`` (the headline) is the full-mode ratio: that is
    where batching vectorizes real work, while incremental B=1 episodes
    are already cheap and their batched union dirty region regularly
    trips the full-encode fallback.  Wall-clock only:
    :func:`strip_timing` drops the section.
    """
    env = workload.env
    policy = workload.policy
    batch = config.batch_episodes
    repeats = 3

    def _pass(batched: bool, incremental: bool) -> List[List[int]]:
        rng = np.random.default_rng(config.seed + 1)
        if batched:
            trajectories = policy.rollout_batch(
                env, batch, rng=rng, incremental=incremental
            )
        else:
            trajectories = [
                policy.rollout(env, rng=rng, incremental=incremental)
                for _ in range(batch)
            ]
        return [list(t.actions) for t in trajectories]

    out: Dict[str, Any] = {"batch_episodes": batch}
    for key, incremental in (("full", False), ("incremental", True)):
        section: Dict[str, Any] = {}
        for mode, batched in (("single", False), ("batched", True)):
            actions = _pass(batched, incremental)  # untimed warm-up
            best = float("inf")
            for _ in range(repeats):
                watch = obs.Stopwatch()
                timed = _pass(batched, incremental)
                best = min(best, watch.elapsed / batch)
                if timed != actions:
                    raise RuntimeError(
                        f"batch bench ({key}/{mode}) is not deterministic: "
                        "reseeded passes sampled different trajectories"
                    )
            section[mode] = {"per_episode_s": best}
        single = section["single"]["per_episode_s"]
        batched_s = section["batched"]["per_episode_s"]
        section["speedup"] = single / batched_s if batched_s > 0 else None
        out[key] = section
    out["speedup"] = out["full"]["speedup"]
    return out


def _utc_now_iso() -> str:
    """Current UTC wall time, second resolution, ISO-8601 with ``Z``."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


def aggregate_phases(phases: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Recorder phase stats → count/total/median/mad/p90/max summary table.

    ``mad_s`` is the within-run median absolute deviation of the phase's
    durations — the history store's noise estimate for thin histories.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(phases):
        durations = np.asarray(phases[name]["durations"], dtype=np.float64)
        if durations.size == 0:
            continue
        med = float(np.median(durations))
        out[name] = {
            "count": int(durations.size),
            "total_s": float(durations.sum()),
            "median_s": med,
            "mad_s": float(np.median(np.abs(durations - med))),
            "p90_s": float(np.quantile(durations, 0.9)),
            "max_s": float(durations.max()),
        }
    return out


def save_bench(payload: Dict[str, Any], path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"not a {BENCH_SCHEMA} file: {path!r}")
    return payload


def default_output_name() -> str:
    return f"BENCH_{records.git_sha()}.json"


def compare_bench(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = 0.2,
) -> List[str]:
    """Human-readable warnings for phase medians regressed beyond tolerance.

    Advisory only (CI warns, never fails): returns one line per phase whose
    candidate median exceeds the baseline median by more than
    ``tolerance`` (relative), skipping sub-:data:`MIN_COMPARABLE_SECONDS`
    phases where scheduler noise dominates.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    warnings: List[str] = []
    base_phases = baseline.get("phases", {})
    for name, cand in sorted(candidate.get("phases", {}).items()):
        base = base_phases.get(name)
        if base is None:
            continue
        base_median = float(base["median_s"])
        cand_median = float(cand["median_s"])
        if base_median < MIN_COMPARABLE_SECONDS:
            continue
        if cand_median > base_median * (1.0 + tolerance):
            warnings.append(
                f"phase {name}: median {cand_median * 1e3:.3f} ms vs baseline "
                f"{base_median * 1e3:.3f} ms "
                f"(+{100.0 * (cand_median / base_median - 1.0):.0f}%, "
                f"tolerance {100.0 * tolerance:.0f}%)"
            )
    return warnings


def strip_timing(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Copy of a BENCH payload with every wall-clock field removed.

    What remains (metrics, counters, phase *counts*, design identity) must
    be identical across same-seed runs; the determinism test asserts so.
    """
    out = {
        k: v
        for k, v in payload.items()
        if k
        not in (
            "phases",
            "sta",
            "rollout",
            "policy",
            "batch",
            "distributed",
            "obs",
            "scale",
            "total_seconds",
            "host",
            "git_sha",
            "created_at",
            "provenance",
        )
    }
    out["phases"] = {
        name: {"count": stats["count"]}
        for name, stats in payload.get("phases", {}).items()
    }
    return out


def update_baseline(payload: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write ``payload`` over the committed baseline at ``path``.

    Replaces the hand-edit workflow: the refreshed file carries a
    ``provenance`` field recording when it was regenerated and which run it
    superseded, so ``git log`` plus the file itself explain every baseline
    shift.  Returns the payload actually written.
    """
    previous: Optional[Dict[str, Any]] = None
    try:
        previous = load_bench(path)
    except (OSError, ValueError):
        previous = None  # first baseline, or a corrupt one being replaced
    refreshed = dict(payload)
    refreshed["provenance"] = {
        "refreshed_at": refreshed.get("created_at", _utc_now_iso()),
        "refreshed_by": "python -m repro bench --update-baseline",
        "previous_git_sha": previous.get("git_sha") if previous else None,
        "previous_created_at": previous.get("created_at") if previous else None,
    }
    save_bench(refreshed, path)
    return refreshed
