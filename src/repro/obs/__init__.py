"""``repro.obs`` — the observability layer.

Three small, dependency-free pieces (see ``docs/observability.md``):

* :mod:`repro.obs.core` — a process-global :class:`Recorder` of phase
  timers (``with obs.span("sta.full_update")``), counters
  (``obs.incr("skew.commits")``) and gauges; fork-safe merge for the
  parallel trainer; strict no-op when disabled;
* :mod:`repro.obs.records` — structured JSONL run records behind
  ``REPRO_OBS=<path>`` / ``--trace``;
* :mod:`repro.obs.logging` — the stdlib ``repro.*`` logger hierarchy
  (:func:`setup_logging`);
* :mod:`repro.obs.bench` — the ``python -m repro bench`` smoke workload
  whose ``BENCH_<sha>.json`` output CI publishes and diffs.

Typical instrumentation::

    from repro import obs

    with obs.span("ccd.useful_skew"):
        ...
        obs.incr("skew.commits")
"""

from repro.obs.core import (
    ENV_VAR,
    VERIFY_ENV_VAR,
    Recorder,
    Span,
    Stopwatch,
    child_reset,
    disable,
    enable,
    enabled,
    export_state,
    gauge,
    get_recorder,
    incr,
    merge_state,
    reset,
    set_verify,
    span,
    verify_enabled,
)
from repro.obs.logging import get_logger, setup_logging, verbosity_to_level
from repro.obs.records import (
    SCHEMA,
    emit,
    git_sha,
    read_records,
    set_trace_path,
    trace_path,
    tracing,
)

__all__ = [
    "ENV_VAR",
    "VERIFY_ENV_VAR",
    "Recorder",
    "Span",
    "Stopwatch",
    "SCHEMA",
    "child_reset",
    "disable",
    "emit",
    "enable",
    "enabled",
    "export_state",
    "gauge",
    "get_logger",
    "get_recorder",
    "git_sha",
    "incr",
    "merge_state",
    "read_records",
    "reset",
    "set_trace_path",
    "set_verify",
    "setup_logging",
    "span",
    "trace_path",
    "tracing",
    "verbosity_to_level",
    "verify_enabled",
]
