"""``repro.obs`` — the observability layer.

Small, dependency-free pieces (see ``docs/observability.md``):

* :mod:`repro.obs.core` — a process-global :class:`Recorder` of phase
  timers (``with obs.span("sta.full_update")``), counters
  (``obs.incr("skew.commits")``) and gauges; fork-safe merge for the
  parallel trainer; strict no-op when disabled;
* :mod:`repro.obs.records` — structured JSONL run records behind
  ``REPRO_OBS=<path>`` / ``--trace`` (schema ``repro-obs/v2``, with a
  backward-compatible v1 reader);
* :mod:`repro.obs.telemetry` — per-episode RL internals (entropy,
  attention-logit stats, gradient norms, selection trajectories) nested
  into ``episode`` records;
* :mod:`repro.obs.history` — the run-history store indexing past
  ``BENCH_*.json`` / trace files and computing median+MAD baselines;
* :mod:`repro.obs.report` — the ``python -m repro report`` dashboard;
* :mod:`repro.obs.profiling` — ``--profile`` (cProfile + tracemalloc
  into ``profile`` records);
* :mod:`repro.obs.logging` — the stdlib ``repro.*`` logger hierarchy
  (:func:`setup_logging`);
* :mod:`repro.obs.bench` — the ``python -m repro bench`` smoke workload
  whose ``BENCH_<sha>.json`` output CI publishes and gates on.

Typical instrumentation::

    from repro import obs

    with obs.span("ccd.useful_skew"):
        ...
        obs.incr("skew.commits")
"""

from repro.obs.core import (
    ENV_VAR,
    VERIFY_ENV_VAR,
    Recorder,
    Span,
    Stopwatch,
    child_reset,
    disable,
    enable,
    enabled,
    export_state,
    gauge,
    get_recorder,
    incr,
    merge_state,
    reset,
    set_verify,
    span,
    verify_enabled,
)
from repro.obs.logging import get_logger, setup_logging, verbosity_to_level
from repro.obs.records import (
    SCHEMA,
    SCHEMA_V1,
    SUPPORTED_SCHEMAS,
    emit,
    env_trace_path,
    git_sha,
    read_records,
    set_trace_path,
    trace_path,
    upgrade_record,
)

# Whether the JSONL sink is connected.  ``records.tracing`` keeps its name
# inside the records module, but at the package level ``obs.tracing`` is
# the *event-tracing submodule* (imported below), so the predicate is
# re-exported as ``obs.records_active``.
from repro.obs.records import tracing as records_active
from repro.obs import tracing  # noqa: E402  (needs core/records bound first)

__all__ = [
    "ENV_VAR",
    "VERIFY_ENV_VAR",
    "Recorder",
    "Span",
    "Stopwatch",
    "SCHEMA",
    "SCHEMA_V1",
    "SUPPORTED_SCHEMAS",
    "child_reset",
    "disable",
    "emit",
    "enable",
    "enabled",
    "env_trace_path",
    "export_state",
    "gauge",
    "get_logger",
    "get_recorder",
    "git_sha",
    "incr",
    "merge_state",
    "read_records",
    "records_active",
    "reset",
    "set_trace_path",
    "set_verify",
    "setup_logging",
    "span",
    "trace_path",
    "tracing",
    "upgrade_record",
    "verbosity_to_level",
    "verify_enabled",
]
