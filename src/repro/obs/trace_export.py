"""Chrome trace-event / Perfetto export of span records.

``python -m repro trace export run.jsonl`` converts the ``kind: "span"``
lines of a JSONL trace (:mod:`repro.obs.tracing`) into the Chrome
trace-event JSON object format — ``{"traceEvents": [...]}`` — that both
``chrome://tracing`` and https://ui.perfetto.dev open directly.

Track mapping: each emitting process is its own *pid* track (the parent
plus one per pool worker, since every worker is a separate process), and
the *tid* encodes the worker slot (``0`` for the parent's main thread,
``slot + 1`` for workers) so respawned workers land on their slot's track
rather than spawning a new anonymous one.  ``ph: "M"`` metadata events
name the tracks.  Parent links are preserved in ``args`` — span ids stay
pid-prefixed and therefore globally unique — which is what makes
worker-side spans visibly belong to their submitting rollout step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs import records as obs_records


def _track(record: Mapping[str, Any]) -> Tuple[int, int]:
    worker = record.get("worker")
    tid = 0 if worker is None else int(worker) + 1
    return int(record.get("pid", 0)), tid


def chrome_trace(records: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Build the Chrome trace-event object from parsed run records.

    Non-span records are ignored (the JSONL sink interleaves flow/episode
    records with span events).  Timestamps/durations convert from seconds
    to the format's microseconds.
    """
    events: List[Dict[str, Any]] = []
    tracks: Dict[Tuple[int, int], int] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        pid, tid = _track(record)
        tracks.setdefault((pid, tid), len(tracks))
        args = dict(record.get("attrs") or {})
        args["span_id"] = record.get("span_id")
        if record.get("parent_id") is not None:
            args["parent_id"] = record.get("parent_id")
        args["trace_id"] = record.get("trace_id")
        event: Dict[str, Any] = {
            "name": str(record.get("name", "")),
            "cat": "repro",
            "pid": pid,
            "tid": tid,
            "ts": float(record.get("ts", 0.0)) * 1e6,
            "args": args,
        }
        if record.get("ph") == "i":
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant marker
        else:
            event["ph"] = "X"
            event["dur"] = float(record.get("dur", 0.0)) * 1e6
        events.append(event)

    metadata: List[Dict[str, Any]] = []
    seen_pids = set()
    for pid, tid in sorted(tracks):
        if pid not in seen_pids:
            seen_pids.add(pid)
            process = "repro main" if tid == 0 else f"repro worker {tid - 1}"
            metadata.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        thread = "main" if tid == 0 else f"slot {tid - 1}"
        metadata.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def export_file(trace_path: str, out_path: str) -> Dict[str, int]:
    """Read ``trace_path``, write the Chrome JSON to ``out_path``.

    Returns a small summary (span events, instants, distinct processes)
    for the CLI to print.
    """
    import json

    records = obs_records.read_records(trace_path)
    trace = chrome_trace(records)
    with open(out_path, "w") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    events = [e for e in trace["traceEvents"] if e["ph"] in ("X", "i")]
    return {
        "spans": sum(1 for e in events if e["ph"] == "X"),
        "instants": sum(1 for e in events if e["ph"] == "i"),
        "processes": len({e["pid"] for e in events}),
    }
