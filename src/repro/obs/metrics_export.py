"""Prometheus text-exposition export of the live recorder.

Renders the process-global recorder (:mod:`repro.obs.core`) — counters,
gauges and per-phase duration histograms — in the Prometheus text format
(version 0.0.4), and serves it from long-running ``train``/``bench`` runs
via a stdlib ``http.server`` endpoint behind the ``--metrics-port`` CLI
flag.  Families:

* ``repro_counter_total{name="..."}`` — the recorder's counters;
* ``repro_gauge{name="..."}`` — last-value gauges;
* ``repro_phase_duration_seconds{phase="..."}`` — cumulative histogram
  (``_bucket``/``_sum``/``_count``) over each phase's span durations;
* ``repro_build_info{git_sha="...", python="..."}`` — constant ``1``.

Everything is stdlib-only (the container rule: no new dependencies); the
server runs ``ThreadingHTTPServer`` on a daemon thread so scrapes never
block the training loop, and reads go through the recorder's own lock via
``export_state``-style snapshots.
"""

from __future__ import annotations

import platform
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, List, Mapping, Optional

from repro.obs import core
from repro.obs import records as obs_records

#: Histogram bucket upper bounds (seconds).  Flow phases at smoke scale sit
#: in the 1 ms – 1 s range; full designs push into the tail buckets.
BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


def render_prometheus(state: Optional[Mapping[str, Any]] = None) -> str:
    """The recorder's current contents in Prometheus text exposition format.

    ``state`` defaults to a snapshot of the live global recorder; passing
    an explicit ``Recorder.export_state()`` dict makes the renderer
    testable without touching process globals.
    """
    if state is None:
        state = core.get_recorder().export_state()
    lines: List[str] = []

    counters = state.get("counters", {})
    lines.append("# HELP repro_counter_total Monotonic counters from the repro recorder.")
    lines.append("# TYPE repro_counter_total counter")
    for name in sorted(counters):
        lines.append(
            f'repro_counter_total{{name="{_escape_label(name)}"}} '
            f"{_format_value(counters[name])}"
        )

    gauges = state.get("gauges", {})
    lines.append("# HELP repro_gauge Last-value gauges from the repro recorder.")
    lines.append("# TYPE repro_gauge gauge")
    for name in sorted(gauges):
        lines.append(
            f'repro_gauge{{name="{_escape_label(name)}"}} '
            f"{_format_value(gauges[name])}"
        )

    phases = state.get("phases", {})
    lines.append(
        "# HELP repro_phase_duration_seconds Distribution of span durations per phase."
    )
    lines.append("# TYPE repro_phase_duration_seconds histogram")
    for name in sorted(phases):
        stats = phases[name]
        durations = [float(d) for d in stats.get("durations", [])]
        label = _escape_label(name)
        cumulative = 0
        for bound in BUCKETS:
            cumulative = sum(1 for d in durations if d <= bound)
            lines.append(
                f'repro_phase_duration_seconds_bucket{{phase="{label}",'
                f'le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(
            f'repro_phase_duration_seconds_bucket{{phase="{label}",le="+Inf"}} '
            f"{len(durations)}"
        )
        lines.append(
            f'repro_phase_duration_seconds_sum{{phase="{label}"}} '
            f"{_format_value(sum(durations))}"
        )
        lines.append(
            f'repro_phase_duration_seconds_count{{phase="{label}"}} {len(durations)}'
        )

    lines.append("# HELP repro_build_info Build metadata (constant 1).")
    lines.append("# TYPE repro_build_info gauge")
    lines.append(
        f'repro_build_info{{git_sha="{_escape_label(obs_records.git_sha())}",'
        f'python="{_escape_label(platform.python_version())}"}} 1'
    )
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        body = render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes must not spam the training logs


def suggest_free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port the OS reports free right now.

    For the CLI's ``--metrics-port`` collision message: binding port 0 and
    reading the assignment back is the only race-free way to *find* a free
    port, and while another process may still grab it before the user
    retries, it is a far better suggestion than a guess.
    """
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


class MetricsServer:
    """Daemon-threaded ``/metrics`` endpoint over the global recorder."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread

    @classmethod
    def start(cls, port: int, host: str = "127.0.0.1") -> "MetricsServer":
        """Bind and serve (``port=0`` picks a free port — used in tests)."""
        server = ThreadingHTTPServer((host, port), _MetricsHandler)
        server.daemon_threads = True
        thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics", daemon=True
        )
        thread.start()
        return cls(server, thread)

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
