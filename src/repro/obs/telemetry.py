"""Per-episode RL training telemetry (the ``repro-obs/v2`` payload).

PR 1 made the flow observable; this module makes the *agent* observable.
Each rollout collects, per selection step, the internals the paper's
contribution lives in (attention-based endpoint selection, Eq. 5-7):

* policy entropy of the masked selection distribution ``P_t``;
* attention-logit statistics over the valid endpoints (min / max /
  softmax concentration — see :func:`repro.nn.attention.logit_stats`);
* the selection trajectory itself: endpoint id, step index, and how many
  endpoints the fan-in-cone overlap rule masked so far.

The trainer (:mod:`repro.agent.reinforce`) folds these into one
``kind: "episode"`` run record per episode, together with per-update
gradient norms (pre/post clip), the reward-normalization baseline's
running statistics, the cumulative per-endpoint selection frequency and
the EP-GNN layer gates (γ).

Discipline matches :mod:`repro.obs.core`: collection happens only while
the recorder is enabled — :func:`for_rollout` returns ``None`` otherwise,
so the disabled cost in the rollout hot loop is one function call and one
``is None`` branch per step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs import core


class EpisodeTelemetry:
    """Per-step collector for one selection episode (one trajectory τ)."""

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: List[Dict[str, Any]] = []

    def record_step(
        self,
        endpoint: int,
        step: int,
        masked_after: int,
        entropy: float,
        logit_min: float,
        logit_max: float,
        top_prob: float,
        concentration: float,
    ) -> None:
        """Append one selection step.

        ``masked_after`` is the cumulative number of endpoints masked by
        the overlap rule *after* this selection was applied; ``entropy``
        is the Shannon entropy of the masked distribution the action was
        sampled from; the remaining fields are the attention-logit
        diagnostics of the same step.
        """
        self.steps.append(
            {
                "endpoint": int(endpoint),
                "step": int(step),
                "masked_after": int(masked_after),
                "entropy": float(entropy),
                "logit_min": float(logit_min),
                "logit_max": float(logit_max),
                "top_prob": float(top_prob),
                "concentration": float(concentration),
            }
        )

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Aggregates over the episode's steps (empty-safe)."""
        if not self.steps:
            return {
                "num_steps": 0,
                "entropy_mean": None,
                "entropy_first": None,
                "entropy_last": None,
                "logit_min": None,
                "logit_max": None,
                "top_prob_mean": None,
                "concentration_mean": None,
                "masked_total": 0,
            }
        entropies = [s["entropy"] for s in self.steps]
        n = len(self.steps)
        return {
            "num_steps": n,
            "entropy_mean": sum(entropies) / n,
            "entropy_first": entropies[0],
            "entropy_last": entropies[-1],
            "logit_min": min(s["logit_min"] for s in self.steps),
            "logit_max": max(s["logit_max"] for s in self.steps),
            "top_prob_mean": sum(s["top_prob"] for s in self.steps) / n,
            "concentration_mean": sum(s["concentration"] for s in self.steps) / n,
            "masked_total": self.steps[-1]["masked_after"],
        }

    def payload(self) -> Dict[str, Any]:
        """The ``telemetry`` sub-object of a v2 ``episode`` record."""
        return {**self.summary(), "steps": list(self.steps)}


def for_rollout() -> Optional[EpisodeTelemetry]:
    """A fresh collector while the recorder is enabled, else ``None``.

    The ``None`` return is the disabled fast path: rollouts guard every
    telemetry computation behind ``collector is not None``, so switched-off
    observability costs one branch per selection step.
    """
    if not core.enabled():
        return None
    return EpisodeTelemetry()


def episode_payload(
    base: Dict[str, Any],
    telemetry: Optional[EpisodeTelemetry],
    *,
    baseline: Optional[Dict[str, Any]] = None,
    selection_frequency: Optional[Dict[int, int]] = None,
    gnn_gamma: Optional[List[float]] = None,
) -> Dict[str, Any]:
    """Assemble the full v2 ``episode`` payload.

    ``base`` carries the v1-compatible fields (episode, seed, reward, tns,
    wns, nve, num_selected, advantage); everything telemetry-specific nests
    under ``telemetry`` so v1 consumers that only look at top-level keys
    keep working unchanged.  Gradient norms are stitched in by the trainer
    after the optimizer step (see ``agent.reinforce``), since they only
    exist once the episode's update has run.
    """
    payload = dict(base)
    tele: Dict[str, Any] = telemetry.payload() if telemetry is not None else {}
    if baseline is not None:
        tele["baseline"] = dict(baseline)
    if selection_frequency is not None:
        # JSON object keys are strings; stringify deterministically here
        # instead of relying on the encoder's implicit int-key coercion.
        tele["selection_frequency"] = {
            str(endpoint): int(count)
            for endpoint, count in sorted(selection_frequency.items())
        }
    if gnn_gamma is not None:
        tele["gnn_gamma"] = [float(g) for g in gnn_gamma]
    payload["telemetry"] = tele or None
    return payload
