"""Structured JSONL run records.

One line per flow run / training iteration, written to the path given by
``REPRO_OBS=<path>`` or the ``--trace <path>`` CLI flag.  Every record is a
single JSON object with a fixed envelope::

    {"schema": "repro-obs/v1", "kind": "flow" | "episode" | ...,
     "git_sha": "<short sha or 'unknown'>", ...payload}

Records are append-only and flushed per line, so a crashed run keeps every
record emitted before the crash and concurrent readers (``tail -f``, CI log
scrapers) always see whole lines.  Timing fields live under ``phases`` /
``*_seconds`` keys; everything else is deterministic for a fixed seed, which
is what the determinism test in ``tests/test_obs.py`` pins down.
"""

from __future__ import annotations

import json
import os
import subprocess
import threading
from typing import Any, Dict, Optional

from repro.obs import core

SCHEMA = "repro-obs/v1"

_lock = threading.Lock()
_trace_path: Optional[str] = None
_git_sha: Optional[str] = None


def _init_from_env() -> None:
    """Honour ``REPRO_OBS=<path>`` at import time (truthy flags enable the
    recorder only; anything else is treated as a trace-sink path)."""
    value = os.environ.get(core.ENV_VAR, "").strip()
    if not value or value.lower() in core._TRUTHY:
        return
    set_trace_path(value)


def set_trace_path(path: Optional[str]) -> None:
    """Point the JSONL sink at ``path`` (``None`` disconnects it).

    Setting a sink implies enabling the recorder — a trace with empty phase
    data would be useless.  The parent directory is created eagerly so a
    bad path fails here, not at the first record mid-run.
    """
    global _trace_path
    if path:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    with _lock:
        _trace_path = path
    if path:
        core.enable()


def trace_path() -> Optional[str]:
    return _trace_path


def tracing() -> bool:
    """Whether run records are being written."""
    return _trace_path is not None


def git_sha() -> str:
    """Short git sha of the repo this package runs from (cached; ``unknown``
    outside a git checkout or without a git binary)."""
    global _git_sha
    if _git_sha is None:
        try:
            root = os.path.dirname(os.path.abspath(__file__))
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=5,
            )
            _git_sha = out.stdout.strip() if out.returncode == 0 else "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_sha = "unknown"
    return _git_sha


def emit(kind: str, payload: Dict[str, Any]) -> None:
    """Append one run record (no-op when no sink is configured).

    The envelope keys (``schema``, ``kind``, ``git_sha``) win over payload
    keys of the same name.
    """
    path = _trace_path
    if path is None:
        return
    record = dict(payload)
    record["schema"] = SCHEMA
    record["kind"] = kind
    record["git_sha"] = git_sha()
    line = json.dumps(record, sort_keys=True, default=_jsonify)
    with _lock:
        with open(path, "a") as handle:
            handle.write(line + "\n")


def _jsonify(value: Any) -> Any:
    """Last-resort encoder for numpy scalars and other number-likes."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def read_records(path: str) -> list:
    """Parse a JSONL trace back into a list of dicts (schema-checked)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") != SCHEMA:
                raise ValueError(
                    f"record schema {record.get('schema')!r} != {SCHEMA!r} in {path}"
                )
            records.append(record)
    return records


_init_from_env()
