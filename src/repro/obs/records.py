"""Structured JSONL run records.

One line per flow run / training iteration, written to the path given by
``REPRO_OBS=<path>`` or the ``--trace <path>`` CLI flag.  Every record is a
single JSON object with a fixed envelope::

    {"schema": "repro-obs/v2", "kind": "flow" | "episode" | ...,
     "git_sha": "<short sha or 'unknown'>", ...payload}

Records are append-only and flushed per line, so a crashed run keeps every
record emitted before the crash and concurrent readers (``tail -f``, CI log
scrapers) always see whole lines.  Timing fields live under ``phases`` /
``*_seconds`` keys; everything else is deterministic for a fixed seed, which
is what the determinism test in ``tests/test_telemetry.py`` pins down.

Schema history:

* ``repro-obs/v1`` — PR 1's envelope; ``episode`` records carry only the
  reward-level fields (tns/wns/nve/num_selected/advantage).
* ``repro-obs/v2`` — adds the nested ``telemetry`` object to ``episode``
  records (:mod:`repro.obs.telemetry`) and the ``profile`` record kind
  (:mod:`repro.obs.profiling`).  v1 files remain readable:
  :func:`read_records` upgrades them in memory via :func:`upgrade_record`.
"""

from __future__ import annotations

import json
import os
import subprocess
import threading
from typing import Any, Dict, Optional

from repro.obs import core

SCHEMA_V1 = "repro-obs/v1"
SCHEMA = "repro-obs/v2"

#: Schemas :func:`read_records` accepts (oldest first).
SUPPORTED_SCHEMAS = (SCHEMA_V1, SCHEMA)

_lock = threading.Lock()
_trace_path: Optional[str] = None
_git_sha: Optional[str] = None


def env_trace_path() -> Optional[str]:
    """The trace-sink path requested via ``REPRO_OBS``, if any.

    Truthy flag values (``1``/``true``/...) enable the recorder without a
    sink and return ``None`` here; any other non-empty value is a path.
    The CLI uses this to detect (and log) a ``--trace``-vs-environment
    disagreement — the CLI flag wins.
    """
    value = os.environ.get(core.ENV_VAR, "").strip()
    if not value or value.lower() in core._TRUTHY:
        return None
    return value


def _init_from_env() -> None:
    """Honour ``REPRO_OBS=<path>`` at import time (truthy flags enable the
    recorder only; anything else is treated as a trace-sink path)."""
    value = env_trace_path()
    if value is not None:
        set_trace_path(value)


def set_trace_path(path: Optional[str]) -> None:
    """Point the JSONL sink at ``path`` (``None`` disconnects it).

    Setting a sink implies enabling the recorder — a trace with empty phase
    data would be useless.  The parent directory is created eagerly so a
    bad path fails here, not at the first record mid-run.
    """
    global _trace_path
    if path:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    with _lock:
        _trace_path = path
    if path:
        core.enable()


def trace_path() -> Optional[str]:
    return _trace_path


def tracing() -> bool:
    """Whether run records are being written."""
    return _trace_path is not None


def git_sha() -> str:
    """Short git sha of the repo this package runs from (cached; ``unknown``
    outside a git checkout or without a git binary)."""
    global _git_sha
    if _git_sha is None:
        try:
            root = os.path.dirname(os.path.abspath(__file__))
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=5,
            )
            _git_sha = out.stdout.strip() if out.returncode == 0 else "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_sha = "unknown"
    return _git_sha


def emit(kind: str, payload: Dict[str, Any]) -> None:
    """Append one run record (no-op when no sink is configured).

    The envelope keys (``schema``, ``kind``, ``git_sha``) win over payload
    keys of the same name.
    """
    path = _trace_path
    if path is None:
        return
    record = dict(payload)
    record["schema"] = SCHEMA
    record["kind"] = kind
    record["git_sha"] = git_sha()
    line = json.dumps(record, sort_keys=True, default=_jsonify)
    with _lock:
        with open(path, "a") as handle:
            handle.write(line + "\n")


def _jsonify(value: Any) -> Any:
    """Last-resort encoder for numpy scalars and other number-likes."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def upgrade_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Lift one record to the current schema (returns v2 records as-is).

    v1 → v2 is purely additive: ``episode`` records gain an explicit
    ``telemetry: null`` so v2 consumers can distinguish "telemetry was off /
    predates telemetry" from "telemetry collected nothing".  Unknown
    schemas raise — silently passing them through would defeat the check.
    """
    schema = record.get("schema")
    if schema == SCHEMA:
        return record
    if schema != SCHEMA_V1:
        raise ValueError(
            f"record schema {schema!r} is not one of {SUPPORTED_SCHEMAS}"
        )
    upgraded = dict(record)
    upgraded["schema"] = SCHEMA
    if upgraded.get("kind") == "episode":
        upgraded.setdefault("telemetry", None)
    return upgraded


def read_records(path: str, upgrade: bool = True) -> list:
    """Parse a JSONL trace back into a list of dicts (schema-checked).

    Accepts every schema in :data:`SUPPORTED_SCHEMAS`; with ``upgrade=True``
    (the default) older records come back lifted to the current schema, so
    downstream consumers (``repro report``, the history store) only ever
    see the v2 shape.
    """
    records = []
    with open(path) as handle:
        lines = handle.readlines()
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A final line with no trailing newline is a record the writer
            # never finished (process killed mid-append); live readers
            # (watch/report on a running trace) skip it instead of dying.
            # Corrupt *complete* lines still raise — they mean the file is
            # damaged, not merely in flight.
            if number == len(lines) and not raw.endswith("\n"):
                core.incr("obs.records.truncated")
                break
            raise
        if record.get("schema") not in SUPPORTED_SCHEMAS:
            raise ValueError(
                f"record schema {record.get('schema')!r} not in "
                f"{SUPPORTED_SCHEMAS} at {path}:{number}"
            )
        records.append(upgrade_record(record) if upgrade else record)
    return records


_init_from_env()
