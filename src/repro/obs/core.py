"""Process-global recorder: phase timers, counters and gauges.

The recorder is the in-memory half of the observability layer
(:mod:`repro.obs`).  Hot paths instrument themselves with

* ``with obs.span("sta.full_update"): ...`` — a monotonic phase timer
  (nestable: a span opened inside another span records under its own name
  and the active stack is tracked per thread);
* ``obs.incr("skew.commits")`` — a counter;
* ``obs.gauge("flow.endpoints", n)`` — a last-value gauge.

Disabled mode is a no-op: every entry point checks a single module flag and
``span`` hands back a shared, stateless null context manager, so the
instrumented code paths cost one attribute load + one branch when
observability is off (measured <1% on the tier-1 suite).

The recorder is thread-safe (one lock around mutations) and fork-aware:
worker processes forked by :mod:`repro.agent.parallel` start from a fresh
recorder (:func:`child_reset`), export their state as plain dictionaries
(:func:`export_state`) and the parent folds those into its own recorder
(:func:`merge_state`), so parallel training runs aggregate exactly like
sequential ones.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

_TRUTHY = ("1", "true", "yes", "on")

#: Environment variable that switches the layer on.  A truthy value enables
#: the recorder only; any other non-empty value is a path that additionally
#: receives JSONL run records (see :mod:`repro.obs.records`).
ENV_VAR = "REPRO_OBS"

#: Environment variable enabling the (expensive) verify mode: snapshot /
#: restore round-trips in :mod:`repro.ccd.flow` re-run STA and assert the
#: timing state came back bit-for-bit.
VERIFY_ENV_VAR = "REPRO_OBS_VERIFY"


class PhaseStats:
    """Duration accounting of one named phase."""

    __slots__ = ("count", "total", "durations")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.durations: List[float] = []

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        self.durations.append(elapsed)

    def as_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "total": self.total, "durations": list(self.durations)}


class Recorder:
    """Phase timers + counters + gauges for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.pid = os.getpid()
        self.phases: Dict[str, PhaseStats] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # ---- span bookkeeping ------------------------------------------- #
    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def span_stack(self) -> List[str]:
        """Names of the spans currently open on this thread (outer first)."""
        return list(self._stack())

    def add_phase(self, name: str, elapsed: float) -> None:
        with self._lock:
            stats = self.phases.get(name)
            if stats is None:
                stats = self.phases[name] = PhaseStats()
            stats.add(elapsed)

    # ---- counters / gauges ------------------------------------------ #
    def incr(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    # ---- export / merge / reset ------------------------------------- #
    def export_state(self) -> Dict[str, Any]:
        """Plain-dict snapshot, safe to pickle across a process boundary."""
        with self._lock:
            return {
                "pid": self.pid,
                "phases": {name: s.as_dict() for name, s in self.phases.items()},
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a child recorder's exported state into this recorder."""
        with self._lock:
            for name, stats in state.get("phases", {}).items():
                mine = self.phases.get(name)
                if mine is None:
                    mine = self.phases[name] = PhaseStats()
                mine.count += int(stats["count"])
                mine.total += float(stats["total"])
                mine.durations.extend(float(d) for d in stats["durations"])
            for name, value in state.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + float(value)
            # Gauges are last-value-wins; the child's observation is newer.
            for name, value in state.get("gauges", {}).items():
                self.gauges[name] = float(value)

    def reset(self) -> None:
        with self._lock:
            self.phases = {}
            self.counters = {}
            self.gauges = {}


#: Sentinel ``trace_parent``: the event tracer (when installed) parents the
#: span under whatever span is open on the current thread.  An explicit id
#: (or ``None`` for a root span) overrides the stack — the rollout pool uses
#: that to re-parent worker-side spans under the submitting task.
TRACE_INHERIT = object()


class Span:
    """Recording timer context manager (only built while enabled)."""

    __slots__ = (
        "name",
        "attrs",
        "_recorder",
        "_start",
        "elapsed",
        "_trace",
        "_trace_parent",
    )

    def __init__(
        self,
        name: str,
        recorder: Recorder,
        attrs: Optional[Dict[str, Any]] = None,
        trace_parent: Any = TRACE_INHERIT,
    ):
        self.name = name
        self.attrs = attrs
        self._recorder = recorder
        self._start = 0.0
        self.elapsed: Optional[float] = None
        self._trace = None
        self._trace_parent = trace_parent

    def __enter__(self) -> "Span":
        self._recorder._stack().append(self.name)
        tracer = _tracer
        if tracer is not None:
            self._trace = tracer.begin(self.name, self._trace_parent)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        stack = self._recorder._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        token = self._trace
        if token is not None:
            self._trace = None
            token.finish(self.elapsed, self.attrs)
        self._recorder.add_phase(self.name, self.elapsed)
        return False


class _NullSpan:
    """Shared no-op span handed out while observability is disabled."""

    __slots__ = ()
    name = ""
    elapsed: Optional[float] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Stopwatch:
    """Tiny always-on monotonic timer (for result fields like
    ``FlowResult.runtime_seconds`` that must be populated regardless of
    whether the recorder is enabled)."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start


# ---------------------------------------------------------------------- #
# Module-level state: the process-global recorder and the enable flag.
# ---------------------------------------------------------------------- #
_recorder = Recorder()
_enabled: bool = bool(os.environ.get(ENV_VAR, "").strip())
_verify: bool = os.environ.get(VERIFY_ENV_VAR, "").strip().lower() in _TRUTHY

#: Installed event tracer (see :mod:`repro.obs.tracing`) or ``None``.  Spans
#: check this exactly once per ``__enter__``; with no tracer installed the
#: cost is one module-global load + branch, and the disabled-recorder path
#: (the shared ``_NULL_SPAN``) never reaches it at all.
_tracer: Optional[Any] = None


def set_tracer(tracer: Optional[Any]) -> None:
    """Install (or remove, with ``None``) the event tracer Span hooks into."""
    global _tracer
    _tracer = tracer


def get_tracer() -> Optional[Any]:
    return _tracer


def enabled() -> bool:
    """Whether the recorder is live (module flag; the disabled fast path)."""
    return _enabled


def enable() -> None:
    """Switch the recorder on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Switch the recorder off (existing data is kept until :func:`reset`)."""
    global _enabled
    _enabled = False


def verify_enabled() -> bool:
    """Whether snapshot/restore verify mode is on (``REPRO_OBS_VERIFY``)."""
    return _verify


def set_verify(value: bool) -> None:
    global _verify
    _verify = bool(value)


def get_recorder() -> Recorder:
    return _recorder


def span(
    name: str,
    attrs: Optional[Dict[str, Any]] = None,
    trace_parent: Any = TRACE_INHERIT,
):
    """Phase-timer context manager; a shared no-op while disabled.

    ``attrs`` (a plain dict, attached to the trace event on exit) and
    ``trace_parent`` (an explicit parent span id) only matter when the event
    tracer is installed; both are explicit parameters rather than ``**kwargs``
    so the common ``span("name")`` call allocates nothing extra.
    """
    if not _enabled:
        return _NULL_SPAN
    return Span(name, _recorder, attrs, trace_parent)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter (no-op while disabled)."""
    if not _enabled:
        return
    _recorder.incr(name, amount)


def gauge(name: str, value: float) -> None:
    """Record a last-value gauge (no-op while disabled)."""
    if not _enabled:
        return
    _recorder.gauge(name, value)


def export_state() -> Optional[Dict[str, Any]]:
    """Snapshot of the recorder, or ``None`` while disabled."""
    if not _enabled:
        return None
    return _recorder.export_state()


def merge_state(state: Optional[Dict[str, Any]]) -> None:
    """Fold a child process's exported state into the global recorder."""
    if state is None or not _enabled:
        return
    _recorder.merge_state(state)


def reset() -> None:
    """Clear the global recorder (phases, counters and gauges)."""
    _recorder.reset()


def child_reset() -> None:
    """Start a forked worker from a clean recorder.

    Called at the top of worker bodies so the child reports only its own
    work; the fork otherwise copies whatever the parent had accumulated.
    """
    global _recorder
    _recorder = Recorder()
