"""Live tail of a JSONL run-record stream (``python -m repro watch``).

The terminal precursor to the CCD-as-a-service streamed-progress
contract: point it at the trace file a running ``train``/``bench`` writes
(``--trace run.jsonl``) and it prints one progress line per record as the
run emits them — per-episode reward/TNS, per-flow phase timings, rollout
pool health, and (with ``--spans``) individual span events.

The follower is a plain polling generator over the append-only file: it
remembers its byte offset, re-reads from there, and *never* consumes a
partial trailing line (the writer appends whole lines, but the reader can
race the write syscall), so records parse exactly once each.  A file that
does not exist yet is simply "no records yet" — ``watch`` can be started
before the run.  Truncation (a restarted run recreating the file) resets
the offset to zero rather than erroring.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.obs import records as obs_records


class RecordFollower:
    """Incremental reader of an append-only JSONL file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._line_number = 0

    def poll(self) -> Iterator[Dict[str, Any]]:
        """Yield every *complete* record appended since the last poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size < self._offset:
            # The file shrank: a new run truncated/recreated it.
            self._offset = 0
            self._line_number = 0
        if size == self._offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        # Only whole lines: anything after the last newline is a record
        # still being written and stays for the next poll.
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        self._offset += end + 1
        for raw in chunk[: end + 1].splitlines():
            self._line_number += 1
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A live stream should survive one bad line (e.g. a crashed
                # writer's torn record followed by a restart's output).
                continue
            try:
                yield obs_records.upgrade_record(record)
            except ValueError:
                continue


def follow_records(
    path: str,
    interval: float = 0.5,
    once: bool = False,
    poll_hook: Optional[Any] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield records from ``path`` as they appear (``tail -f`` semantics).

    ``once=True`` drains what exists and returns (used by tests and for
    post-hoc summaries); otherwise the generator polls forever — callers
    stop it by breaking / KeyboardInterrupt.  ``poll_hook()`` (test seam)
    runs after every empty poll.
    """
    follower = RecordFollower(path)
    while True:
        emitted = False
        for record in follower.poll():
            emitted = True
            yield record
        if once:
            return
        if not emitted:
            if poll_hook is not None:
                poll_hook()
            time.sleep(interval)


def render_watch_line(record: Mapping[str, Any]) -> Optional[str]:
    """One human progress line for a record, or ``None`` to stay quiet.

    Span records return ``None`` here (they are high-volume); the CLI
    renders them only under ``--spans`` via :func:`render_span_line`.
    """
    kind = record.get("kind")
    if kind == "episode":
        telemetry = record.get("telemetry") or {}
        entropy = telemetry.get("policy_entropy_mean")
        entropy_part = f" entropy={entropy:.3f}" if entropy is not None else ""
        return (
            f"episode {record.get('episode'):>4}  "
            f"tns={record.get('tns'):.3f} wns={record.get('wns'):.3f} "
            f"nve={record.get('nve')} selected={record.get('num_selected')} "
            f"advantage={record.get('advantage'):+.3f}{entropy_part}"
        )
    if kind == "flow":
        phases = record.get("phases") or {}
        slowest = max(phases, key=phases.get) if phases else "-"
        return (
            f"flow     endpoints={record.get('endpoints')} "
            f"prioritized={record.get('prioritized')} "
            f"tns {record.get('begin_tns'):.3f} -> {record.get('final_tns'):.3f} "
            f"in {record.get('runtime_seconds', 0.0):.3f}s (slowest: {slowest})"
        )
    if kind == "rollout":
        return (
            f"rollout  workers={record.get('workers')} "
            f"({record.get('start_method')}) "
            f"tasks={record.get('tasks')} retries="
            f"{record.get('worker_restarts', 0)} "
            f"cache {record.get('cache_hits', 0)}/"
            f"{record.get('cache_hits', 0) + record.get('cache_misses', 0)} hits"
        )
    if kind == "train":
        return (
            f"train    done: episodes={record.get('episodes_run')} "
            f"best_tns={record.get('best_tns'):.3f} "
            f"converged={record.get('converged')}"
        )
    if kind == "profile":
        return f"profile  {record.get('command')} captured"
    return None


def render_span_line(record: Mapping[str, Any]) -> Optional[str]:
    """One line per span event (``--spans`` mode)."""
    if record.get("kind") != "span":
        return None
    worker = record.get("worker")
    where = "main" if worker is None else f"w{worker}"
    if record.get("ph") == "i":
        return f"span     [{where}] * {record.get('name')}"
    dur_ms = float(record.get("dur", 0.0)) * 1e3
    return f"span     [{where}] {record.get('name')} {dur_ms:.2f} ms"
