"""Pointer-network attention used as the action decoder (paper Eq. 5–6).

Given the LSTM query ``q_t`` and the EP-GNN endpoint embeddings
``F_EP ∈ R^{|EP|×d}``, the attention score of endpoint *i* is

    A_t^(i) = vᵀ tanh(W1 · F_EP^(i) + W2 · q_t)      (valid endpoints)
    A_t^(i) = −∞                                      (selected/masked)

and the selection distribution is ``softmax(A_t)`` — implemented as a masked
softmax so invalid endpoints receive exactly zero probability.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import init
from repro.nn.functional import masked_softmax
from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class PointerAttention(Module):
    """Additive (Bahdanau-style) attention producing selection logits."""

    def __init__(self, embed_dim: int, query_dim: int, hidden_dim: int, rng: SeedLike = None):
        super().__init__()
        if min(embed_dim, query_dim, hidden_dim) <= 0:
            raise ValueError("PointerAttention dimensions must be positive")
        rng = as_rng(rng)
        self.embed_dim = embed_dim
        self.query_dim = query_dim
        self.hidden_dim = hidden_dim
        self.w1 = self.register_parameter("w1", init.xavier_uniform((embed_dim, hidden_dim), rng))
        self.w2 = self.register_parameter("w2", init.xavier_uniform((query_dim, hidden_dim), rng))
        self.v = self.register_parameter("v", init.xavier_uniform((hidden_dim,), rng))

    def scores(self, embeddings: Tensor, query: Tensor) -> Tensor:
        """Unmasked attention scores ``A_t ∈ R^{|EP|}`` (Eq. 5, valid branch).

        ``(n, d)`` embeddings with a ``(d_q,)`` query yield ``(n,)`` scores;
        ``(B, n, d)`` embeddings with a ``(B, d_q)`` query yield ``(B, n)``
        scores from one fused pass (each batch row attends with its own
        query — the batched-rollout decode step).
        """
        if embeddings.ndim not in (2, 3) or embeddings.shape[-1] != self.embed_dim:
            raise ValueError(
                f"embeddings must have shape (n, {self.embed_dim}) or "
                f"(B, n, {self.embed_dim}), got {embeddings.shape}"
            )
        if embeddings.ndim == 3:
            if query.shape != (embeddings.shape[0], self.query_dim):
                raise ValueError(
                    f"batched query must have shape ({embeddings.shape[0]}, "
                    f"{self.query_dim}), got {query.shape}"
                )
            # (B, 1, hidden) query term broadcasts over the n endpoints.
            batch = embeddings.shape[0]
            query_term = (query @ self.w2).reshape(batch, 1, self.hidden_dim)
            hidden = (embeddings @ self.w1 + query_term).tanh()
            return hidden @ self.v
        if query.shape != (self.query_dim,):
            raise ValueError(
                f"query must have shape ({self.query_dim},), got {query.shape}"
            )
        hidden = (embeddings @ self.w1 + query @ self.w2).tanh()
        return hidden @ self.v

    def forward(self, embeddings: Tensor, query: Tensor, valid: np.ndarray) -> Tensor:
        """Selection probabilities ``P_t`` over endpoints (Eq. 6).

        ``valid`` marks endpoints that are neither selected nor masked; they
        are the only positions with non-zero probability.
        """
        return masked_softmax(self.scores(embeddings, query), np.asarray(valid, dtype=bool))

    def __repr__(self) -> str:
        return (
            f"PointerAttention(embed_dim={self.embed_dim}, "
            f"query_dim={self.query_dim}, hidden_dim={self.hidden_dim})"
        )


def logit_stats(
    scores: np.ndarray,
    valid: np.ndarray,
    probabilities: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Diagnostics of one decode step's attention logits (telemetry).

    Over the *valid* endpoints only (masked positions carry −∞ semantics,
    not information): the raw logit range plus two concentration measures
    of the masked softmax ``P_t`` —

    * ``top_prob`` — probability mass on the argmax endpoint;
    * ``concentration`` — Σ p² (the Herfindahl index / inverse
      participation ratio): 1/k for a uniform k-way choice, → 1 as the
      distribution collapses onto one endpoint.

    Pass ``probabilities`` when the masked softmax is already computed (the
    rollout hot path does) to avoid recomputing it; entropy lives on the
    telemetry record separately.
    """
    scores = np.asarray(scores, dtype=float)
    valid = np.asarray(valid, dtype=bool)
    if not valid.any():
        raise ValueError("logit_stats requires at least one valid position")
    valid_scores = scores[valid]
    if probabilities is None:
        shifted = valid_scores - valid_scores.max()
        exp = np.exp(shifted)
        probs = exp / exp.sum()
    else:
        probs = np.asarray(probabilities, dtype=float)[valid]
    return {
        "logit_min": float(valid_scores.min()),
        "logit_max": float(valid_scores.max()),
        "top_prob": float(probs.max()),
        "concentration": float((probs**2).sum()),
    }
