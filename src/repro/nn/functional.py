"""Functional building blocks on top of :mod:`repro.nn.tensor`.

The attention decoder (paper Eq. 5–6) needs a numerically stable *masked*
softmax where masked positions (already-selected or overlap-masked endpoints)
receive probability exactly zero — the paper expresses this as attention
scores of −∞.  We implement that here without ever materializing infinities
inside the autograd tape.
"""

from __future__ import annotations


import numpy as np

from repro.nn.tensor import Tensor, as_tensor, where


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(logits: Tensor, valid: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over the positions where ``valid`` is True; zeros elsewhere.

    Equivalent to setting invalid logits to −∞ (paper Eq. 5) and taking a
    softmax (Eq. 6), but implemented so no ``inf`` or ``nan`` enters the tape.
    Gradients flow only through valid positions.
    """
    valid = np.asarray(valid, dtype=bool)
    if valid.shape != logits.shape:
        raise ValueError(
            f"valid mask shape {valid.shape} must match logits shape {logits.shape}"
        )
    if not valid.any():
        raise ValueError("masked_softmax requires at least one valid position")
    # Shift by the max over *valid* entries only, then zero out invalid ones.
    valid_data = np.where(valid, logits.data, -np.inf)
    shift = valid_data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shift)
    exp = where(valid, shifted.exp(), Tensor(np.zeros(logits.shape)))
    total = exp.sum(axis=axis, keepdims=True)
    return exp / total


def masked_log_prob(logits: Tensor, valid: np.ndarray, index) -> Tensor:
    """Log-probability of position ``index`` under the masked softmax.

    Computed directly in log space for numerical stability; used by the
    REINFORCE update (paper Eq. 7) where ``log π(a_t | s_t)`` is needed.

    With 1-D ``logits`` and a scalar ``index`` this returns a scalar.  With
    2-D ``(B, N)`` logits, a ``(B, N)`` mask, and a length-``B`` index array
    it returns the ``(B,)`` vector of per-episode log-probabilities from one
    batched pass.
    """
    valid = np.asarray(valid, dtype=bool)
    if logits.ndim == 2:
        index = np.asarray(index, dtype=np.int64)
        batch = logits.shape[0]
        if index.shape != (batch,):
            raise ValueError(
                f"batched masked_log_prob needs {batch} action indices, "
                f"got shape {index.shape}"
            )
        rows = np.arange(batch)
        if not valid[rows, index].all():
            raise ValueError("a batched action index is masked out")
        valid_data = np.where(valid, logits.data, -np.inf)
        shift = valid_data.max(axis=-1, keepdims=True)
        shifted = logits - Tensor(shift)
        exp = where(valid, shifted.exp(), Tensor(np.zeros(logits.shape)))
        log_total = exp.sum(axis=-1).log()
        return shifted[rows, index] - log_total
    if logits.ndim != 1:
        raise ValueError("masked_log_prob expects a 1-D or 2-D logit tensor")
    if not valid[index]:
        raise ValueError(f"action index {index} is masked out")
    valid_data = np.where(valid, logits.data, -np.inf)
    shift = float(valid_data.max())
    shifted = logits - shift
    exp = where(valid, shifted.exp(), Tensor(np.zeros(logits.shape)))
    log_total = exp.sum().log()
    return shifted[index] - log_total


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def clip_gradient_norm(parameters, max_norm: float) -> float:
    """Scale accumulated gradients in-place so their global L2 norm ≤ ``max_norm``.

    Returns the pre-clipping norm.  Parameters with no gradient are skipped.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


def entropy(probabilities: Tensor, eps: float = 1e-12, axis=None) -> Tensor:
    """Shannon entropy of a probability vector (zeros contribute zero).

    Positions with probability ≤ ``eps`` are treated as exact zeros: their
    ``p·log p`` term — and its gradient — vanish, matching the limit.
    With ``axis=-1`` and a ``(B, N)`` matrix this yields the ``(B,)`` vector
    of per-row entropies used by the batched rollout.
    """
    mask = probabilities.data > eps
    # log(1) = 0 at masked positions, so masked terms contribute nothing.
    clamped = where(mask, probabilities, Tensor(np.ones(probabilities.shape)))
    return -(probabilities * clamped.log()).sum(axis=axis)
