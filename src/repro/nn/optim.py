"""Gradient-descent optimizers for the REINFORCE update (paper Eq. 7).

Both optimizers operate on the flat parameter list exposed by
:meth:`repro.nn.layers.Module.parameters` and read the ``grad`` buffers filled
by :meth:`repro.nn.tensor.Tensor.backward`.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer: holds parameter references and clears gradients."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        for p in self.parameters:
            if not p.requires_grad:
                raise ValueError(f"parameter {p!r} does not require grad")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the default for RL-CCD training."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
