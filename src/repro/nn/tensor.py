"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ML stack used by the EP-GNN, the LSTM
encoder and the attention decoder.  It implements a small, well-tested subset
of a deep-learning framework: a :class:`Tensor` wrapping a ``numpy.ndarray``,
a tape of parent links built during the forward pass, and a topological-order
backward pass accumulating gradients.

Design notes
------------
* Broadcasting is fully supported; :func:`_unbroadcast` reduces an upstream
  gradient back to a parent's shape.
* Gradients are accumulated (``+=``) so a tensor used in several places gets
  the correct total derivative.
* Only ``float64`` data participates in differentiation; integer index arrays
  are plain numpy arguments, never Tensors.
* No in-place mutation of ``data`` after a tensor has been consumed by an op;
  the layers in :mod:`repro.nn.layers` respect this convention.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value; raises if not a single element."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(as_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        a_nd, b_nd = self.data.ndim, other.data.ndim
        if a_nd > 3 or b_nd > 2:
            raise ValueError(
                "Tensor @ supports 1-D/2-D operands plus a 3-D (batched) "
                "left operand against a 2-D or 1-D right operand"
            )

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            grad = np.asarray(grad)
            if self.requires_grad:
                if a_nd == 3 and b_nd == 2:  # (B,m,n)@(n,p) -> (B,m,p)
                    ga = grad @ b.T
                elif a_nd == 3 and b_nd == 1:  # (B,m,n)@(n,) -> (B,m)
                    ga = grad[..., None] * b
                elif a_nd == 2 and b_nd == 2:
                    ga = grad @ b.T
                elif a_nd == 2 and b_nd == 1:  # (m,n)@(n,) -> (m,)
                    ga = np.outer(grad, b)
                elif a_nd == 1 and b_nd == 2:  # (n,)@(n,p) -> (p,)
                    ga = b @ grad
                else:  # (n,)@(n,) -> scalar
                    ga = grad * b
                self._accumulate(ga.reshape(a.shape))
            if other.requires_grad:
                if a_nd == 3 and b_nd == 2:
                    gb = a.reshape(-1, a.shape[-1]).T @ grad.reshape(-1, grad.shape[-1])
                elif a_nd == 3 and b_nd == 1:
                    gb = a.reshape(-1, a.shape[-1]).T @ grad.reshape(-1)
                elif a_nd == 2 and b_nd == 2:
                    gb = a.T @ grad
                elif a_nd == 2 and b_nd == 1:
                    gb = a.T @ grad
                elif a_nd == 1 and b_nd == 2:
                    gb = np.outer(a, grad)
                else:
                    gb = grad * a
                other._accumulate(gb.reshape(b.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                mask = self.data == out_data
                self._accumulate(g * mask / mask.sum())
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = self.data == expanded
                gg = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(gg * mask / mask.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows ``indices`` (differentiable).

        On a 2-D tensor this gathers along axis 0; on a 3-D (batched)
        tensor the leading axis is the batch and rows are gathered along
        axis 1, sharing one index array across every batch row.
        """
        indices = np.asarray(indices, dtype=np.int64)
        batched = self.data.ndim == 3

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if batched:
                    np.add.at(full, (slice(None), indices), grad)
                else:
                    np.add.at(full, indices, grad)
                self._accumulate(full)

        data = self.data[:, indices] if batched else self.data[indices]
        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(np.concatenate([t.data for t in tensors], axis=axis), tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack() requires at least one tensor")

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tensors, backward)


def segment_sum(rows: Tensor, segments: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``rows`` grouped by ``segments`` (differentiable).

    ``segments[i]`` names the output row that input row ``i`` accumulates
    into; empty segments yield zero rows.  The summation order within a
    segment is the input order, so two calls with identically ordered rows
    produce bitwise-identical sums — the property the incremental EP-GNN
    encoder relies on to mirror the full pass (see ``docs/policy.md``).
    """
    rows = as_tensor(rows)
    segments = np.asarray(segments, dtype=np.int64)
    batched = rows.ndim == 3

    def backward(grad: np.ndarray) -> None:
        if rows.requires_grad:
            if batched:
                rows._accumulate(grad[:, segments])
            else:
                rows._accumulate(grad[segments])

    if batched:
        # (B, R, F) rows with one shared segment map: pool along axis 1.
        data = np.zeros((rows.shape[0], num_segments, rows.shape[2]))
        np.add.at(data, (slice(None), segments), rows.data)
    else:
        data = np.zeros((num_segments, rows.shape[1]))
        np.add.at(data, segments, rows.data)
    return Tensor._make(data, (rows,), backward)


def outer(column: np.ndarray, row: Tensor) -> Tensor:
    """Differentiable rank-1 product ``column[:, None] * row[None, :]``.

    ``column`` is a plain (constant) 1-D numpy vector; ``row`` is a 1-D
    tensor.  The gradient w.r.t. ``row`` is ``columnᵀ @ grad``.  This is the
    rank-1 masked-column update of the incremental EP-GNN encoder.
    """
    column = np.asarray(column, dtype=np.float64)
    row = as_tensor(row)
    if column.ndim != 1 or row.ndim != 1:
        raise ValueError("outer() expects a 1-D column and a 1-D row")

    def backward(grad: np.ndarray) -> None:
        if row.requires_grad:
            row._accumulate(column @ grad)

    return Tensor._make(np.multiply.outer(column, row.data), (row,), backward)


def scatter_rows(base: Tensor, indices: np.ndarray, rows: Tensor) -> Tensor:
    """Copy of ``base`` with ``rows`` written at ``indices`` (differentiable).

    The backward routes the upstream gradient per row: rows named by
    ``indices`` flow to ``rows``, every other row flows to ``base`` — the
    replaced base rows receive **no** gradient because the output does not
    depend on them.  ``indices`` must be unique; duplicate targets would
    make the forward order-dependent.
    """
    base = as_tensor(base)
    rows = as_tensor(rows)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("scatter_rows() expects a 1-D index array")
    batched = base.ndim == 3
    expected = (
        (base.shape[0], indices.size) + base.shape[2:]
        if batched
        else (indices.size,) + base.shape[1:]
    )
    if rows.shape != expected:
        raise ValueError(
            f"rows shape {rows.shape} incompatible with base {base.shape} "
            f"at {indices.size} indices"
        )

    def backward(grad: np.ndarray) -> None:
        if rows.requires_grad:
            rows._accumulate(grad[:, indices] if batched else grad[indices])
        if base.requires_grad:
            keep = np.array(grad, dtype=np.float64, copy=True)
            if batched:
                keep[:, indices] = 0.0
            else:
                keep[indices] = 0.0
            base._accumulate(keep)

    data = np.array(base.data, copy=True)
    if batched:
        data[:, indices] = rows.data
    else:
        data[indices] = rows.data
    return Tensor._make(data, (base, rows), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select: ``condition`` is a plain boolean array.

    The condition is **copied**: the backward closure replays it after the
    caller may have mutated the original in place (the selection env flips
    its ``valid`` mask between steps), and gradients must route by the
    condition as it was at forward time.
    """
    condition = np.array(condition, dtype=bool, copy=True)
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)
