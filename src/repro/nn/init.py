"""Parameter initialization schemes.

The paper does not specify initializers beyond "randomly initialize all
training parameters" (Algorithm 1 line 2); we use Xavier/Glorot uniform for
projection matrices (standard for tanh/sigmoid networks like EP-GNN and the
LSTM) and zeros for biases.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def xavier_uniform(shape, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform: U(−a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = as_rng(rng)
    if len(shape) < 1:
        raise ValueError("xavier_uniform requires at least a 1-D shape")
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape, low: float, high: float, rng: SeedLike = None) -> np.ndarray:
    """Plain uniform initialization in [low, high)."""
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return as_rng(rng).uniform(low, high, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros initialization (biases, LSTM initial state)."""
    return np.zeros(shape, dtype=np.float64)
