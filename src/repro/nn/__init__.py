"""From-scratch numpy neural-network stack.

Provides everything the RL-CCD agent needs without an external DL framework:
reverse-mode autodiff (:mod:`~repro.nn.tensor`), modules and dense layers
(:mod:`~repro.nn.layers`), the LSTM cell of paper Eq. 4
(:mod:`~repro.nn.recurrent`), the pointer attention of Eq. 5–6
(:mod:`~repro.nn.attention`), optimizers (:mod:`~repro.nn.optim`) and
parameter (de)serialization (:mod:`~repro.nn.serialization`).
"""

from repro.nn.attention import PointerAttention
from repro.nn.functional import (
    clip_gradient_norm,
    entropy,
    log_softmax,
    masked_log_prob,
    masked_softmax,
    mse_loss,
    softmax,
)
from repro.nn.layers import MLP, Linear, Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.recurrent import GRUCell, LSTMCell
from repro.nn.serialization import load_into, load_state, save_state
from repro.nn.tensor import Tensor, as_tensor, concat, stack, where

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "masked_log_prob",
    "mse_loss",
    "entropy",
    "clip_gradient_norm",
    "Module",
    "Linear",
    "MLP",
    "LSTMCell",
    "GRUCell",
    "PointerAttention",
    "Optimizer",
    "SGD",
    "Adam",
    "save_state",
    "load_state",
    "load_into",
]
