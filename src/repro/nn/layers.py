"""Module system and dense layers.

A :class:`Module` owns named :class:`~repro.nn.tensor.Tensor` parameters and
child modules, and exposes the flat parameter list the optimizers and the
REINFORCE trainer operate on.  The design intentionally mirrors the familiar
torch ``nn.Module`` surface (``parameters()``, ``state_dict()``,
``load_state_dict()``) so the agent code reads naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class Module:
    """Base class for parameterized computations."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, data: np.ndarray) -> Tensor:
        """Create a trainable tensor and track it under ``name``."""
        if name in self._parameters:
            raise ValueError(f"parameter {name!r} already registered")
        param = Tensor(data, requires_grad=True, name=name)
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        """Track a child module under ``name``."""
        if name in self._modules:
            raise ValueError(f"module {name!r} already registered")
        self._modules[name] = module
        return module

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # state (used by transfer learning, paper §IV-B)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values; shapes must match exactly.

        With ``strict=False`` missing/extra keys are ignored, which is how the
        transfer-learning flow loads a pre-trained EP-GNN into a fresh agent.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if strict and (missing or extra):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        for name, values in state.items():
            if name not in own:
                continue
            param = own[name]
            values = np.asarray(values, dtype=np.float64)
            if values.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {values.shape}"
                )
            param.data = values.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` (bias optional)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: SeedLike = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", init.xavier_uniform((in_features, out_features), rng)
        )
        self.bias: Optional[Tensor] = None
        if bias:
            self.bias = self.register_parameter("bias", init.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


_ACTIVATIONS: Dict[str, Callable[[Tensor], Tensor]] = {
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "relu": lambda t: t.relu(),
    "identity": lambda t: t,
}


class MLP(Module):
    """Stack of Linear layers with a shared activation between them."""

    def __init__(
        self,
        dims: List[int],
        activation: str = "tanh",
        final_activation: str = "identity",
        rng: SeedLike = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dimensions")
        if activation not in _ACTIVATIONS or final_activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = as_rng(rng)
        self.dims = list(dims)
        self._activation = activation
        self._final_activation = final_activation
        self.layers: List[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            is_last = i == len(self.layers) - 1
            name = self._final_activation if is_last else self._activation
            x = _ACTIVATIONS[name](x)
        return x

    def __repr__(self) -> str:
        return f"MLP(dims={self.dims}, activation={self._activation!r})"
