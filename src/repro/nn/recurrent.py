"""LSTM cell used as the past-actions encoder (paper §III-B.2, Eq. 4).

At each RL time step ``t`` the encoder consumes the EP-GNN embedding of the
previously selected endpoint and its own previous hidden state, producing the
new hidden vector ``h_t`` which becomes the attention query ``q_t``.  The
initial state is all zeros (Algorithm 1 line 3).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import SeedLike, as_rng


class LSTMCell(Module):
    """Single-step LSTM following the paper's Eq. 4 gate equations.

    The four gates share one fused weight matrix applied to the concatenation
    ``[h_{t-1}, x_t]`` for efficiency; slicing recovers the per-gate results.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTMCell dimensions must be positive")
        rng = as_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused [h, x] -> 4 * hidden (order: input, forget, output, cell).
        self.weight = self.register_parameter(
            "weight", init.xavier_uniform((hidden_size + input_size, 4 * hidden_size), rng)
        )
        bias = init.zeros(4 * hidden_size)
        # Standard positive forget-gate bias so early training does not wipe
        # the cell state before the reward signal arrives.
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = self.register_parameter("bias", bias)

    def initial_state(self, batch: int = None) -> Tuple[Tensor, Tensor]:
        """Zero ``(h_0, c_0)`` per Algorithm 1 line 3.

        With ``batch`` the state is ``(batch, hidden)`` for the batched
        rollout; without it the classic ``(hidden,)`` vectors are returned.
        """
        shape = self.hidden_size if batch is None else (batch, self.hidden_size)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step: returns ``(h_t, c_t)``.

        ``x`` is the embedding of the previously selected endpoint — shape
        ``(input_size,)``, or ``(B, input_size)`` for a batch of episodes in
        lockstep; ``state`` is ``(h_{t-1}, c_{t-1})`` with matching rank.
        """
        h_prev, c_prev = state
        if x.ndim not in (1, 2) or x.shape[-1] != self.input_size:
            raise ValueError(
                f"LSTMCell input shape {x.shape} incompatible with "
                f"input_size={self.input_size}"
            )
        if h_prev.ndim != x.ndim or h_prev.shape[-1] != self.hidden_size:
            raise ValueError(
                f"LSTMCell hidden shape {h_prev.shape} incompatible with "
                f"input shape {x.shape}"
            )
        fused = concat([h_prev, x], axis=-1) @ self.weight + self.bias
        H = self.hidden_size
        i_gate = fused[..., 0:H].sigmoid()
        f_gate = fused[..., H : 2 * H].sigmoid()
        o_gate = fused[..., 2 * H : 3 * H].sigmoid()
        c_tilde = fused[..., 3 * H : 4 * H].tanh()
        c_t = f_gate * c_prev + i_gate * c_tilde
        h_t = o_gate * c_t.tanh()
        return h_t, c_t

    def __repr__(self) -> str:
        return f"LSTMCell(input_size={self.input_size}, hidden_size={self.hidden_size})"


class GRUCell(Module):
    """Single-step GRU — an encoder-architecture ablation for the agent.

    The paper motivates the LSTM only as "a renowned sequence encoding
    network"; a GRU has the same sequential-encoding role with ~25% fewer
    parameters.  :class:`repro.agent.policy.RLCCDPolicy` accepts either via
    its ``encoder_type`` argument.  The state is ``(h, h)`` so both cells
    share the ``(hidden, cell)`` tuple interface.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("GRUCell dimensions must be positive")
        rng = as_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused [h, x] -> 2 * hidden for the reset/update gates.
        self.gate_weight = self.register_parameter(
            "gate_weight",
            init.xavier_uniform((hidden_size + input_size, 2 * hidden_size), rng),
        )
        self.gate_bias = self.register_parameter("gate_bias", init.zeros(2 * hidden_size))
        # Candidate state uses the reset-gated hidden.
        self.cand_weight = self.register_parameter(
            "cand_weight",
            init.xavier_uniform((hidden_size + input_size, hidden_size), rng),
        )
        self.cand_bias = self.register_parameter("cand_bias", init.zeros(hidden_size))

    def initial_state(self, batch: int = None) -> Tuple[Tensor, Tensor]:
        shape = self.hidden_size if batch is None else (batch, self.hidden_size)
        zero = Tensor(np.zeros(shape))
        return zero, zero

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step: returns ``(h_t, h_t)`` (GRU has no separate cell state)."""
        h_prev, _ = state
        if x.ndim not in (1, 2) or x.shape[-1] != self.input_size:
            raise ValueError(
                f"GRUCell input shape {x.shape} incompatible with "
                f"input_size={self.input_size}"
            )
        if h_prev.ndim != x.ndim or h_prev.shape[-1] != self.hidden_size:
            raise ValueError(
                f"GRUCell hidden shape {h_prev.shape} incompatible with "
                f"input shape {x.shape}"
            )
        fused = concat([h_prev, x], axis=-1) @ self.gate_weight + self.gate_bias
        H = self.hidden_size
        r_gate = fused[..., 0:H].sigmoid()
        z_gate = fused[..., H : 2 * H].sigmoid()
        candidate = (
            concat([r_gate * h_prev, x], axis=-1) @ self.cand_weight + self.cand_bias
        ).tanh()
        h_t = (1.0 - z_gate) * h_prev + z_gate * candidate
        return h_t, h_t

    def __repr__(self) -> str:
        return f"GRUCell(input_size={self.input_size}, hidden_size={self.hidden_size})"
