"""Saving and loading module parameters.

Used by the transfer-learning flow (paper §IV-B): the EP-GNN trained on one
set of designs is saved to disk, then loaded into a fresh agent targeting an
unseen design (whose encoder/decoder stay randomly initialized).
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.layers import Module


def save_state(module: Module, path: str) -> None:
    """Persist ``module.state_dict()`` to an ``.npz`` archive at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state`."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"no saved state at {path!r}")
    with np.load(path) as archive:
        return {name: archive[name].copy() for name in archive.files}


def load_into(module: Module, path: str, strict: bool = True) -> None:
    """Load parameters from ``path`` directly into ``module``."""
    module.load_state_dict(load_state(path), strict=strict)
