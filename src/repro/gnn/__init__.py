"""EP-GNN endpoint encoder (paper Eq. 2 and Eq. 3)."""

from repro.gnn.batched import BatchedEncoderSession
from repro.gnn.epgnn import EMBED_DIM, HIDDEN_DIM, NUM_LAYERS, EPGNN, GraphConvLayer
from repro.gnn.incremental import (
    EncoderSession,
    check_enabled,
    incremental_enabled,
    set_check,
    set_incremental,
)

__all__ = [
    "EPGNN",
    "GraphConvLayer",
    "EMBED_DIM",
    "HIDDEN_DIM",
    "NUM_LAYERS",
    "BatchedEncoderSession",
    "EncoderSession",
    "check_enabled",
    "incremental_enabled",
    "set_check",
    "set_incremental",
]
