"""EP-GNN endpoint encoder (paper Eq. 2 and Eq. 3)."""

from repro.gnn.epgnn import EMBED_DIM, HIDDEN_DIM, NUM_LAYERS, EPGNN, GraphConvLayer

__all__ = ["EPGNN", "GraphConvLayer", "EMBED_DIM", "HIDDEN_DIM", "NUM_LAYERS"]
