"""Batched incremental EP-GNN encoding for stacked episodes of one design.

:class:`BatchedEncoderSession` runs B episodes of the *same* design
(different seeds/masks, identical static graph structure) through one
``(B, N, F)`` encode per RL step.  The static feature columns are required
to be identical across batch rows, so the episode-constant rank-1 layer-1
split of :class:`~repro.gnn.incremental.EncoderSession` stays **shared**:
``A_static``/``M_static`` are computed once as 2-D tensors and every batch
row applies only its own rank-1 masked-column correction on top.

The dirty region is the union over batch rows of per-row mask flips.
Sharing one region across the batch keeps every gather/segment-sum shape
``(B, |rows|, ·)`` — a clean row inside the union is recomputed from
unchanged inputs, which reproduces its cached value (same expressions,
same summation order), so correctness only needs the union to *cover*
each row's dirty set.  All fallback rules and the shadow check
(``REPRO_GNN_CHECK=1``) carry over from the unbatched session; the
reference for the check is a from-scratch batched encode.
"""

from __future__ import annotations

from typing import List

import numpy as np

try:  # SciPy is optional: CSR matmuls roughly quintuple the fused
    import scipy.sparse as _sparse  # full-encode throughput when present.
except ImportError:  # pragma: no cover - exercised via the reduceat path
    _sparse = None

from repro import obs
from repro.gnn.incremental import (
    CHECK_ATOL,
    FULL_FALLBACK_FRACTION,
    EncoderSession,
    _segment_sum_sorted,
    _sigmoid,
    assert_embeddings_equal,
    check_enabled,
)
from repro.nn.tensor import Tensor, scatter_rows


def _rank1_rows_batched(
    a_static: Tensor,
    m_static: Tensor,
    layer,
    rows: np.ndarray,
    mask_rows: np.ndarray,
    nb_mask_rows: np.ndarray,
) -> Tensor:
    """Batched layer-1 dirty-row update (one tape node).

    ``a_static``/``m_static`` are the *shared* 2-D static affines;
    ``mask_rows``/``nb_mask_rows`` are ``(B, R)`` per-episode corrections.
    Backward sums the batch contribution into the shared static caches and
    the mask column's weight row, mirroring ``_rank1_rows`` per row.
    """
    proj_w, agg_w, gamma_logit = layer.proj.weight, layer.agg.weight, layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    proj_pre = a_static.data[rows] + mask_rows[..., None] * proj_w.data[0]
    agg_pre = m_static.data[rows] + nb_mask_rows[..., None] * agg_w.data[0]
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if a_static.requires_grad:
            full = np.zeros_like(a_static.data)
            np.add.at(full, rows, gp.sum(axis=0))
            a_static._accumulate(full)
        if m_static.requires_grad:
            full = np.zeros_like(m_static.data)
            np.add.at(full, rows, ga.sum(axis=0))
            m_static._accumulate(full)
        if proj_w.requires_grad:
            full = np.zeros_like(proj_w.data)
            full[0] = np.einsum("br,brh->h", mask_rows, gp)
            proj_w._accumulate(full)
        if agg_w.requires_grad:
            full = np.zeros_like(agg_w.data)
            full[0] = np.einsum("br,brh->h", nb_mask_rows, ga)
            agg_w._accumulate(full)
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))

    return Tensor._make(
        out_data, (a_static, m_static, proj_w, agg_w, gamma_logit), backward
    )


def _conv_full_first_batched(
    features: np.ndarray,
    layer,
    mean: np.ndarray,
) -> Tensor:
    """Batched Eq.-2 layer 1 over the **whole graph** (one tape node).

    The input features are constants (no upstream gradient), so backward
    only reduces the weight gradients over the batch and node axes.
    Arithmetic mirrors :meth:`GraphConvLayer.forward` operation for
    operation, so the values are bitwise-identical to the generic path.
    """
    proj_w, proj_b = layer.proj.weight, layer.proj.bias
    agg_w, agg_b = layer.agg.weight, layer.agg.bias
    gamma_logit = layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    proj_pre = features @ proj_w.data + proj_b.data
    agg_pre = mean @ agg_w.data + agg_b.data
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if proj_w.requires_grad:
            proj_w._accumulate(
                features.reshape(-1, features.shape[-1]).T
                @ gp.reshape(-1, gp.shape[-1])
            )
        if proj_b.requires_grad:
            proj_b._accumulate(gp.sum(axis=(0, 1)))
        if agg_w.requires_grad:
            agg_w._accumulate(
                mean.reshape(-1, mean.shape[-1]).T @ ga.reshape(-1, ga.shape[-1])
            )
        if agg_b.requires_grad:
            agg_b._accumulate(ga.sum(axis=(0, 1)))
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))

    return Tensor._make(
        out_data, (proj_w, proj_b, agg_w, agg_b, gamma_logit), backward
    )


def _conv_full_batched(
    prev: Tensor,
    layer,
    mean: np.ndarray,
    mean_backward,
) -> Tensor:
    """Batched Eq.-2 layer over the **whole graph** (one tape node).

    Unlike :func:`_conv_rows_batched` there is no row scatter: ``dx`` is the
    dense ``gp @ Θ_projᵀ`` plus the caller's reverse-CSR mean backward, so
    no ``np.add.at`` appears anywhere on this path.
    """
    proj_w, proj_b = layer.proj.weight, layer.proj.bias
    agg_w, agg_b = layer.agg.weight, layer.agg.bias
    gamma_logit = layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    x = prev.data
    proj_pre = x @ proj_w.data + proj_b.data
    agg_pre = mean @ agg_w.data + agg_b.data
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if proj_w.requires_grad:
            proj_w._accumulate(
                x.reshape(-1, x.shape[-1]).T @ gp.reshape(-1, gp.shape[-1])
            )
        if proj_b.requires_grad:
            proj_b._accumulate(gp.sum(axis=(0, 1)))
        if agg_w.requires_grad:
            agg_w._accumulate(
                mean.reshape(-1, mean.shape[-1]).T @ ga.reshape(-1, ga.shape[-1])
            )
        if agg_b.requires_grad:
            agg_b._accumulate(ga.sum(axis=(0, 1)))
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))
        if prev.requires_grad:
            dx = gp @ proj_w.data.T
            mean_backward(ga @ agg_w.data.T, dx)
            prev._accumulate(dx)

    return Tensor._make(
        out_data,
        (prev, proj_w, proj_b, agg_w, agg_b, gamma_logit),
        backward,
    )


def _pool_fc_full_batched(
    final: Tensor,
    fc,
    ep_cells: np.ndarray,
    cone_sums,
    pool_backward,
) -> Tensor:
    """Batched Eq.-3 pooling + FC head over **all endpoints** (one node)."""
    fc_w, fc_b = fc.weight, fc.bias
    x = final.data
    pooled = x[:, ep_cells] + cone_sums
    out_data = pooled @ fc_w.data + fc_b.data

    def backward(grad: np.ndarray) -> None:
        if fc_w.requires_grad:
            fc_w._accumulate(
                pooled.reshape(-1, pooled.shape[-1]).T
                @ grad.reshape(-1, grad.shape[-1])
            )
        if fc_b.requires_grad:
            fc_b._accumulate(grad.sum(axis=(0, 1)))
        if final.requires_grad:
            upstream = grad @ fc_w.data.T
            dx = np.zeros_like(x)
            np.add.at(dx, (slice(None), ep_cells), upstream)
            pool_backward(upstream, dx)
            final._accumulate(dx)

    return Tensor._make(out_data, (final, fc_w, fc_b), backward)


def _conv_rows_batched(
    prev: Tensor,
    layer,
    rows: np.ndarray,
    mean: np.ndarray,
    mean_backward,
) -> Tensor:
    """Batched Eq.-2 layer on ``rows`` only (one tape node).

    ``prev`` is the ``(B, N, H)`` previous-layer tensor; ``mean`` the
    ``(B, R, H)`` caller-computed neighbor means.  Weight gradients reduce
    over both the batch and row axes.
    """
    proj_w, proj_b = layer.proj.weight, layer.proj.bias
    agg_w, agg_b = layer.agg.weight, layer.agg.bias
    gamma_logit = layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    x = prev.data
    x_rows = x[:, rows]
    proj_pre = x_rows @ proj_w.data + proj_b.data
    agg_pre = mean @ agg_w.data + agg_b.data
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if proj_w.requires_grad:
            proj_w._accumulate(
                x_rows.reshape(-1, x_rows.shape[-1]).T @ gp.reshape(-1, gp.shape[-1])
            )
        if proj_b.requires_grad:
            proj_b._accumulate(gp.sum(axis=(0, 1)))
        if agg_w.requires_grad:
            agg_w._accumulate(
                mean.reshape(-1, mean.shape[-1]).T @ ga.reshape(-1, ga.shape[-1])
            )
        if agg_b.requires_grad:
            agg_b._accumulate(ga.sum(axis=(0, 1)))
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))
        if prev.requires_grad:
            dx = np.zeros_like(x)
            np.add.at(dx, (slice(None), rows), gp @ proj_w.data.T)
            mean_backward(ga @ agg_w.data.T, dx)
            prev._accumulate(dx)

    return Tensor._make(
        out_data,
        (prev, proj_w, proj_b, agg_w, agg_b, gamma_logit),
        backward,
    )


def _pool_fc_rows_batched(
    final: Tensor,
    fc,
    ep_cells: np.ndarray,
    cone_sums: np.ndarray,
    pool_backward,
) -> Tensor:
    """Batched Eq.-3 pooling + FC head for dirty endpoints (one tape node)."""
    fc_w, fc_b = fc.weight, fc.bias
    x = final.data
    pooled = x[:, ep_cells] + cone_sums
    out_data = pooled @ fc_w.data + fc_b.data

    def backward(grad: np.ndarray) -> None:
        if fc_w.requires_grad:
            fc_w._accumulate(
                pooled.reshape(-1, pooled.shape[-1]).T
                @ grad.reshape(-1, grad.shape[-1])
            )
        if fc_b.requires_grad:
            fc_b._accumulate(grad.sum(axis=(0, 1)))
        if final.requires_grad:
            upstream = grad @ fc_w.data.T
            dx = np.zeros_like(x)
            np.add.at(dx, (slice(None), ep_cells), upstream)
            pool_backward(upstream, dx)
            final._accumulate(dx)

    return Tensor._make(out_data, (final, fc_w, fc_b), backward)


class BatchedEncoderSession(EncoderSession):
    """Incremental EP-GNN state for B stacked episodes of one design.

    Accepts ``(B, N, F)`` feature tensors whose static columns are
    identical across batch rows; returns ``(B, num_endpoints, embed_dim)``
    embeddings.  Structural caches (reverse CSR, cone maps) are inherited
    from :class:`~repro.gnn.incremental.EncoderSession` unchanged; two
    extra member-sorted CSRs make the *full* batched encode scatter-free
    (``np.add.reduceat`` in both directions) — at realistic batch sizes the
    union dirty region regularly trips the full-fallback rule, so the full
    path is as hot as the incremental one.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rev_counts = np.diff(self._rev_indptr)
        # Reverse cone CSR: cell → endpoints whose fan-in cone contains it,
        # grouped by (sorted) cell, for the pooling backward.
        members = self.cones.cone_members
        order = np.argsort(members, kind="stable")
        self._rc_owner = self._cone_owner[order]
        self._rc_cells, self._rc_counts = np.unique(members, return_counts=True)
        # Degree-folded sparse operators for the fused full encode: the
        # neighbor-mean aggregation and the fan-in cone pooling as CSR
        # matmuls over an (N, B*H) layout.  SciPy-optional — `None` keeps
        # the pure-numpy reduceat path.
        self._A_mean = self._A_mean_T = None
        self._S_cone = self._S_cone_T = None
        if _sparse is not None:
            num_nodes = self.graph.num_nodes
            weights = np.repeat(self._inv_degree, self._fwd_counts)
            self._A_mean = _sparse.csr_matrix(
                (weights, self.graph.neighbor_index, self.graph.indptr),
                shape=(num_nodes, num_nodes),
            )
            self._A_mean_T = self._A_mean.T.tocsr()
            if members.size:
                self._S_cone = _sparse.csr_matrix(
                    (
                        np.ones(members.size),
                        members,
                        self.cones.cone_indptr,
                    ),
                    shape=(self.cones.cone_indptr.size - 1, num_nodes),
                )
                self._S_cone_T = self._S_cone.T.tocsr()

    # ------------------------------------------------------------------ #
    def encode(self, features: np.ndarray) -> Tensor:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 3:
            raise ValueError(
                f"BatchedEncoderSession expects (B, N, F) features, "
                f"got shape {features.shape}"
            )
        if not self._cache_valid(features):
            return self._full_encode(features)

        mask = features[..., 0]
        dirty = np.nonzero((mask != self._prev_mask).any(axis=0))[0]
        if dirty.size == 0:
            obs.incr("gnn.incremental_encode")
            return self._emb

        # Union-over-batch dirty region, grown one reverse-adjacency hop
        # per layer exactly as in the unbatched session.
        in_region = np.zeros(self.graph.num_nodes, dtype=bool)
        in_region[dirty] = True
        frontier_mask = in_region.copy()
        regions = [dirty]
        region_masks = [frontier_mask]
        for _ in range(len(self.gnn.layers)):
            neighbors = self._rev_index[frontier_mask[self._rev_owner]]
            fresh_mask = np.zeros_like(in_region)
            fresh_mask[neighbors] = True
            fresh_mask &= ~in_region
            in_region |= fresh_mask
            frontier_mask = fresh_mask
            regions.append(np.nonzero(in_region)[0])
            region_masks.append(in_region.copy())
        if regions[-1].size > FULL_FALLBACK_FRACTION * self.graph.num_nodes:
            return self._full_encode(features)

        with obs.span("gnn.incremental_encode"):
            embeddings = self._incremental_step(
                features, mask, regions, region_masks
            )
        obs.incr("gnn.incremental_encode")
        obs.incr("gnn.dirty_cells", int(regions[-1].size))
        if check_enabled():
            with obs.span("gnn.shadow_check"):
                assert_embeddings_equal(
                    embeddings, self._reference(features), CHECK_ATOL
                )
            obs.incr("gnn.shadow_checks")
        return embeddings

    # ------------------------------------------------------------------ #
    def _cache_valid(self, features: np.ndarray) -> bool:
        if self._layers is None or self._emb is None:
            return False
        version = getattr(self.netlist, "mutation_version", None)
        if version != self._version:
            return False
        batch = self._prev_mask.shape[0]
        if features.shape != (
            batch,
            self.graph.num_nodes,
            self._static.shape[1] + 1,
        ):
            return False
        return bool((features[..., 1:] == self._static).all())

    def _full_means(self, x: np.ndarray):
        """All-node batched neighbor means with a reduceat backward.

        Forward sums the forward-CSR edge stack; backward routes ``d_mean``
        through the reverse CSR — a gather + sorted segment-sum in both
        directions, no ``np.add.at``.  ``reduceat`` reduces segments with
        unrolled partial sums, so results drift from the generic
        :func:`repro.gnn.epgnn._mean_aggregate` scatter by ~1e-16 — inside
        the documented B>1 tolerance, which is why :meth:`_full_encode`
        keeps B=1 on the generic tape.
        """
        if self._A_mean is not None:
            batch, num_nodes, width = x.shape
            flat = np.ascontiguousarray(x.transpose(1, 0, 2)).reshape(
                num_nodes, batch * width
            )
            mean = np.ascontiguousarray(
                (self._A_mean @ flat)
                .reshape(num_nodes, batch, width)
                .transpose(1, 0, 2)
            )

            def mean_backward(d_mean: np.ndarray, dx: np.ndarray) -> None:
                flat_grad = np.ascontiguousarray(
                    d_mean.transpose(1, 0, 2)
                ).reshape(num_nodes, -1)
                dx += (
                    (self._A_mean_T @ flat_grad)
                    .reshape(num_nodes, d_mean.shape[0], -1)
                    .transpose(1, 0, 2)
                )

            return mean, mean_backward

        mean = _segment_sum_sorted(
            x[:, self.graph.neighbor_index], self._fwd_counts, axis=1
        )
        mean *= self._inv_degree[:, None]

        def mean_backward(d_mean: np.ndarray, dx: np.ndarray) -> None:
            weighted = d_mean * self._inv_degree[:, None]
            dx += _segment_sum_sorted(
                weighted[:, self._rev_index], self._rev_counts, axis=1
            )

        return mean, mean_backward

    def _full_cone_sums(self, x: np.ndarray):
        """All-endpoint batched cone sums; backward via the reverse cone CSR."""
        if self.cones.cone_members.size == 0:
            return 0.0, lambda upstream, dx: None
        if self._S_cone is not None:
            batch, num_nodes, width = x.shape
            flat = np.ascontiguousarray(x.transpose(1, 0, 2)).reshape(
                num_nodes, batch * width
            )
            num_eps = self._S_cone.shape[0]
            sums = np.ascontiguousarray(
                (self._S_cone @ flat)
                .reshape(num_eps, batch, width)
                .transpose(1, 0, 2)
            )

            def pool_backward(upstream: np.ndarray, dx: np.ndarray) -> None:
                flat_up = np.ascontiguousarray(
                    upstream.transpose(1, 0, 2)
                ).reshape(num_eps, -1)
                dx += (
                    (self._S_cone_T @ flat_up)
                    .reshape(num_nodes, upstream.shape[0], -1)
                    .transpose(1, 0, 2)
                )

            return sums, pool_backward

        sums = _segment_sum_sorted(
            x[:, self.cones.cone_members], self._cone_counts, axis=1
        )

        def pool_backward(upstream: np.ndarray, dx: np.ndarray) -> None:
            contrib = upstream[:, self._rc_owner]
            dx[:, self._rc_cells] += _segment_sum_sorted(
                contrib, self._rc_counts, axis=1
            )

        return sums, pool_backward

    def _fused_forward(self, features: np.ndarray):
        """Scatter-free fused conv stack + pool + fc over the whole graph.

        Returns ``(layers, embeddings)``.  B>1 only — drifts from the
        generic tape by ~1e-16 per segment (``reduceat`` partial sums).
        """
        gnn = self.gnn
        layers: List[Tensor] = []
        x: Tensor = None  # type: ignore[assignment]
        for depth, layer in enumerate(gnn.layers):
            data = features if depth == 0 else x.data
            mean, mean_backward = self._full_means(data)
            if depth == 0:
                x = _conv_full_first_batched(features, layer, mean)
            else:
                x = _conv_full_batched(x, layer, mean, mean_backward)
            layers.append(x)
        cone_sums, pool_backward = self._full_cone_sums(x.data)
        embeddings = _pool_fc_full_batched(
            x, gnn.fc, self._ep_cells, cone_sums, pool_backward
        )
        return layers, embeddings

    def full_encode(self, features: np.ndarray) -> Tensor:
        """One fused full-graph encode with no cache interaction.

        The non-incremental batched policy path: every step re-encodes the
        whole graph, so nothing needs the incremental caches or the
        episode-constant static affines.  Callers must keep B=1 on the
        generic :class:`~repro.gnn.epgnn.EPGNN` forward — this path's
        ``reduceat`` partial sums break the B=1 byte-identity contract.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 3:
            raise ValueError(
                f"BatchedEncoderSession expects (B, N, F) features, "
                f"got shape {features.shape}"
            )
        with obs.span("gnn.full_encode"):
            _, embeddings = self._fused_forward(features)
        obs.incr("gnn.full_encode")
        return embeddings

    def _full_encode(self, features: np.ndarray) -> Tensor:
        gnn = self.gnn
        static = features[..., 1:]
        if not (static == static[0]).all():
            raise ValueError(
                "batched episodes must share identical static feature columns"
            )
        with obs.span("gnn.full_encode"):
            if features.shape[0] == 1:
                # The byte-identity contract pins B=1 to the exact generic
                # arithmetic of the unbatched session's full encode; the
                # fused reduceat path drifts by ~1e-16 per segment.
                layers: List[Tensor] = []
                x = Tensor(features)
                for layer in gnn.layers:
                    x = layer(x, self.graph)
                    layers.append(x)
                pooled = gnn.endpoint_pool(x, self.cones)
                embeddings = gnn.fc(pooled)
            else:
                layers, embeddings = self._fused_forward(features)

            # Shared 2-D rank-1 split: every batch row reuses the same
            # static affines, so they are computed once from row 0.
            static_features = np.array(features[0], copy=True)
            static_features[:, 0] = 0.0
            first = gnn.layers[0]
            a_static = first.proj(Tensor(static_features))
            m_static = first.agg(
                Tensor(self.graph.mean_aggregate(static_features))
            )

        self._layers = layers
        self._emb = embeddings
        self._prev_mask = np.array(features[..., 0], copy=True)
        self._static = np.array(static[0], copy=True)
        self._statics = (a_static, m_static)
        self._version = getattr(self.netlist, "mutation_version", None)
        obs.incr("gnn.full_encode")
        return embeddings

    def _neighbor_means(
        self, x: np.ndarray, row_mask: np.ndarray, rows: np.ndarray
    ):
        """Per-row neighbor means over the batch: ``x`` is ``(B, N, H)``,
        the result ``(B, R, H)``; one shared edge select, B reduce lanes."""
        flat = self.graph.neighbor_index[row_mask[self._fwd_owner]]
        counts = self._fwd_counts[rows]
        inv_deg_rows = self._inv_degree[rows]
        mean = _segment_sum_sorted(x[:, flat], counts, axis=1)
        mean *= inv_deg_rows[:, None]
        seg = np.repeat(np.arange(rows.size, dtype=np.int64), counts)

        def mean_backward(g: np.ndarray, dx: np.ndarray) -> None:
            d_mean = g * inv_deg_rows[:, None]
            np.add.at(dx, (slice(None), flat), d_mean[:, seg])

        return mean, mean_backward

    def _cone_sums(self, x: np.ndarray, ep_mask: np.ndarray, eps: np.ndarray):
        flat = self.cones.cone_members[ep_mask[self._cone_owner]]
        counts = self._cone_counts[eps]
        sums = _segment_sum_sorted(x[:, flat], counts, axis=1)
        seg = np.repeat(np.arange(eps.size, dtype=np.int64), counts)

        def pool_backward(upstream: np.ndarray, dx: np.ndarray) -> None:
            np.add.at(dx, (slice(None), flat), upstream[:, seg])

        return sums, pool_backward

    def _incremental_step(
        self,
        features: np.ndarray,
        mask: np.ndarray,
        regions: List[np.ndarray],
        region_masks: List[np.ndarray],
    ) -> Tensor:
        gnn = self.gnn
        layers = self._layers
        new_layers: List[Tensor] = []

        first = gnn.layers[0]
        rows1 = regions[1]
        a_static, m_static = self._statics
        nb_mask, _ = self._neighbor_means(mask[..., None], region_masks[1], rows1)
        nb_mask = nb_mask[..., 0]
        fresh = _rank1_rows_batched(
            a_static, m_static, first, rows1, mask[:, rows1], nb_mask
        )
        new_layers.append(scatter_rows(layers[0], rows1, fresh))

        for depth, layer in enumerate(gnn.layers[1:], start=1):
            rows = regions[depth + 1]
            prev = new_layers[depth - 1]
            mean, mean_backward = self._neighbor_means(
                prev.data, region_masks[depth + 1], rows
            )
            fresh = _conv_rows_batched(prev, layer, rows, mean, mean_backward)
            new_layers.append(scatter_rows(layers[depth], rows, fresh))

        final_region = regions[-1]
        final = new_layers[-1]
        ep_dirty = np.zeros(self._ep_cells.size, dtype=bool)
        ep_dirty[self.cones.endpoints_touching(final_region)] = True
        own_positions = self._ep_pos[final_region]
        ep_dirty[own_positions[own_positions >= 0]] = True
        dirty_eps = np.nonzero(ep_dirty)[0]
        if dirty_eps.size:
            cone_sums, pool_backward = self._cone_sums(
                final.data, ep_dirty, dirty_eps
            )
            emb_rows = _pool_fc_rows_batched(
                final, gnn.fc, self._ep_cells[dirty_eps], cone_sums, pool_backward
            )
            embeddings = scatter_rows(self._emb, dirty_eps, emb_rows)
        else:
            embeddings = self._emb

        self._layers = new_layers
        self._emb = embeddings
        self._prev_mask = np.array(mask, copy=True)
        return embeddings

    def _reference(self, features: np.ndarray) -> Tensor:
        gnn = self.gnn
        x = Tensor(np.asarray(features, dtype=np.float64))
        for layer in gnn.layers:
            x = layer(x, self.graph)
        return gnn.fc(gnn.endpoint_pool(x, self.cones)).detach()


__all__ = ["BatchedEncoderSession"]
