"""EP-GNN: endpoint-oriented graph neural network (paper §III-B.1).

Three graph-convolution layers (Eq. 2) followed by one fully-connected
endpoint head (Eq. 3):

.. math::

    f_v^l = \\sigma\\big( \\gamma\\, f_v^{l-1} \\Theta_{proj}
            + (1-\\gamma)\\, \\Theta_{agg}\\big(\\tfrac{1}{|N(v)|}
              \\textstyle\\sum_{j \\in N(v)} f_j^{l-1}\\big) \\big)

    f_e = \\Theta_{FC}\\big( f_e^{l=3} + \\textstyle\\sum_{j \\in cone(e)}
          f_j^{l=3} \\big)

* σ is the sigmoid, γ a *trainable scalar* weighing self-projection against
  neighborhood aggregation (squashed through a sigmoid so it stays in
  (0, 1));
* the hidden dimension is 32 and the endpoint embedding dimension is 16, as
  specified in the paper;
* the endpoint head sums the final-layer embeddings over the endpoint's
  **fan-in cone**, giving each endpoint a receptive field that covers its
  entire logic cone regardless of depth — the "EP" in EP-GNN.

The mean-over-neighbors aggregation is computed with a differentiable
row-gather + segment-sum over the CSR message-passing graph built by
:func:`repro.netlist.transform.to_message_passing_graph`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import obs
from repro.features.cones import ConeIndex
from repro.netlist.transform import MessagePassingGraph
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, segment_sum
from repro.utils.rng import SeedLike, as_rng

HIDDEN_DIM = 32
EMBED_DIM = 16
NUM_LAYERS = 3


class GraphConvLayer(Module):
    """One Eq.-2 layer: gated mix of self-projection and mean aggregation."""

    def __init__(self, in_dim: int, out_dim: int, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.proj = self.register_module("proj", Linear(in_dim, out_dim, rng=rng))
        self.agg = self.register_module("agg", Linear(in_dim, out_dim, rng=rng))
        # γ is stored as a pre-sigmoid logit so it is unconstrained during
        # optimization but always lands in (0, 1) in the forward pass.
        self.gamma_logit = self.register_parameter("gamma_logit", np.zeros(1))

    @property
    def gamma(self) -> float:
        """Current mixing coefficient γ ∈ (0, 1)."""
        return float(1.0 / (1.0 + np.exp(-self.gamma_logit.data[0])))

    def forward(self, features: Tensor, graph: MessagePassingGraph) -> Tensor:
        neighbor_mean = _mean_aggregate(features, graph)
        gamma = self.gamma_logit.sigmoid()
        mixed = gamma * self.proj(features) + (1.0 - gamma) * self.agg(neighbor_mean)
        return mixed.sigmoid()


def _mean_aggregate(features: Tensor, graph: MessagePassingGraph) -> Tensor:
    """Differentiable per-node mean of neighbor rows (zeros if no neighbors)."""
    gathered = features.gather_rows(graph.neighbor_index)
    # Segment-sum by destination node via a (sparse pattern) matmul-free
    # scatter: build once per call; graph topology is static per design.
    dst = graph._edge_dst()
    summed = _segment_sum(gathered, dst, graph.num_nodes)
    degree = np.maximum(graph.degree(), 1)[:, None]
    return summed * Tensor(1.0 / degree)


# Re-exported for backward compatibility; the differentiable segment-sum now
# lives in :mod:`repro.nn.tensor` where the incremental encoder shares it.
_segment_sum = segment_sum


class EPGNN(Module):
    """The full EP-GNN encoder: Eq. 2 stack + Eq. 3 endpoint head.

    ``forward`` returns the (num_endpoints × 16) embedding matrix
    ``F_EP`` in the canonical endpoint order of the supplied
    :class:`~repro.features.cones.ConeIndex`.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = HIDDEN_DIM,
        embed_dim: int = EMBED_DIM,
        num_layers: int = NUM_LAYERS,
        rng: SeedLike = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("EPGNN needs at least one graph-conv layer")
        rng = as_rng(rng)
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        self.embed_dim = embed_dim
        self.layers: List[GraphConvLayer] = []
        dims = [in_features] + [hidden_dim] * num_layers
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = GraphConvLayer(d_in, d_out, rng=rng)
            self.register_module(f"conv{i}", layer)
            self.layers.append(layer)
        self.fc = self.register_module("fc", Linear(hidden_dim, embed_dim, rng=rng))
        # Cone-pooling strategy: "csr" (one flattened segment-sum over the
        # ConeIndex CSR, the default) or "loop" (the original per-endpoint
        # Python loop, kept for the bench comparison and equivalence tests).
        self.pooling = "csr"

    def gamma_values(self) -> List[float]:
        """Per-layer mixing coefficients γ ∈ (0, 1), outermost layer first.

        γ is the paper's trainable self-vs-neighborhood gate (Eq. 2); its
        drift over training is part of the per-episode telemetry.
        """
        return [layer.gamma for layer in self.layers]

    def node_embeddings(self, features: np.ndarray, graph: MessagePassingGraph) -> Tensor:
        """Run the Eq.-2 stack over all cells; (num_cells × hidden_dim).

        A stacked ``(B, num_cells, in_features)`` batch of episodes sharing
        this graph is accepted too and yields ``(B, num_cells, hidden_dim)``;
        every op vectorizes over the leading axis bitwise-identically to B
        independent passes.
        """
        x = Tensor(np.asarray(features, dtype=np.float64))
        if x.ndim not in (2, 3) or x.shape[-1] != self.in_features:
            raise ValueError(
                f"feature dim {x.shape[-1]} != model in_features {self.in_features}"
            )
        for layer in self.layers:
            x = layer(x, graph)
        return x

    def forward(
        self,
        features: np.ndarray,
        graph: MessagePassingGraph,
        cones: ConeIndex,
    ) -> Tensor:
        """Endpoint embeddings ``F_EP`` per Eq. 3 (num_endpoints × embed_dim).

        With batched ``(B, num_cells, in_features)`` features the result is
        ``(B, num_endpoints, embed_dim)`` — the "loop" pooling ablation stays
        single-episode, so batched inputs always pool through the CSR path.
        """
        with obs.span("gnn.forward"):
            nodes = self.node_embeddings(features, graph)
            if self.pooling == "loop" and nodes.ndim == 2:
                pooled = self._pool_loop(nodes, cones)
            else:
                pooled = self.endpoint_pool(nodes, cones)
            result = self.fc(pooled)
        obs.incr("gnn.forward_passes")
        return result

    def endpoint_pool(self, nodes: Tensor, cones: ConeIndex) -> Tensor:
        """Eq.-3 pooling ``f_e + Σ_{j∈cone(e)} f_j`` as one segment-sum.

        Uses the flattened CSR cone index built once by
        :class:`~repro.features.cones.ConeIndex` — no per-endpoint Python
        loop, no ``np.fromiter``.  Cone members are summed in their sorted
        CSR order, the order the incremental encoder mirrors row for row.
        """
        endpoint_rows = nodes.gather_rows(
            np.asarray(cones.endpoints, dtype=np.int64)
        )
        if cones.cone_members.size == 0:
            return endpoint_rows
        seg = np.repeat(
            np.arange(len(cones.endpoints), dtype=np.int64),
            np.diff(cones.cone_indptr),
        )
        cone_sums = segment_sum(
            nodes.gather_rows(cones.cone_members), seg, len(cones.endpoints)
        )
        return endpoint_rows + cone_sums

    def _pool_loop(self, nodes: Tensor, cones: ConeIndex) -> Tensor:
        """The original per-endpoint pooling loop (bench/equivalence reference)."""
        from repro.nn.tensor import stack

        pooled_rows = []
        for position, endpoint in enumerate(cones.endpoints):
            own = nodes[endpoint]
            members = cones.cone_array(position)
            if members.size:
                pooled_rows.append(own + nodes.gather_rows(members).sum(axis=0))
            else:
                pooled_rows.append(own)
        return stack(pooled_rows, axis=0)
