"""Incremental EP-GNN encoding: dirty-region re-encode inside the RL loop.

:class:`~repro.gnn.epgnn.EPGNN` re-encodes the **whole** netlist at every
RL step even though, per Table I, only the "RL masked" feature column
changes between steps — an N-endpoint episode costs N full graph encodes.
This module applies the dirty-frontier + shadow-check recipe that
:mod:`repro.timing.incremental` proved on the STA side to the policy's
encoder:

* **rank-1 layer 1** — the affine contribution of the 13 static feature
  columns to layer 1 is episode-constant, so it is computed once per
  episode (``A_static = proj(F_static)``, ``M_static = agg(mean(F_static))``,
  both tape-connected; autograd accumulates their gradients on every
  reuse).  A step then only applies the rank-1 masked-column update
  ``A_static[v] + m[v]·W_proj[0]`` (and the neighbor-mean analogue) to the
  rows whose mask or neighbor-mask changed;
* **3-hop dirty region** — a GNN layer's output row moves only when the
  row's own input or one of its aggregation sources moved, so the dirty
  set grows by at most one adjacency hop per layer: ``D → D∪N(D) → … ``
  for the three Eq.-2 layers.  Clean rows keep the tensors computed at
  earlier steps (values are identical, and the shared tape subgraph
  yields the same parameter gradients);
* **incremental Eq.-3 pooling** — only endpoints whose fan-in cone (or
  own cell) intersects the final dirty region re-pool and re-project;
  everything else reuses the cached embedding rows via the differentiable
  ``scatter_rows``.

Every incremental expression mirrors the vectorized full pass row for row
(same summation order inside :func:`repro.nn.tensor.segment_sum`, same
``γ``-gating expression), so a recomputed row from unchanged inputs is
bitwise equal; drift against a from-scratch encode can only come from the
rank-1 decomposition of layer 1 and from BLAS blocking on the smaller
matmuls, both far below :data:`CHECK_ATOL`.

Fallback rules (always produce the exact full-path embedding, bitwise):
first encode of an episode, a netlist ``mutation_version`` bump, a static
feature column that changed under us (diffed every step, the stale-state
safety net), a feature-matrix shape change, the dirty region covering
more than :data:`FULL_FALLBACK_FRACTION` of the cells, and the engine
being disabled (``REPRO_GNN_INCREMENTAL=0`` / ``--no-incremental-gnn`` /
``TrainConfig(incremental_gnn=False)``).

Shadow-check mode (``REPRO_GNN_CHECK=1``) re-runs the full encode after
every incremental one and asserts max |Δ| ≤ :data:`CHECK_ATOL` — the
``gnn-differential`` CI job runs the policy suites under it.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.features.cones import ConeIndex
from repro.gnn.epgnn import EPGNN
from repro.netlist.transform import MessagePassingGraph
from repro.nn.tensor import Tensor, scatter_rows

#: Shadow-check agreement tolerance (absolute, elementwise on embeddings).
CHECK_ATOL = 1e-9

#: When the 3-hop dirty region covers more than this fraction of all cells,
#: a full re-encode is cheaper than the per-row bookkeeping — and keeps the
#: result bitwise equal to the full path.
FULL_FALLBACK_FRACTION = 0.5


#: Default-on switch for the incremental encoder; set to a falsy value
#: (``0``/``false``/``no``/``off``) to force every encode down the full
#: path.  Per-rollout overrides (``TrainConfig.incremental_gnn``,
#: ``RLCCDPolicy.rollout(incremental=...)``) beat this global.
ENV_INCREMENTAL = "REPRO_GNN_INCREMENTAL"

#: Truthy value turns on differential shadow checking of every incremental
#: encode (expensive: each one also pays a full encode).
ENV_CHECK = "REPRO_GNN_CHECK"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")

_incremental: bool = (
    os.environ.get(ENV_INCREMENTAL, "").strip().lower() not in _FALSY
)
_check: bool = os.environ.get(ENV_CHECK, "").strip().lower() in _TRUTHY


def incremental_enabled() -> bool:
    """Whether the incremental encoder is globally enabled (default: yes)."""
    return _incremental


def set_incremental(value: bool) -> bool:
    """Set the global incremental switch; returns the previous value."""
    global _incremental
    previous = _incremental
    _incremental = bool(value)
    return previous


def check_enabled() -> bool:
    """Whether shadow-check mode is on (``REPRO_GNN_CHECK=1``)."""
    return _check


def set_check(value: bool) -> bool:
    """Set shadow-check mode; returns the previous value."""
    global _check
    previous = _check
    _check = bool(value)
    return previous


def assert_embeddings_equal(
    incremental: Tensor, full: Tensor, atol: float = CHECK_ATOL
) -> None:
    """Raise ``RuntimeError`` if the two embedding matrices disagree."""
    if incremental.shape != full.shape:
        raise RuntimeError(
            "incremental EP-GNN drift: embedding shape "
            f"{incremental.shape} != full {full.shape}"
        )
    worst = float(np.abs(incremental.data - full.data).max()) if full.size else 0.0
    if worst > atol:
        raise RuntimeError(
            f"incremental EP-GNN drift beyond {atol:g}: max |Δ|={worst:.3e} — "
            "a dirty-region expansion is missing or a cached row went stale"
        )


def _reverse_csr(graph: MessagePassingGraph) -> Tuple[np.ndarray, np.ndarray]:
    """CSR over "who aggregates me": cell u → cells v with u ∈ N(v).

    Equal to the forward CSR for the default ``bidirectional`` mode, but
    built explicitly so the ``forward``/``backward`` edge-mode ablations
    stay correct.
    """
    src = graph.neighbor_index
    dst = graph._edge_dst()
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=graph.num_nodes)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, dst[order]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Plain-numpy mirror of :meth:`Tensor.sigmoid` (same ±60 clip)."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _segment_sum_sorted(
    values: np.ndarray, counts: np.ndarray, axis: int = 0
) -> np.ndarray:
    """Per-segment sums of ``values`` rows grouped contiguously by ``counts``.

    ``np.add.reduceat`` over the non-empty segment starts — bitwise equal to
    the ``np.add.at`` scatter in :func:`repro.nn.tensor.segment_sum` for
    sorted contiguous segments (both reduce sequentially in row order, and
    ``0 + v`` is exact), but several times faster.  Empty segments get zero
    rows (``reduceat`` would repeat a neighbor's row instead).  ``axis``
    selects the segment axis: the batched encoder reduces ``(B, E, H)``
    edge stacks along ``axis=1``, one independent lane per batch row.
    """
    out_shape = list(values.shape)
    out_shape[axis] = counts.size
    if values.shape[axis] == 0:
        return np.zeros(tuple(out_shape), dtype=values.dtype)
    starts = np.cumsum(counts) - counts
    if counts.all():
        return np.add.reduceat(values, starts, axis=axis)
    nonempty = counts > 0
    sums = np.zeros(tuple(out_shape), dtype=values.dtype)
    index = [slice(None)] * values.ndim
    index[axis] = nonempty
    sums[tuple(index)] = np.add.reduceat(values, starts[nonempty], axis=axis)
    return sums


def _rank1_rows(
    a_static: Tensor,
    m_static: Tensor,
    layer,
    rows: np.ndarray,
    mask_rows: np.ndarray,
    nb_mask_rows: np.ndarray,
) -> Tensor:
    """Fused layer-1 dirty-row update (one tape node).

    Forward: ``σ(γ·(A[rows] + m·W_proj[0]) + (1-γ)·(M[rows] + m̄·W_agg[0]))``
    — the rank-1 masked-column correction on top of the cached static
    affines.  Backward routes gradients into the static caches (whose own
    tape reaches the layer parameters and biases), the two weight matrices'
    row 0 (the mask column's row, the only part the correction touches) and
    the γ logit.
    """
    proj_w, agg_w, gamma_logit = layer.proj.weight, layer.agg.weight, layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    proj_pre = a_static.data[rows] + np.multiply.outer(mask_rows, proj_w.data[0])
    agg_pre = m_static.data[rows] + np.multiply.outer(nb_mask_rows, agg_w.data[0])
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if a_static.requires_grad:
            full = np.zeros_like(a_static.data)
            np.add.at(full, rows, gp)
            a_static._accumulate(full)
        if m_static.requires_grad:
            full = np.zeros_like(m_static.data)
            np.add.at(full, rows, ga)
            m_static._accumulate(full)
        if proj_w.requires_grad:
            full = np.zeros_like(proj_w.data)
            full[0] = mask_rows @ gp
            proj_w._accumulate(full)
        if agg_w.requires_grad:
            full = np.zeros_like(agg_w.data)
            full[0] = nb_mask_rows @ ga
            agg_w._accumulate(full)
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))

    return Tensor._make(
        out_data, (a_static, m_static, proj_w, agg_w, gamma_logit), backward
    )


def _conv_rows(
    prev: Tensor,
    layer,
    rows: np.ndarray,
    mean: np.ndarray,
    mean_backward,
) -> Tensor:
    """Fused Eq.-2 layer evaluated on ``rows`` only (one tape node).

    Forward mirrors :class:`~repro.gnn.epgnn.GraphConvLayer`:
    ``σ(γ·(X[rows]·W_p + b_p) + (1-γ)·(mean·W_a + b_a))`` where ``mean``
    is the per-row neighbor mean computed by the caller (CSR segment sums
    or a dense matrix product, see :meth:`EncoderSession._neighbor_means`).
    Backward hand-writes the matmul chain, accumulating into the
    previous-layer tensor and all five layer parameters;
    ``mean_backward(g, dx)`` adds the mean path's contribution
    ``∂mean/∂X · g`` into ``dx``.
    """
    proj_w, proj_b = layer.proj.weight, layer.proj.bias
    agg_w, agg_b = layer.agg.weight, layer.agg.bias
    gamma_logit = layer.gamma_logit
    g = float(_sigmoid(gamma_logit.data)[0])
    x = prev.data
    x_rows = x[rows]
    proj_pre = x_rows @ proj_w.data + proj_b.data
    agg_pre = mean @ agg_w.data + agg_b.data
    out_data = _sigmoid(g * proj_pre + (1.0 - g) * agg_pre)

    def backward(grad: np.ndarray) -> None:
        d = grad * out_data * (1.0 - out_data)
        gp = g * d
        ga = (1.0 - g) * d
        if proj_w.requires_grad:
            proj_w._accumulate(x_rows.T @ gp)
        if proj_b.requires_grad:
            proj_b._accumulate(gp.sum(axis=0))
        if agg_w.requires_grad:
            agg_w._accumulate(mean.T @ ga)
        if agg_b.requires_grad:
            agg_b._accumulate(ga.sum(axis=0))
        if gamma_logit.requires_grad:
            d_gamma = float((d * (proj_pre - agg_pre)).sum())
            gamma_logit._accumulate(np.array([d_gamma * g * (1.0 - g)]))
        if prev.requires_grad:
            dx = np.zeros_like(x)
            np.add.at(dx, rows, gp @ proj_w.data.T)
            mean_backward(ga @ agg_w.data.T, dx)
            prev._accumulate(dx)

    return Tensor._make(
        out_data,
        (prev, proj_w, proj_b, agg_w, agg_b, gamma_logit),
        backward,
    )


def _pool_fc_rows(
    final: Tensor,
    fc,
    ep_cells: np.ndarray,
    cone_sums: np.ndarray,
    pool_backward,
) -> Tensor:
    """Fused Eq.-3 pooling + FC head for dirty endpoints (one tape node).

    Forward: ``(X[ep] + cone_sums)·W_fc + b_fc`` where ``cone_sums`` holds
    each dirty endpoint's ``Σ_{j∈cone} X[j]`` (caller-computed, same
    summation order as ``EPGNN.endpoint_pool``);
    ``pool_backward(upstream, dx)`` adds the cone path's contribution into
    ``dx``.
    """
    fc_w, fc_b = fc.weight, fc.bias
    x = final.data
    pooled = x[ep_cells] + cone_sums
    out_data = pooled @ fc_w.data + fc_b.data

    def backward(grad: np.ndarray) -> None:
        if fc_w.requires_grad:
            fc_w._accumulate(pooled.T @ grad)
        if fc_b.requires_grad:
            fc_b._accumulate(grad.sum(axis=0))
        if final.requires_grad:
            upstream = grad @ fc_w.data.T
            dx = np.zeros_like(x)
            np.add.at(dx, ep_cells, upstream)
            pool_backward(upstream, dx)
            final._accumulate(dx)

    return Tensor._make(out_data, (final, fc_w, fc_b), backward)


class EncoderSession:
    """Per-``(policy, env)`` incremental EP-GNN encoding state.

    Built once per environment (reverse adjacency, endpoint lookup) and
    reset per episode with :meth:`begin_episode`; :meth:`encode` then
    serves each RL step either incrementally or — on any fallback
    trigger — with a cache-refreshing full encode that is bitwise equal
    to :meth:`EPGNN.forward`.
    """

    def __init__(
        self,
        gnn: EPGNN,
        graph: MessagePassingGraph,
        cones: ConeIndex,
        netlist=None,
    ):
        self.gnn = gnn
        self.graph = graph
        self.cones = cones
        self.netlist = netlist if netlist is not None else cones.netlist
        self._rev_indptr, self._rev_index = _reverse_csr(graph)
        self._inv_degree = 1.0 / np.maximum(graph.degree(), 1).astype(np.float64)
        # Edge → owning-row maps for the mask-select gathers: selecting a
        # CSR's edges through a boolean row-membership mask replaces the
        # whole index arithmetic of a per-row gather with one fancy index
        # (and preserves CSR edge order, so segment sums stay bitwise).
        self._fwd_owner = graph._edge_dst()
        self._fwd_counts = np.diff(graph.indptr)
        self._rev_owner = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64),
            np.diff(self._rev_indptr),
        )
        self._cone_owner = np.repeat(
            np.arange(len(cones.endpoints), dtype=np.int64),
            np.diff(cones.cone_indptr),
        )
        self._cone_counts = np.diff(cones.cone_indptr)
        self._ep_cells = np.asarray(cones.endpoints, dtype=np.int64)
        # Cell → endpoint position (−1 for non-endpoint cells).
        self._ep_pos = np.full(graph.num_nodes, -1, dtype=np.int64)
        self._ep_pos[self._ep_cells] = np.arange(self._ep_cells.size)
        self.begin_episode()

    # ------------------------------------------------------------------ #
    def begin_episode(self) -> None:
        """Drop all per-episode caches (parameters may have changed)."""
        self._layers: Optional[List[Tensor]] = None
        self._emb: Optional[Tensor] = None
        self._prev_mask: Optional[np.ndarray] = None
        self._static: Optional[np.ndarray] = None
        self._statics: Optional[Tuple[Tensor, Tensor]] = None
        self._version: Optional[int] = None

    # ------------------------------------------------------------------ #
    def encode(self, features: np.ndarray) -> Tensor:
        """Endpoint embeddings for the current step (incremental or full)."""
        features = np.asarray(features, dtype=np.float64)
        if not self._cache_valid(features):
            return self._full_encode(features)

        mask = features[:, 0]
        dirty = np.nonzero(mask != self._prev_mask)[0]
        if dirty.size == 0:
            obs.incr("gnn.incremental_encode")
            return self._emb

        # Grow the dirty region one reverse-adjacency hop per layer.
        # Boolean membership masks + frontier-only neighbor selects beat
        # repeated ``np.union1d`` sorts; ``np.nonzero`` keeps the rows
        # sorted exactly as ``union1d`` would, and the masks double as the
        # row-membership selectors for the layer gathers below.
        in_region = np.zeros(self.graph.num_nodes, dtype=bool)
        in_region[dirty] = True
        frontier_mask = in_region.copy()
        regions = [dirty]
        region_masks = [frontier_mask]
        for _ in range(len(self.gnn.layers)):
            neighbors = self._rev_index[frontier_mask[self._rev_owner]]
            fresh_mask = np.zeros_like(in_region)
            fresh_mask[neighbors] = True
            fresh_mask &= ~in_region
            in_region |= fresh_mask
            frontier_mask = fresh_mask
            regions.append(np.nonzero(in_region)[0])
            region_masks.append(in_region.copy())
        if regions[-1].size > FULL_FALLBACK_FRACTION * self.graph.num_nodes:
            return self._full_encode(features)

        with obs.span(
            "gnn.incremental_encode",
            attrs={"dirty": int(dirty.size), "region": int(regions[-1].size)},
        ):
            embeddings = self._incremental_step(
                features, mask, regions, region_masks
            )
        obs.incr("gnn.incremental_encode")
        obs.incr("gnn.dirty_cells", int(regions[-1].size))
        if check_enabled():
            with obs.span("gnn.shadow_check"):
                assert_embeddings_equal(
                    embeddings, self._reference(features), CHECK_ATOL
                )
            obs.incr("gnn.shadow_checks")
        return embeddings

    # ------------------------------------------------------------------ #
    def _cache_valid(self, features: np.ndarray) -> bool:
        if self._layers is None or self._emb is None:
            return False
        version = getattr(self.netlist, "mutation_version", None)
        if version != self._version:
            return False
        if features.shape != (self.graph.num_nodes, self._static.shape[1] + 1):
            return False
        # Stale-state safety net: a static column mutated under us (the
        # analogue of the incremental STA's clock-arrival diff) forces a
        # cache-refreshing full encode rather than a silent stale read.
        return bool(np.array_equal(features[:, 1:], self._static))

    def _full_encode(self, features: np.ndarray) -> Tensor:
        """Full re-encode mirroring :meth:`EPGNN.forward` bitwise; refreshes
        every per-episode cache (including the layer-1 static affines)."""
        gnn = self.gnn
        with obs.span("gnn.full_encode"):
            x = Tensor(features)
            layers: List[Tensor] = []
            for layer in gnn.layers:
                x = layer(x, self.graph)
                layers.append(x)
            pooled = gnn.endpoint_pool(x, self.cones)
            embeddings = gnn.fc(pooled)

            # Episode-constant rank-1 split of layer 1: the static columns'
            # affine images under proj/agg, computed on the tape once.
            static_features = np.array(features, copy=True)
            static_features[:, 0] = 0.0
            first = gnn.layers[0]
            a_static = first.proj(Tensor(static_features))
            m_static = first.agg(
                Tensor(self.graph.mean_aggregate(static_features))
            )

        self._layers = layers
        self._emb = embeddings
        self._prev_mask = np.array(features[:, 0], copy=True)
        self._static = np.array(features[:, 1:], copy=True)
        self._statics = (a_static, m_static)
        self._version = getattr(self.netlist, "mutation_version", None)
        obs.incr("gnn.full_encode")
        return embeddings

    def _neighbor_means(
        self, x: np.ndarray, row_mask: np.ndarray, rows: np.ndarray
    ):
        """Per-row neighbor means of ``x`` at ``rows`` plus the matching
        backward closure ``(g, dx) -> None`` adding ``∂mean/∂x · g`` into
        ``dx``.  Mask-select CSR gather + sorted segment reduce: selecting
        the CSR's edges through the boolean row-membership mask replaces a
        per-row gather's index arithmetic with one fancy index while
        preserving CSR edge order, so segment sums stay bitwise equal."""
        flat = self.graph.neighbor_index[row_mask[self._fwd_owner]]
        counts = self._fwd_counts[rows]
        inv_deg_rows = self._inv_degree[rows]
        mean = _segment_sum_sorted(x[flat], counts)
        mean *= inv_deg_rows[:, None]
        seg = np.repeat(np.arange(rows.size, dtype=np.int64), counts)

        def mean_backward(g: np.ndarray, dx: np.ndarray) -> None:
            d_mean = g * inv_deg_rows[:, None]
            np.add.at(dx, flat, d_mean[seg])

        return mean, mean_backward

    def _cone_sums(self, x: np.ndarray, ep_mask: np.ndarray, eps: np.ndarray):
        """Per-endpoint fan-in-cone sums of ``x`` at endpoint positions
        ``eps`` plus the backward closure, mirroring
        ``EPGNN.endpoint_pool``'s summation order."""
        flat = self.cones.cone_members[ep_mask[self._cone_owner]]
        counts = self._cone_counts[eps]
        sums = _segment_sum_sorted(x[flat], counts)
        seg = np.repeat(np.arange(eps.size, dtype=np.int64), counts)

        def pool_backward(upstream: np.ndarray, dx: np.ndarray) -> None:
            np.add.at(dx, flat, upstream[seg])

        return sums, pool_backward

    def _incremental_step(
        self,
        features: np.ndarray,
        mask: np.ndarray,
        regions: List[np.ndarray],
        region_masks: List[np.ndarray],
    ) -> Tensor:
        gnn = self.gnn
        layers = self._layers
        new_layers: List[Tensor] = []

        # Layer 1: rank-1 masked-column update on rows whose own mask or
        # neighbor-mask mean moved (regions[1] = D ∪ N(D)).  Fused into a
        # single tape node: on small designs the per-op autograd overhead
        # dominates, so each layer's dirty-row update is one custom op.
        first = gnn.layers[0]
        rows1 = regions[1]
        a_static, m_static = self._statics
        nb_mask, _ = self._neighbor_means(mask[:, None], region_masks[1], rows1)
        nb_mask = nb_mask[:, 0]
        fresh = _rank1_rows(a_static, m_static, first, rows1, mask[rows1], nb_mask)
        new_layers.append(scatter_rows(layers[0], rows1, fresh))

        # Layers 2..L: recompute one more adjacency hop per layer, reading
        # neighbors from the already-updated previous-layer tensor.
        for depth, layer in enumerate(gnn.layers[1:], start=1):
            rows = regions[depth + 1]
            prev = new_layers[depth - 1]
            mean, mean_backward = self._neighbor_means(
                prev.data, region_masks[depth + 1], rows
            )
            fresh = _conv_rows(prev, layer, rows, mean, mean_backward)
            new_layers.append(scatter_rows(layers[depth], rows, fresh))

        # Eq.-3 pooling + FC head for the endpoints whose receptive field
        # (own cell or fan-in cone) intersects the final dirty region.
        final_region = regions[-1]
        final = new_layers[-1]
        ep_dirty = np.zeros(self._ep_cells.size, dtype=bool)
        ep_dirty[self.cones.endpoints_touching(final_region)] = True
        own_positions = self._ep_pos[final_region]
        ep_dirty[own_positions[own_positions >= 0]] = True
        dirty_eps = np.nonzero(ep_dirty)[0]
        if dirty_eps.size:
            cone_sums, pool_backward = self._cone_sums(
                final.data, ep_dirty, dirty_eps
            )
            emb_rows = _pool_fc_rows(
                final, gnn.fc, self._ep_cells[dirty_eps], cone_sums, pool_backward
            )
            embeddings = scatter_rows(self._emb, dirty_eps, emb_rows)
        else:
            embeddings = self._emb

        self._layers = new_layers
        self._emb = embeddings
        self._prev_mask = np.array(mask, copy=True)
        return embeddings

    def _reference(self, features: np.ndarray) -> Tensor:
        """From-scratch embeddings for the shadow check (no cache refresh,
        no counters — same expression structure as :meth:`EPGNN.forward`)."""
        gnn = self.gnn
        x = Tensor(np.asarray(features, dtype=np.float64))
        for layer in gnn.layers:
            x = layer(x, self.graph)
        return gnn.fc(gnn.endpoint_pool(x, self.cones)).detach()


__all__ = [
    "CHECK_ATOL",
    "ENV_CHECK",
    "ENV_INCREMENTAL",
    "FULL_FALLBACK_FRACTION",
    "EncoderSession",
    "assert_embeddings_equal",
    "check_enabled",
    "incremental_enabled",
    "set_check",
    "set_incremental",
]
