"""Full-flow optimization — the paper's stated future work (§V).

"In the future, we aim to expand RL-CCD for full-flow optimization."  This
extension chains several optimization *stages* the way a real PD flow does
(placement → CTS-refinement → routing-refinement), where each stage

1. tightens wire parasitics (``parasitic_growth``: extracted parasitics are
   worse than placement-stage estimates, so timing degrades at stage entry),
2. optionally re-runs endpoint prioritization against the *current* timing
   state (the per-stage selector — an RL agent, a baseline heuristic, or
   nothing for the native flow), and
3. runs the CCD placement-optimization recipe of :func:`repro.ccd.flow.run_flow`.

Because each stage's violating-endpoint set differs (earlier fixes hold,
parasitics shift criticality), per-stage re-prioritization is a strictly
richer problem than the single-shot placement-stage selection of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.agent.env import EndpointSelectionEnv
from repro.ccd.flow import FlowConfig, FlowResult, run_flow
from repro.netlist.core import Netlist
from repro.timing.metrics import TimingSummary
from repro.utils.validation import check_non_negative

# A selector receives the stage's selection environment and returns endpoint
# cell indices to prioritize.  ``None`` means the native flow (no selection).
StageSelector = Callable[[EndpointSelectionEnv], List[int]]


@dataclass(frozen=True)
class FullFlowStage:
    """One stage of the multi-stage flow."""

    name: str
    flow: FlowConfig
    parasitic_growth: float = 0.0  # relative wire-parasitic increase at entry
    rho: float = 0.3  # overlap threshold for this stage's selection env

    def __post_init__(self) -> None:
        check_non_negative("parasitic_growth", self.parasitic_growth)


@dataclass
class FullFlowResult:
    """Per-stage results plus the final state."""

    stages: List[str]
    stage_results: List[FlowResult]
    stage_selections: List[List[int]]

    @property
    def final(self) -> TimingSummary:
        return self.stage_results[-1].final

    @property
    def begin(self) -> TimingSummary:
        return self.stage_results[0].begin

    def selection_counts(self) -> List[int]:
        return [len(s) for s in self.stage_selections]


def default_stages(clock_period: float) -> List[FullFlowStage]:
    """A representative three-stage recipe.

    Placement-stage optimization (the paper's setting), a CTS-refinement
    stage with +15% parasitics, and a routing-refinement stage with a
    further +10% — magnitudes in line with typical estimate-to-extraction
    gaps.
    """
    return [
        FullFlowStage("placement", FlowConfig(clock_period=clock_period)),
        FullFlowStage(
            "cts_refine", FlowConfig(clock_period=clock_period), parasitic_growth=0.15
        ),
        FullFlowStage(
            "route_refine", FlowConfig(clock_period=clock_period), parasitic_growth=0.10
        ),
    ]


def run_full_flow(
    netlist: Netlist,
    stages: Sequence[FullFlowStage],
    selector: Optional[StageSelector] = None,
) -> FullFlowResult:
    """Run the multi-stage flow; mutates the netlist and parasitic scale.

    With ``selector=None`` every stage runs the native (unprioritized)
    recipe; otherwise the selector is consulted at each stage whose timing
    state still has violating endpoints.
    """
    if not stages:
        raise ValueError("run_full_flow needs at least one stage")
    names: List[str] = []
    results: List[FlowResult] = []
    selections: List[List[int]] = []
    for stage in stages:
        netlist.parasitic_scale *= 1.0 + stage.parasitic_growth
        selection: List[int] = []
        if selector is not None:
            try:
                env = EndpointSelectionEnv(
                    netlist, stage.flow.clock_period, rho=stage.rho
                )
            except ValueError:
                env = None  # nothing violating at this stage: nothing to select
            if env is not None:
                selection = list(selector(env))
        result = run_flow(netlist, stage.flow, prioritized_endpoints=selection)
        names.append(stage.name)
        results.append(result)
        selections.append(selection)
    return FullFlowResult(
        stages=names, stage_results=results, stage_selections=selections
    )
