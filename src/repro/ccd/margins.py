"""Endpoint margin management (Algorithm 1 lines 14 and 16).

RL-CCD steers the useful-skew engine by *worsening the apparent timing of
the selected endpoints to the design WNS*: each selected endpoint gets a
margin equal to its distance above WNS, making it look exactly as bad as the
worst endpoint.  The priority-driven skew engine then "over-fixes" them.
Margins are a pure view (see :class:`repro.timing.sta.TimingReport`); they
are removed before the remaining placement optimization and never affect
reported metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


from repro.timing.metrics import wns
from repro.timing.sta import TimingReport


def margins_to_wns(
    report: TimingReport, selected_endpoints: Iterable[int]
) -> Dict[int, float]:
    """Margins that worsen each selected endpoint's slack to the design WNS.

    ``margin(e) = slack(e) − WNS ≥ 0`` so that the apparent slack
    ``slack(e) − margin(e)`` equals WNS exactly.  Endpoints already at WNS
    get margin 0 (they are already maximally prioritized).
    """
    design_wns = wns(report.slack)
    slack_by_cell = {int(e): float(s) for e, s in zip(report.endpoints, report.slack)}
    margins: Dict[int, float] = {}
    for endpoint in selected_endpoints:
        endpoint = int(endpoint)
        if endpoint not in slack_by_cell:
            raise KeyError(f"cell {endpoint} is not an endpoint")
        margins[endpoint] = max(0.0, slack_by_cell[endpoint] - design_wns)
    return margins


def margins_by_amount(
    selected_endpoints: Iterable[int], amount: float
) -> Dict[int, float]:
    """Uniform margin of ``amount`` ns on each selected endpoint.

    Negative ``amount`` implements the paper's rejected "under-fix"
    alternative (§III-A: "another route may also work (i.e., useful skew
    under-fix), however, we empirically observe that the proposed method
    works significantly better") — kept for the A1 ablation bench.
    """
    return {int(e): float(amount) for e in selected_endpoints}


def remove_margins(margins: Mapping[int, float]) -> Dict[int, float]:
    """Algorithm 1 line 16: margins after removal (the empty mapping).

    Exists for flow readability and to assert the contract in tests: timing
    analyzed with ``remove_margins(m)`` equals timing analyzed with no
    margins at all.
    """
    return {}
