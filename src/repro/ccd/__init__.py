"""Concurrent Clock and Data optimization engine.

The substrate standing in for a commercial placement optimizer: endpoint
margins (:mod:`~repro.ccd.margins`), the useful-skew engine
(:mod:`~repro.ccd.useful_skew`), the budgeted data-path optimizer
(:mod:`~repro.ccd.datapath_opt`) and the end-to-end placement flow
(:mod:`~repro.ccd.flow`).
"""

from repro.ccd.datapath_opt import DatapathConfig, DatapathResult, optimize_datapath
from repro.ccd.flow import (
    FlowConfig,
    FlowResult,
    NetlistState,
    restore_netlist_state,
    run_flow,
    snapshot_netlist_state,
)
from repro.ccd.fullflow import (
    FullFlowResult,
    FullFlowStage,
    default_stages,
    run_full_flow,
)
from repro.ccd.margins import margins_by_amount, margins_to_wns, remove_margins
from repro.ccd.useful_skew import (
    UsefulSkewConfig,
    UsefulSkewResult,
    optimize_useful_skew,
)

__all__ = [
    "FullFlowStage",
    "FullFlowResult",
    "default_stages",
    "run_full_flow",
    "FlowConfig",
    "FlowResult",
    "run_flow",
    "NetlistState",
    "snapshot_netlist_state",
    "restore_netlist_state",
    "margins_to_wns",
    "margins_by_amount",
    "remove_margins",
    "UsefulSkewConfig",
    "UsefulSkewResult",
    "optimize_useful_skew",
    "DatapathConfig",
    "DatapathResult",
    "optimize_datapath",
]
