"""Priority-driven sequential useful-skew engine (clock-path optimization).

Models the clock-path half of commercial CCD the way production engines
behave: endpoints are processed **sequentially in (margin-aware) criticality
order**, each adjustment is a *slack-balancing trade*, and committed flops
are locked for the remainder of the run.

For an endpoint captured at flop *f*, delaying *f*'s clock by δ adds δ of
slack to the endpoint but removes δ from every path *launched* from *f*.
The engine moves toward the **balance point** of the two sides, in the
margin-aware slack view::

    δ = min( capture deficit,                      # don't fix past target
             ½ · (launch slack − capture slack),   # stop at the balance point
             remaining physical bound )            # clock-tree flexibility

Crucially this is a trade, not a free lunch: when the capture side looks
much worse than the launch side, the engine willingly pushes launch-side
paths *toward or below zero* — slack is stolen from other endpoints.  A
symmetric recovery phase pulls flops earlier when their launch side is the
worse one.  Because each flop is adjusted once and locked (like a committed
clock-tree edit), **processing order determines who wins contended slack** —
which is precisely the lever endpoint prioritization operates.

Margins are that lever (Algorithm 1 line 14): an endpoint margined to WNS
is (a) processed first, (b) balanced as if it were critically violating, so
its *true* slack is pushed far positive — the "over-fix" — and (c) flops
launching into it see a terrible margin-aware launch side, so no later
adjustment steals its data-path slack back.  Whether a given over-fix helps
or hurts the final TNS depends on which endpoints absorb the stolen slack
and on what the (budgeted) data-path optimizer can subsequently repair —
the global, design-dependent structure the RL agent learns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

import numpy as np

from repro import obs
from repro.timing.clock import ClockModel
from repro.timing.sta import TimingAnalyzer
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class UsefulSkewConfig:
    """Engine knobs; defaults tuned for the benchmark designs."""

    passes: int = 3  # sequential sweeps over not-yet-committed flops
    reanalyze_every: int = 12  # commits between STA refreshes within a sweep
    enable_recovery: bool = True  # launch-deficit recovery phase
    # Attention window: per pass the engine only *processes* the worst
    # ``attention_fraction`` of currently violating endpoints (at least
    # ``min_attention``).  Production skew engines are runtime-bounded in
    # exactly this worst-first way — and this cap is what endpoint margining
    # exploits: an endpoint worsened to WNS jumps to the head of the window
    # and is guaranteed clock-path attention it would otherwise never get.
    attention_fraction: float = 0.25
    min_attention: int = 8
    # "conservative": never push the (margin-aware) launch side below zero —
    #   the safety rail of production engines; margins are then the only way
    #   to make the engine fix an endpoint past its true need.
    # "balance": classical slack balancing — move to the midpoint of the two
    #   sides even if the donor goes negative (kept for the engine ablation).
    mode: str = "conservative"
    # Hold safety: when True the capture phase also runs min-delay analysis
    # and never delays a flop's clock past its hold slack (delaying capture
    # erodes hold one-for-one).  Off by default: the placement-stage flows
    # of the paper's experiments fix hold later in the flow, as real tools
    # do; the hold-aware variant exists for the full-flow extension.
    respect_hold: bool = False
    epsilon: float = 1e-9

    def __post_init__(self) -> None:
        check_positive("passes", self.passes)
        check_positive("reanalyze_every", self.reanalyze_every)
        if self.mode not in ("conservative", "balance"):
            raise ValueError(
                f"mode must be 'conservative' or 'balance', got {self.mode!r}"
            )
        if not 0.0 < self.attention_fraction <= 1.0:
            raise ValueError(
                f"attention_fraction must be in (0, 1], got {self.attention_fraction}"
            )
        if self.min_attention < 1:
            raise ValueError("min_attention must be at least 1")


@dataclass
class UsefulSkewResult:
    """What the engine did."""

    commits: int = 0
    recovery_commits: int = 0
    passes_run: int = 0
    total_adjustment: float = 0.0


def optimize_useful_skew(
    analyzer: TimingAnalyzer,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
    config: UsefulSkewConfig = UsefulSkewConfig(),
) -> UsefulSkewResult:
    """Sequential priority skew optimization; mutates ``clock`` in place."""
    with obs.span("ccd.useful_skew"):
        result = _optimize_useful_skew(analyzer, clock, margins, config)
    obs.incr("skew.commits", result.commits)
    obs.incr("skew.recovery_commits", result.recovery_commits)
    obs.incr("skew.passes", result.passes_run)
    return result


def _optimize_useful_skew(
    analyzer: TimingAnalyzer,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]],
    config: UsefulSkewConfig,
) -> UsefulSkewResult:
    result = UsefulSkewResult()
    committed: Set[int] = set()
    eps = config.epsilon

    def apparent_map(report) -> Dict[int, float]:
        return {
            int(e): float(s)
            for e, s in zip(report.endpoints, report.slack_with_margins)
        }

    for _pass in range(config.passes):
        report = analyzer.analyze(clock, margins, include_hold=config.respect_hold)
        apparent = apparent_map(report)
        hold_by_cell: Dict[int, float] = {}
        if config.respect_hold and report.hold_slack is not None:
            hold_by_cell = {
                int(e): float(h)
                for e, h in zip(report.endpoints, report.hold_slack)
            }
        progressed = False
        result.passes_run += 1

        # ---- capture phase: worst apparent endpoints first ------------ #
        violating = sorted(
            (e for e, s in apparent.items() if s < -eps), key=lambda e: apparent[e]
        )
        window = max(
            config.min_attention,
            int(round(config.attention_fraction * len(violating))),
        )
        worklist = violating[:window]
        commits_since_sta = 0
        for endpoint in worklist:
            flop = endpoint
            if flop in committed:
                continue
            cap_slack = apparent.get(endpoint)
            if cap_slack is None or cap_slack >= -eps:
                continue  # fixed meanwhile by an upstream commit
            bound_left = clock.bound(flop) - clock.arrival(flop)
            if bound_left <= eps:
                continue  # output port, rigid flop, or bound used up
            launch = float(report.cell_worst_slack_margined[flop])
            if config.mode == "conservative":
                room = max(0.0, launch) if np.isfinite(launch) else np.inf
            else:
                room = 0.5 * (launch - cap_slack) if np.isfinite(launch) else np.inf
            delta = min(-cap_slack, room, bound_left)
            if config.respect_hold:
                hold_room = hold_by_cell.get(flop, np.inf)
                delta = min(delta, max(0.0, hold_room))
            if delta <= eps:
                continue
            clock.adjust_arrival(flop, delta)
            analyzer.notify_skew((flop,))
            committed.add(flop)
            result.commits += 1
            progressed = True
            commits_since_sta += 1
            if commits_since_sta >= config.reanalyze_every:
                report = analyzer.analyze(clock, margins)
                apparent = apparent_map(report)
                commits_since_sta = 0

        # ---- recovery phase: launch side worse than capture side ------ #
        if config.enable_recovery:
            report = analyzer.analyze(clock, margins)
            apparent = apparent_map(report)
            flop_launch = [
                (float(report.cell_worst_slack_margined[f]), f)
                for f in analyzer.netlist.sequential_cells()
                if f not in committed
            ]
            flop_launch = sorted(flop_launch)[:window]
            for launch, flop in flop_launch:
                if not np.isfinite(launch) or launch >= -eps:
                    continue
                cap_slack = apparent.get(flop, np.inf)
                if config.mode == "conservative":
                    room = max(0.0, cap_slack) if np.isfinite(cap_slack) else np.inf
                else:
                    room = (
                        0.5 * (cap_slack - launch)
                        if np.isfinite(cap_slack)
                        else np.inf
                    )
                bound_left = clock.bound(flop) + clock.arrival(flop)
                delta = min(-launch, room, bound_left)
                if delta <= eps:
                    continue
                clock.adjust_arrival(flop, -delta)
                analyzer.notify_skew((flop,))
                committed.add(flop)
                result.recovery_commits += 1
                progressed = True

        if not progressed:
            break

    result.total_adjustment = clock.total_adjustment()
    return result
