"""Budgeted data-path optimization (delay fixing).

Models the logic-optimization half of commercial CCD: greedy, effort-bounded
moves on the most critical paths —

* **gate sizing** — upsize the path cell with the largest estimated delay
  gain (drive-resistance drop × load, discounted by the input-cap increase
  reflected onto the upstream net);
* **fanout buffering** — split high-fanout nets on critical paths, moving
  the farthest sinks behind a fresh buffer.

The engine's *effort budget* is the crucial realism: commercial optimizers
spend bounded effort ordered by (margin-aware) endpoint criticality, so
effort wasted on endpoints that useful skew could have fixed is effort other
endpoints never receive.  That coupling is what makes endpoint
prioritization globally consequential — the paper's core observation.

Every move is a real netlist mutation re-verified by full STA; moves that
fail to improve (margin-aware) TNS are rolled back and charged a small
probe cost, mimicking the trial-based inner loops of production optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro import obs
from repro.netlist.core import Netlist
from repro.timing.clock import ClockModel
from repro.timing.metrics import tns
from repro.timing.paths import trace_critical_path
from repro.timing.sta import TimingAnalyzer
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DatapathConfig:
    """Effort model for the data-path optimizer.

    ``effort_per_violation`` × (initial violating endpoints) bounds the total
    number of moves, clamped to [``min_moves``, ``max_moves``]; endpoints are
    served worst-apparent-slack first, ``endpoints_per_round`` per STA round.
    """

    effort_per_violation: float = 2.0
    min_moves: int = 16
    max_moves: int = 600
    endpoints_per_round: int = 8
    max_rounds: int = 60
    buffer_fanout_threshold: int = 6
    failed_move_cost: float = 0.25  # probe cost charged for rolled-back moves

    def __post_init__(self) -> None:
        check_positive("effort_per_violation", self.effort_per_violation)
        check_positive("endpoints_per_round", self.endpoints_per_round)
        check_positive("max_rounds", self.max_rounds)
        if self.min_moves < 0 or self.max_moves < self.min_moves:
            raise ValueError("need 0 <= min_moves <= max_moves")


@dataclass
class DatapathResult:
    """Move accounting for one optimization run."""

    sizing_moves: int = 0
    buffer_moves: int = 0
    rolled_back: int = 0
    rounds: int = 0
    budget_spent: float = 0.0

    @property
    def total_moves(self) -> int:
        return self.sizing_moves + self.buffer_moves


def optimize_datapath(
    analyzer: TimingAnalyzer,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]] = None,
    config: DatapathConfig = DatapathConfig(),
) -> DatapathResult:
    """Run budgeted greedy delay fixing; mutates the netlist in place."""
    with obs.span("ccd.datapath"):
        result = _optimize_datapath(analyzer, clock, margins, config)
    obs.incr("datapath.sizing_moves", result.sizing_moves)
    obs.incr("datapath.buffer_moves", result.buffer_moves)
    obs.incr("datapath.rolled_back", result.rolled_back)
    return result


def _optimize_datapath(
    analyzer: TimingAnalyzer,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]],
    config: DatapathConfig,
) -> DatapathResult:
    result = DatapathResult()

    report = analyzer.analyze(clock, margins)
    apparent = report.slack_with_margins
    initial_violations = int((apparent < 0).sum())
    if initial_violations == 0:
        return result
    budget = float(
        np.clip(
            config.effort_per_violation * initial_violations,
            config.min_moves,
            config.max_moves,
        )
    )

    for _round in range(config.max_rounds):
        if budget <= 0:
            break
        apparent = report.slack_with_margins
        violating = report.endpoints[apparent < 0]
        if violating.size == 0:
            break
        order = np.argsort(apparent[apparent < 0])
        targets = violating[order][: config.endpoints_per_round]
        result.rounds += 1
        any_move = False
        for endpoint in targets:
            if budget <= 0:
                break
            # Within a round, criticality is served from the round-start
            # report — the batched behaviour of commercial optimizers — but
            # each move is verified against the freshest timing state.
            moved, cost, report = _fix_endpoint(
                analyzer, clock, margins, int(endpoint), config, report, result
            )
            budget -= cost
            result.budget_spent += cost
            any_move = any_move or moved
        if not any_move:
            break
    return result


def _fix_endpoint(
    analyzer: TimingAnalyzer,
    clock: ClockModel,
    margins: Optional[Mapping[int, float]],
    endpoint: int,
    config: DatapathConfig,
    report,
    result: DatapathResult,
):
    """Try the best single move for one endpoint.

    Returns ``(moved, cost, freshest_report)`` so the caller never pays for
    a redundant STA run.
    """
    netlist = analyzer.netlist
    before_tns = tns(report.slack_with_margins)
    path = trace_critical_path(analyzer.compiled, report, endpoint)

    # Candidate 1: sizing — pick the path cell with the best estimated gain.
    best_cell = None
    best_gain = 0.0
    for cell_index in path.cells:
        cell = netlist.cells[cell_index]
        if cell.cell_type.is_port or cell.sizing_headroom <= 0:
            continue
        gain = _sizing_gain(netlist, cell_index)
        if gain > best_gain:
            best_gain = gain
            best_cell = cell_index

    # Candidate 2: buffering — split the highest-fanout net on the path.
    best_net = None
    best_fanout = config.buffer_fanout_threshold
    for cell_index in path.cells:
        net_index = netlist.cells[cell_index].fanout_net
        if net_index is None:
            continue
        fanout = netlist.nets[net_index].fanout
        if fanout > best_fanout:
            best_fanout = fanout
            best_net = net_index

    # Probe moves are the incremental-STA fast path: notify_resize marks the
    # handful of re-coefficiented cells dirty and the next analyze()
    # re-propagates only their cones — including the immediate roll-back
    # resize below, which dirties the same cells right back.  Structural
    # buffer splits instead invalidate() for a full recompute (fallback
    # rules in docs/timing.md).
    if best_cell is not None:
        previous = netlist.resize_cell(best_cell, netlist.cells[best_cell].size_index + 1)
        analyzer.notify_resize(best_cell)
        fresh = analyzer.analyze(clock, margins)
        if tns(fresh.slack_with_margins) < before_tns - 1e-12:
            netlist.resize_cell(best_cell, previous)
            analyzer.notify_resize(best_cell)
            result.rolled_back += 1
            # After the rollback the pre-move report is valid again.
            return (False, config.failed_move_cost, report)
        result.sizing_moves += 1
        return (True, 1.0, fresh)

    if best_net is not None:
        _split_net(netlist, best_net, keep_on_path=set(path.cells))
        analyzer.invalidate()
        fresh = analyzer.analyze(clock, margins)
        if tns(fresh.slack_with_margins) < before_tns - 1e-12:
            # Buffer insertion is not rolled back (removal is not a move real
            # tools make cheaply either); charge it as a failed probe.
            result.rolled_back += 1
            result.buffer_moves += 1
            return (True, 1.0 + config.failed_move_cost, fresh)
        result.buffer_moves += 1
        return (True, 1.0, fresh)

    return (False, config.failed_move_cost, report)


def _sizing_gain(netlist: Netlist, cell_index: int) -> float:
    """Estimated delay gain of one upsize step on ``cell_index``.

    Gain = drive-resistance reduction × driven load, minus the penalty of
    presenting a larger input capacitance to the upstream drivers.
    """
    cell = netlist.cells[cell_index]
    current = cell.size
    upsized = cell.cell_type.size(cell.size_index + 1)
    load = 0.0
    if cell.fanout_net is not None:
        load = netlist.net_load_cap(cell.fanout_net)
    gain = (current.drive_resistance - upsized.drive_resistance) * load
    gain += current.intrinsic_delay - upsized.intrinsic_delay
    # Larger input pins slow every upstream driver (drive delay) and degrade
    # the driver's output slew, which feeds back into this cell's own delay
    # and its siblings' — count both first-order terms.
    cap_increase = upsized.input_cap - current.input_cap
    for driver in netlist.fanin_cells(cell_index):
        driver_size = netlist.cells[driver].size
        gain -= driver_size.drive_resistance * cap_increase
        gain -= (
            driver_size.slew_load_factor * cap_increase * current.slew_sensitivity
        )
    return gain


def _split_net(netlist: Netlist, net_index: int, keep_on_path: set) -> None:
    """Buffer the off-path, farthest-from-driver half of a net's sinks."""
    net = netlist.nets[net_index]
    driver = netlist.cells[net.driver]
    off_path = [
        (cell, pin)
        for cell, pin in net.sinks
        if cell not in keep_on_path
    ]
    if len(off_path) < 2:
        # Nothing sensible to split off; buffer the farthest half of all
        # sinks except one (a net must keep at least one direct sink).
        candidates = sorted(
            net.sinks,
            key=lambda s: abs(netlist.cells[s[0]].x - driver.x)
            + abs(netlist.cells[s[0]].y - driver.y),
        )
        off_path = candidates[len(candidates) // 2 :]
        if len(off_path) >= len(net.sinks):
            off_path = off_path[1:]
    if not off_path:
        return
    netlist.insert_buffer(net_index, off_path, size_index=2)
