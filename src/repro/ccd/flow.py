"""Placement-stage optimization flow (paper Fig. 1 and Fig. 2).

Both flows run the *same* optimization steps on a globally placed netlist —
the only difference is the endpoint-prioritization front end:

``default flow``
    useful skew  →  data-path optimization  →  final useful-skew cleanup

``RL-enhanced flow``
    margins on the agent-selected endpoints (worsened to WNS)
    →  useful skew (over-fixes the margined endpoints)
    →  **margins removed**
    →  data-path optimization  →  final useful-skew cleanup

matching the paper's constraint that "the total optimization steps between
the left flow (default) and the right flow (ours) are exactly the same" and
that margins are removed after the useful-skew step (Algorithm 1 line 16).

:func:`run_flow` deep-copies nothing: it *mutates* the provided netlist and
returns the final clock; callers that need repeated runs from the same
starting point (every RL episode!) snapshot state with
:func:`snapshot_netlist_state` / :func:`restore_netlist_state`, which is two
orders of magnitude cheaper than re-generating or deep-copying the design.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.ccd.datapath_opt import DatapathConfig, DatapathResult, optimize_datapath
from repro.ccd.margins import margins_by_amount, margins_to_wns, remove_margins
from repro.ccd.useful_skew import UsefulSkewConfig, UsefulSkewResult, optimize_useful_skew
from repro.netlist.core import Netlist
from repro.power.models import PowerReport, report_power
from repro.timing.clock import ClockModel
from repro.timing.metrics import TimingSummary, summarize
from repro.timing.sta import TimingAnalyzer, TimingReport


@dataclass(frozen=True)
class FlowConfig:
    """One placement-optimization recipe, shared by both flows."""

    clock_period: float
    skew: UsefulSkewConfig = UsefulSkewConfig()
    datapath: DatapathConfig = DatapathConfig()
    final_skew_pass: bool = True
    # Margin mode for the prioritized endpoints: "wns" (paper default:
    # worsen to design WNS → over-fix) or a float (uniform margin; negative
    # reproduces the rejected "under-fix" variant for the A1 ablation).
    margin_mode: object = "wns"
    # Incremental STA: None follows the REPRO_STA_INCREMENTAL global
    # (default on); True/False forces it per run — the lever the
    # incremental-vs-full equivalence tests and bench comparison use.
    incremental_sta: Optional[bool] = None


@dataclass
class FlowResult:
    """Everything Table II and the figures need from one flow run."""

    begin: TimingSummary
    final: TimingSummary
    begin_power: PowerReport
    final_power: PowerReport
    clock: ClockModel
    report: TimingReport
    prioritized: List[int]
    skew_result: UsefulSkewResult
    datapath_result: DatapathResult
    runtime_seconds: float
    arrival_adjustments: Dict[int, float] = field(default_factory=dict)

    @property
    def tns(self) -> float:
        return self.final.tns

    @property
    def wns(self) -> float:
        return self.final.wns

    @property
    def nve(self) -> int:
        return self.final.nve


def _sta_flow_stats(counters_before: Mapping[str, float]) -> Dict[str, float]:
    """Per-flow delta of the ``sta.*`` counters plus the frontier-peak gauge.

    The recorder's counters are process-cumulative; the flow record wants
    how much *this* run cost, so subtract the values captured at entry.
    The gauge is a running max, reported as-is.
    """
    recorder = obs.get_recorder()
    stats = {
        name.split(".", 1)[1]: recorder.counters.get(name, 0.0) - before
        for name, before in counters_before.items()
    }
    stats["frontier_peak"] = recorder.gauges.get("sta.frontier_peak", 0.0)
    return stats


def run_flow(
    netlist: Netlist,
    config: FlowConfig,
    prioritized_endpoints: Iterable[int] = (),
) -> FlowResult:
    """Run the placement-stage CCD flow; see module docstring.

    With an empty ``prioritized_endpoints`` this is the *default tool flow*;
    with an agent/baseline selection it is the *RL-enhanced flow*.
    """
    watch = obs.Stopwatch()
    prioritized = [int(e) for e in prioritized_endpoints]
    sta_counters = (
        "sta.full_analyze",
        "sta.incremental_analyze",
        "sta.frontier_cells",
        "sta.vectorized_levels",
        "sta.scalar_levels",
    )
    counters_before = {
        name: obs.get_recorder().counters.get(name, 0.0) for name in sta_counters
    }
    with obs.span("flow.run", attrs={"prioritized": len(prioritized)}):
        analyzer = TimingAnalyzer(netlist, incremental=config.incremental_sta)
        clock = ClockModel.for_netlist(netlist, config.clock_period)

        with obs.span("flow.begin_sta") as sp_begin:
            begin_report = analyzer.analyze(clock)
            begin_summary = summarize(begin_report)
            begin_power = report_power(netlist, clock)

        # --- endpoint prioritization via margins (RL flow only) ------- #
        margins: Mapping[int, float] = {}
        if prioritized:
            if config.margin_mode == "wns":
                margins = margins_to_wns(begin_report, prioritized)
            else:
                margins = margins_by_amount(prioritized, float(config.margin_mode))
            # Margins are a view: analyze() diffs them itself, nothing to
            # dirty (see TimingAnalyzer.notify_margins).
            analyzer.notify_margins()

        # --- clock-path optimization: useful skew --------------------- #
        with obs.span("flow.skew") as sp_skew:
            skew_result = optimize_useful_skew(analyzer, clock, margins, config.skew)

        # --- margins removed (Algorithm 1 line 16) -------------------- #
        margins = remove_margins(margins)
        analyzer.notify_margins()

        # --- remaining placement optimization: data-path fixing ------- #
        with obs.span("flow.datapath") as sp_datapath:
            datapath_result = optimize_datapath(
                analyzer, clock, margins, config.datapath
            )

        # --- final skew cleanup (CCD interleaving continues in tail) -- #
        with obs.span("flow.final_skew") as sp_final_skew:
            if config.final_skew_pass:
                optimize_useful_skew(analyzer, clock, margins, config.skew)

        with obs.span("flow.final_sta") as sp_final:
            final_report = analyzer.analyze(clock)
            final_summary = summarize(final_report)
            final_power = report_power(netlist, clock)
    runtime = watch.elapsed
    obs.gauge("flow.endpoints", begin_summary.num_endpoints)

    if obs.records_active():
        obs.emit(
            "flow",
            {
                "endpoints": begin_summary.num_endpoints,
                "prioritized": len(prioritized),
                "begin_tns": begin_summary.tns,
                "begin_wns": begin_summary.wns,
                "final_tns": final_summary.tns,
                "final_wns": final_summary.wns,
                "final_nve": final_summary.nve,
                "skew_commits": skew_result.commits,
                "datapath_moves": datapath_result.total_moves,
                "phases": {
                    "begin_sta": sp_begin.elapsed,
                    "skew": sp_skew.elapsed,
                    "datapath": sp_datapath.elapsed,
                    "final_skew": sp_final_skew.elapsed,
                    "final_sta": sp_final.elapsed,
                },
                "runtime_seconds": runtime,
                "sta": _sta_flow_stats(counters_before),
            },
        )

    return FlowResult(
        begin=begin_summary,
        final=final_summary,
        begin_power=begin_power,
        final_power=final_power,
        clock=clock,
        report=final_report,
        prioritized=prioritized,
        skew_result=skew_result,
        datapath_result=datapath_result,
        runtime_seconds=runtime,
        arrival_adjustments=dict(clock.adjustments()),
    )


# ---------------------------------------------------------------------- #
# Netlist state snapshots: each RL episode replays the flow from the same
# post-global-placement state.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class NetlistState:
    """Reversible snapshot of flow-mutable netlist state.

    When observability verify mode is on (``REPRO_OBS_VERIFY=1``) and the
    snapshot was taken with a ``verify_clock_period``, the snapshot also
    pins the begin timing summary; every restore then re-runs STA and
    asserts the summary came back **bit-for-bit**, so silent snapshot drift
    surfaces as a hard error in CI instead of a bogus RL reward.
    """

    num_cells: int
    num_nets: int
    size_indices: Tuple[int, ...]
    net_sinks: Tuple[Tuple[Tuple[int, int], ...], ...]
    cell_fanins: Tuple[Tuple[Optional[int], ...], ...]
    cell_fanouts: Tuple[Optional[int], ...]
    parasitic_scale: float = 1.0
    verify_clock_period: Optional[float] = None
    verify_summary: Optional[TimingSummary] = None


def _fresh_summary(netlist: Netlist, clock_period: float) -> TimingSummary:
    """Begin-state summary from a fresh analyzer (deterministic)."""
    analyzer = TimingAnalyzer(netlist)
    clock = ClockModel.for_netlist(netlist, clock_period)
    return summarize(analyzer.analyze(clock))


def flow_config_digest(config: FlowConfig) -> str:
    """Stable content digest of one flow recipe (reward-cache key half).

    Built from the ``repr`` of every reward-affecting field — the nested
    configs are frozen dataclasses whose reprs are deterministic — so two
    configs digest equal iff they run the same optimization.
    """
    payload = repr(
        (
            config.clock_period,
            config.skew,
            config.datapath,
            config.final_skew_pass,
            config.margin_mode,
            config.incremental_sta,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def netlist_state_digest(state: NetlistState) -> str:
    """Stable content digest of a snapshot's *structural* fields.

    The verify-mode fields are excluded: they change with observability
    settings, not with the design, and the digest addresses design content
    (the reward-cache key's other half).
    """
    payload = repr(
        (
            state.num_cells,
            state.num_nets,
            state.size_indices,
            state.net_sinks,
            state.cell_fanins,
            state.cell_fanouts,
            state.parasitic_scale,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def snapshot_netlist_state(
    netlist: Netlist, verify_clock_period: Optional[float] = None
) -> NetlistState:
    """Capture sizes and connectivity before a flow run.

    ``verify_clock_period`` arms the verify-mode integrity check (see
    :class:`NetlistState`); it costs one extra STA run per snapshot and per
    restore, so it is only honoured when verify mode is enabled.
    """
    verify_summary = None
    if verify_clock_period is not None and obs.verify_enabled():
        verify_summary = _fresh_summary(netlist, verify_clock_period)
    else:
        verify_clock_period = None
    return NetlistState(
        num_cells=netlist.num_cells,
        num_nets=netlist.num_nets,
        size_indices=tuple(c.size_index for c in netlist.cells),
        net_sinks=tuple(tuple(net.sinks) for net in netlist.nets),
        cell_fanins=tuple(tuple(c.fanin_nets) for c in netlist.cells),
        cell_fanouts=tuple(c.fanout_net for c in netlist.cells),
        parasitic_scale=netlist.parasitic_scale,
        verify_clock_period=verify_clock_period,
        verify_summary=verify_summary,
    )


def restore_netlist_state(netlist: Netlist, state: NetlistState) -> None:
    """Undo flow mutations: drop inserted buffers, restore sizes and wiring."""
    # Remove cells/nets appended after the snapshot (buffer insertions only
    # ever append, never reorder).
    del netlist.cells[state.num_cells :]
    for name in [c for c in netlist._name_to_cell if netlist._name_to_cell[c] >= state.num_cells]:
        del netlist._name_to_cell[name]
    del netlist.nets[state.num_nets :]
    for cell, size_index in zip(netlist.cells, state.size_indices):
        cell.size_index = size_index
    for cell, fanins, fanout in zip(netlist.cells, state.cell_fanins, state.cell_fanouts):
        cell.fanin_nets = list(fanins)
        cell.fanout_net = fanout
    for net, sinks in zip(netlist.nets, state.net_sinks):
        net.sinks = list(sinks)
    netlist.parasitic_scale = state.parasitic_scale
    # A restore is itself a (bulk) mutation: bump the version so any
    # TimingAnalyzer that lived through the episode recompiles instead of
    # trusting caches patched by mid-episode notify_resize() calls.
    netlist.mutation_version += 1

    if state.verify_summary is not None and obs.verify_enabled():
        assert state.verify_clock_period is not None
        roundtrip = _fresh_summary(netlist, state.verify_clock_period)
        if roundtrip != state.verify_summary:
            raise RuntimeError(
                "netlist snapshot drift: timing after restore_netlist_state "
                f"differs from the pre-run summary — expected "
                f"{state.verify_summary}, got {roundtrip}"
            )
        obs.incr("flow.verified_restores")
