"""Synthetic global placement.

RL-CCD operates on a *globally placed* netlist (Fig. 1: the flows start from
"global placement"); locations feed the Table-I features and the wire
cap/delay model.  This placer is intentionally simple but structured:

1. clusters are assigned non-overlapping regions on a near-square grid of a
   die sized to the design's cell count at a target utilization;
2. cells scatter inside their cluster region;
3. a few sweeps of constrained centroid refinement pull each movable cell
   toward the mean location of its neighbors (a one-matrix-multiply version
   of force-directed placement), clamped to its cluster region.

Ports sit on the die boundary — inputs on the west edge, outputs on the
east — as a real floorplan would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.netlist.core import Netlist
from repro.netlist.transform import to_message_passing_graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PlacementConfig:
    """Placement knobs; defaults match the benchmark suite."""

    area_per_cell: float = 4.0  # µm² of die area budgeted per cell
    refinement_sweeps: int = 3
    neighbor_pull: float = 0.5  # 0 = pure scatter, 1 = full centroid snap
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("area_per_cell", self.area_per_cell)
        if not 0.0 <= self.neighbor_pull <= 1.0:
            raise ValueError(
                f"neighbor_pull must be in [0, 1], got {self.neighbor_pull}"
            )
        if self.refinement_sweeps < 0:
            raise ValueError("refinement_sweeps must be non-negative")


def die_size(netlist: Netlist, config: PlacementConfig) -> float:
    """Side length (µm) of the square die for this design."""
    return float(np.sqrt(max(1, netlist.num_cells) * config.area_per_cell))


def place_design(netlist: Netlist, config: PlacementConfig = PlacementConfig()) -> None:
    """Assign ``x``/``y`` to every cell in-place; deterministic per seed."""
    rng = as_rng(config.seed)
    side = die_size(netlist, config)
    clusters = sorted({cell.cluster for cell in netlist.cells})
    regions = _cluster_regions(clusters, side)

    inputs = [c for c in netlist.cells if c.is_input_port]
    outputs = [c for c in netlist.cells if c.is_output_port]
    movable = [c for c in netlist.cells if not c.cell_type.is_port]

    # Boundary ports: inputs west, outputs east, evenly spread.
    for i, cell in enumerate(inputs):
        cell.x = 0.0
        cell.y = side * (i + 0.5) / max(1, len(inputs))
    for i, cell in enumerate(outputs):
        cell.x = side
        cell.y = side * (i + 0.5) / max(1, len(outputs))

    # Scatter movable cells inside their cluster region.
    for cell in movable:
        x0, y0, x1, y1 = regions[cell.cluster]
        cell.x = float(rng.uniform(x0, x1))
        cell.y = float(rng.uniform(y0, y1))

    if not movable or config.refinement_sweeps == 0:
        return

    graph = to_message_passing_graph(netlist, mode="bidirectional")
    coords = np.array([[c.x, c.y] for c in netlist.cells])
    movable_idx = np.array([c.index for c in movable])
    lows = np.array([regions[c.cluster][:2] for c in movable])
    highs = np.array([regions[c.cluster][2:] for c in movable])

    for _ in range(config.refinement_sweeps):
        centroids = graph.mean_aggregate(coords)
        deg = graph.degree()[movable_idx]
        target = coords[movable_idx].copy()
        connected = deg > 0
        target[connected] = centroids[movable_idx][connected]
        blended = (
            (1.0 - config.neighbor_pull) * coords[movable_idx]
            + config.neighbor_pull * target
        )
        coords[movable_idx] = np.clip(blended, lows, highs)

    for cell, (x, y) in zip(movable, coords[movable_idx]):
        cell.x, cell.y = float(x), float(y)


def _cluster_regions(
    clusters: List[int], side: float
) -> Dict[int, Tuple[float, float, float, float]]:
    """Tile the die into a near-square grid of cluster regions."""
    n = len(clusters)
    cols = int(np.ceil(np.sqrt(n)))
    rows = int(np.ceil(n / cols))
    regions: Dict[int, Tuple[float, float, float, float]] = {}
    for i, cluster in enumerate(clusters):
        r, c = divmod(i, cols)
        x0 = side * c / cols
        x1 = side * (c + 1) / cols
        y0 = side * r / rows
        y1 = side * (r + 1) / rows
        # Inset slightly so clusters remain visually and electrically distinct.
        pad_x = 0.05 * (x1 - x0)
        pad_y = 0.05 * (y1 - y0)
        regions[cluster] = (x0 + pad_x, y0 + pad_y, x1 - pad_x, y1 - pad_y)
    return regions
