"""Synthetic global placement and wire estimation."""

from repro.placement.global_place import PlacementConfig, die_size, place_design

__all__ = ["PlacementConfig", "die_size", "place_design"]
