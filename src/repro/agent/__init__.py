"""The RL-CCD agent: environment, policy, REINFORCE trainer, baselines."""

from repro.agent.baselines import (
    select_greedy_overlap,
    select_none,
    select_random,
    select_worst_slack,
)
from repro.agent.env import EndpointSelectionEnv, SelectionState
from repro.agent.policy import RLCCDPolicy, Trajectory
from repro.agent.reinforce import (
    EpisodeRecord,
    TrainConfig,
    TrainingResult,
    train_rlccd,
)
from repro.agent.transfer import (
    load_pretrained_epgnn,
    pretrain_on_designs,
    save_pretrained_epgnn,
    transfer_epgnn,
)

__all__ = [
    "EndpointSelectionEnv",
    "SelectionState",
    "RLCCDPolicy",
    "Trajectory",
    "TrainConfig",
    "TrainingResult",
    "EpisodeRecord",
    "train_rlccd",
    "select_none",
    "select_worst_slack",
    "select_random",
    "select_greedy_overlap",
    "save_pretrained_epgnn",
    "load_pretrained_epgnn",
    "transfer_epgnn",
    "pretrain_on_designs",
]
